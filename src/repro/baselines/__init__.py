"""Comparison FaaS platforms (Fig. 1, Sec. V-C).

Each baseline models the invocation path of a real platform the paper
measured, with constants **fitted to the paper's own numbers**, so the
Fig. 1 comparison reproduces the reported speedup bands:

* :mod:`repro.baselines.aws_lambda` -- gateway + placement service +
  HTTP + base64; 19.5 ms at 1 kB growing to 600 ms at 5 MB
  (rFaaS 695-3692x faster).
* :mod:`repro.baselines.openwhisk` -- controller, Kafka, invoker chain
  on the *same* cluster (rFaaS 5904-22406x faster); 125 kB argv cap.
* :mod:`repro.baselines.nightcore` -- low-latency RPC gateway on the
  same cluster (rFaaS 23-39x faster).
* :mod:`repro.baselines.funcx` -- federated scientific FaaS with a
  hierarchical path (warm invocations >= 90 ms, Sec. VI).

All baselines share the :class:`repro.baselines.base.FaaSPlatform`
interface, so benchmark sweeps treat them and rFaaS uniformly.
"""

from repro.baselines.base import FaaSPlatform, PlatformResult
from repro.baselines.http import base64_size, http_overhead_ns
from repro.baselines.aws_lambda import AwsLambda
from repro.baselines.openwhisk import OpenWhisk
from repro.baselines.nightcore import Nightcore
from repro.baselines.funcx import FuncX
from repro.baselines.queueing import (
    QueuedPlatform,
    Stage,
    StageSpec,
    queued_lambda,
    queued_nightcore,
    queued_openwhisk,
)

__all__ = [
    "AwsLambda",
    "FaaSPlatform",
    "FuncX",
    "Nightcore",
    "OpenWhisk",
    "PlatformResult",
    "QueuedPlatform",
    "Stage",
    "StageSpec",
    "base64_size",
    "http_overhead_ns",
    "queued_lambda",
    "queued_nightcore",
    "queued_openwhisk",
]
