"""FuncX invocation-path model (Sec. VI, related work).

FuncX [58] brings functions to scientific computing but through a
hierarchical, centralized design: client -> cloud web service ->
endpoint -> manager -> worker.  The paper cites warm invocations of at
least 90 ms; this model reproduces that floor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import FaaSPlatform
from repro.baselines.http import base64_codec_ns, base64_size
from repro.sim.clock import ms, secs


@dataclass
class FuncX(FaaSPlatform):
    name: str = "funcx"
    #: Cloud web service: auth, task registration, result store.
    service_ns: int = ms(45)
    #: Endpoint + manager + worker queue hops.
    endpoint_ns: int = ms(20)
    #: Client <-> cloud WAN round trip.
    wan_rtt_ns: int = ms(30)
    #: Serialized-task goodput.
    internal_bytes_per_sec: float = 20e6
    #: Cold: provision a worker through the batch endpoint.
    cold_ns: int = secs(5)

    def encode_size(self, size: int) -> int:
        return base64_size(size)

    def codec_ns(self, size: int) -> int:
        return base64_codec_ns(size)

    def control_plane_ns(self) -> int:
        return self.service_ns + self.endpoint_ns

    def request_path_ns(self, wire_size: int) -> int:
        return self.wan_rtt_ns // 2 + round(wire_size * 1e9 / self.internal_bytes_per_sec)

    def response_path_ns(self, wire_size: int) -> int:
        return self.wan_rtt_ns // 2 + round(wire_size * 1e9 / self.internal_bytes_per_sec)

    def cold_start_ns(self) -> int:
        return self.cold_ns
