"""Common interface for baseline FaaS platforms.

A baseline platform is an *invocation-path model*: given a payload size
and the function's compute cost, it yields through the simulated delays
of its control/data plane and returns the measured round-trip.  Payload
bytes are still moved for real (through a Python round-trip of the
handler) so correctness tests apply to baselines too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment


@dataclass
class PlatformResult:
    """One invocation's outcome on a baseline platform."""

    output: Optional[bytes]
    rtt_ns: int
    cold: bool


@dataclass
class FaaSPlatform:
    """Base class: concrete platforms override the path methods."""

    env: "Environment"
    name: str = "base"
    #: Warm sandboxes currently available (function name -> count).
    _warm: dict = field(default_factory=dict)

    # -- template methods --------------------------------------------------

    def request_path_ns(self, wire_size: int) -> int:
        """Client -> executor latency for *wire_size* bytes."""
        raise NotImplementedError

    def response_path_ns(self, wire_size: int) -> int:
        """Executor -> client latency."""
        raise NotImplementedError

    def control_plane_ns(self) -> int:
        """Per-invocation scheduling/routing cost (warm)."""
        raise NotImplementedError

    def cold_start_ns(self) -> int:
        """Sandbox allocation cost on a cold invocation."""
        raise NotImplementedError

    def encode_size(self, size: int) -> int:
        """Wire size of a *size*-byte payload (base64 etc.)."""
        return size

    def max_payload(self) -> Optional[int]:
        """Hard input-size cap, or None."""
        return None

    def codec_ns(self, size: int) -> int:
        """Client+server encode/decode cost for *size* payload bytes."""
        return 0

    # -- the invocation ------------------------------------------------------

    def invoke(
        self,
        fn_name: str,
        payload: Optional[bytes],
        payload_size: int,
        handler: Optional[Callable[[bytes], bytes]] = None,
        compute_ns: int = 0,
    ):
        """Process generator: one invocation; returns PlatformResult.

        Raises ``ValueError`` when the payload exceeds the platform cap
        (as the real API would reject it).
        """
        env = self.env
        cap = self.max_payload()
        if cap is not None and payload_size > cap:
            raise ValueError(
                f"{self.name} rejects payloads over {cap} B (got {payload_size} B)"
            )
        start = env.now
        cold = not self._warm.get(fn_name, 0)
        if cold:
            yield env.timeout(self.cold_start_ns())
            self._warm[fn_name] = self._warm.get(fn_name, 0) + 1

        wire_in = self.encode_size(payload_size)
        yield env.timeout(self.codec_ns(payload_size))
        yield env.timeout(self.control_plane_ns())
        yield env.timeout(self.request_path_ns(wire_in))

        output: Optional[bytes] = None
        out_size = payload_size
        if handler is not None and payload is not None:
            output = handler(payload)
            out_size = len(output)
        if compute_ns:
            yield env.timeout(compute_ns)

        wire_out = self.encode_size(out_size)
        yield env.timeout(self.response_path_ns(wire_out))
        yield env.timeout(self.codec_ns(out_size))
        return PlatformResult(output=output, rtt_ns=env.now - start, cold=cold)
