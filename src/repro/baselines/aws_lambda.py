"""AWS Lambda invocation-path model.

Fitted to the paper's own measurements (Sec. II-B and Fig. 1):

* RTT 19.5 ms at 1 kB, growing to over 600 ms at 5 MB,
* 30-75 ms in the 100 kB-1 MB range typical of ML inference images,
* warm routing/placement takes "at most 10 ms" [Firecracker, 30]; the
  rest of the fixed cost is the HTTP gateway and the management service,
* payloads ride HTTP as base64 with an effective per-direction goodput
  of ~23 MB/s (what the 580 ms growth over 2 x 6.67 MB implies),
* 6 MB synchronous invocation payload cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.base import FaaSPlatform
from repro.baselines.http import base64_codec_ns, base64_size
from repro.sim.clock import ms, us


@dataclass
class AwsLambda(FaaSPlatform):
    name: str = "aws-lambda"
    #: Placement/routing by the dedicated management service (warm).
    placement_ns: int = ms(10)
    #: API gateway + request validation + auth bypass (no authorizer).
    gateway_ns: int = ms(6.4)
    #: Client <-> region WAN round-trip (t2.micro in the same region).
    wan_rtt_ns: int = ms(3)
    #: Effective per-direction HTTP goodput for large payloads.
    http_bytes_per_sec: float = 23e6
    #: Cold: Firecracker microVM + C++ custom runtime bootstrap.
    cold_ns: int = ms(180)
    #: Synchronous payload cap.
    payload_cap: int = 6 * 1024 * 1024

    def encode_size(self, size: int) -> int:
        return base64_size(size)

    def codec_ns(self, size: int) -> int:
        return base64_codec_ns(size)

    def control_plane_ns(self) -> int:
        return self.placement_ns + self.gateway_ns

    def request_path_ns(self, wire_size: int) -> int:
        return self.wan_rtt_ns // 2 + round(wire_size * 1e9 / self.http_bytes_per_sec)

    def response_path_ns(self, wire_size: int) -> int:
        return self.wan_rtt_ns // 2 + round(wire_size * 1e9 / self.http_bytes_per_sec)

    def cold_start_ns(self) -> int:
        return self.cold_ns

    def max_payload(self) -> int:
        return self.payload_cap
