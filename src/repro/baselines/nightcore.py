"""Nightcore invocation-path model.

Nightcore [14] is the strongest open-source baseline: a FaaS runtime
built for latency-sensitive microservices, with a lean gateway and
message-channel dispatch.  Still, external invocations cross the kernel
TCP stack and a gateway process, so the paper measures rFaaS 23x-39x
faster on the same hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import FaaSPlatform
from repro.baselines.http import base64_codec_ns, base64_size
from repro.sim.clock import ms, us


@dataclass
class Nightcore(FaaSPlatform):
    name: str = "nightcore"
    #: Gateway: HTTP handling + dispatch through message channels.
    gateway_ns: int = us(140)
    #: Kernel TCP round trip inside the cluster.
    cluster_rtt_ns: int = us(30)
    #: Effective per-direction goodput of the gateway TCP path.
    internal_bytes_per_sec: float = 713e6
    #: Cold: fork a new worker process (Nightcore keeps these cheap).
    cold_ns: int = ms(50)

    def encode_size(self, size: int) -> int:
        return base64_size(size)

    def codec_ns(self, size: int) -> int:
        return base64_codec_ns(size)

    def control_plane_ns(self) -> int:
        return self.gateway_ns

    def request_path_ns(self, wire_size: int) -> int:
        return self.cluster_rtt_ns // 2 + round(wire_size * 1e9 / self.internal_bytes_per_sec)

    def response_path_ns(self, wire_size: int) -> int:
        return self.cluster_rtt_ns // 2 + round(wire_size * 1e9 / self.internal_bytes_per_sec)

    def cold_start_ns(self) -> int:
        return self.cold_ns
