"""HTTP/REST transport helpers shared by the baseline platforms.

The paper's Fig. 1 protocol note: "Since other platforms cannot accept
raw data, we generate a base64-encoded string that approximately
matches the input size" -- every baseline pays the 4/3 base64 expansion
plus encode/decode CPU, while rFaaS ships raw bytes.
"""

from __future__ import annotations


def base64_size(size: int) -> int:
    """Wire bytes of a base64-encoded *size*-byte payload."""
    if size <= 0:
        return 0
    return 4 * ((size + 2) // 3)


#: Base64 encode/decode throughput of one core (bytes/s).
BASE64_BYTES_PER_SEC = 2e9


def base64_codec_ns(size: int) -> int:
    """One encode or decode pass over *size* bytes."""
    if size <= 0:
        return 0
    return round(size * 1e9 / BASE64_BYTES_PER_SEC)


#: Fixed per-request HTTP cost: parsing, headers, connection handling.
HTTP_REQUEST_NS = 120_000


def http_overhead_ns() -> int:
    return HTTP_REQUEST_NS
