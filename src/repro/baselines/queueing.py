"""Queueing-process baseline models (contention-aware).

The analytic models in this package reproduce the paper's *latency*
measurements (single closed-loop client).  To study what happens under
*concurrency* -- where rFaaS's decentralization thesis actually bites --
these variants model each platform component as a multi-server FCFS
stage on the DES, so a shared controller or message bus saturates and
queues exactly like the real deployment.

Stage layouts (servers x service time), fitted so the single-client
latency matches the analytic models:

* OpenWhisk: nginx gateway -> controller -> Kafka (single broker!) ->
  invoker -> container pool.
* Nightcore: one gateway with a few dispatcher threads -> worker pool.
* AWS Lambda: effectively unbounded horizontal scale; stages have
  enough servers that the cloud never queues (the paper's observation
  that Lambda's problem is latency, not throughput).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.baselines.http import base64_codec_ns, base64_size
from repro.sim.clock import ms, us
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment


@dataclass(frozen=True)
class StageSpec:
    """One component of a platform's invocation path."""

    name: str
    servers: int
    base_ns: int
    per_byte_ns: float = 0.0

    def service_ns(self, nbytes: int) -> int:
        return self.base_ns + round(self.per_byte_ns * nbytes)


class Stage:
    """A multi-server FCFS queue executing :class:`StageSpec` service."""

    def __init__(self, env: "Environment", spec: StageSpec) -> None:
        self.env = env
        self.spec = spec
        self.resource = Resource(env, capacity=spec.servers)
        self.jobs_served = 0
        self.busy_ns = 0

    def process(self, nbytes: int):
        """Generator: queue for a server, hold it for the service time."""
        with self.resource.request() as grant:
            yield grant
            service = self.spec.service_ns(nbytes)
            yield self.env.timeout(service)
            self.busy_ns += service
            self.jobs_served += 1

    @property
    def queue_length(self) -> int:
        return len(self.resource.queue)


class QueuedPlatform:
    """A FaaS platform as a pipeline of contended stages."""

    def __init__(
        self,
        env: "Environment",
        name: str,
        request_stages: list[StageSpec],
        containers: int,
        response_stages: Optional[list[StageSpec]] = None,
        base64: bool = True,
    ) -> None:
        self.env = env
        self.name = name
        self.base64 = base64
        self.request_path = [Stage(env, spec) for spec in request_stages]
        self.workers = Stage(
            env, StageSpec(name="containers", servers=containers, base_ns=0)
        )
        self.response_path = [Stage(env, spec) for spec in (response_stages or [])]
        self.invocations = 0

    def _wire(self, size: int) -> int:
        return base64_size(size) if self.base64 else size

    def invoke(self, payload_size: int, compute_ns: int = 0):
        """Generator: one invocation through the contended pipeline;
        returns the RTT in ns."""
        env = self.env
        start = env.now
        wire = self._wire(payload_size)
        if self.base64:
            yield env.timeout(base64_codec_ns(payload_size))
        for stage in self.request_path:
            yield from stage.process(wire)
        # Container execution: hold one sandbox for the compute time.
        with self.workers.resource.request() as grant:
            yield grant
            if compute_ns:
                yield env.timeout(compute_ns)
            self.workers.jobs_served += 1
        for stage in self.response_path:
            yield from stage.process(wire)
        if self.base64:
            yield env.timeout(base64_codec_ns(payload_size))
        self.invocations += 1
        return env.now - start

    def stage_stats(self) -> dict[str, int]:
        return {stage.spec.name: stage.jobs_served for stage in self.request_path}


# -- fitted layouts -------------------------------------------------------------


def queued_openwhisk(env: "Environment", containers: int = 8) -> QueuedPlatform:
    """Controller/Kafka/invoker chain; Kafka is the single-broker choke
    point that caps standalone-OpenWhisk throughput."""
    return QueuedPlatform(
        env,
        "openwhisk-queued",
        request_stages=[
            StageSpec("gateway", servers=4, base_ns=ms(2), per_byte_ns=0.05),
            StageSpec("controller", servers=2, base_ns=ms(22), per_byte_ns=0.02),
            StageSpec("kafka", servers=1, base_ns=ms(38), per_byte_ns=0.08),
            StageSpec("invoker", servers=4, base_ns=ms(30), per_byte_ns=0.02),
        ],
        containers=containers,
    )


def queued_nightcore(env: "Environment", containers: int = 16) -> QueuedPlatform:
    """Lean gateway with a handful of dispatcher threads."""
    return QueuedPlatform(
        env,
        "nightcore-queued",
        request_stages=[
            StageSpec("gateway", servers=4, base_ns=us(140), per_byte_ns=0.0011),
        ],
        containers=containers,
        response_stages=[
            StageSpec("gateway-out", servers=4, base_ns=us(15), per_byte_ns=0.0011),
        ],
    )


def queued_lambda(env: "Environment") -> QueuedPlatform:
    """The cloud scales horizontally: high fixed latency, no queueing."""
    return QueuedPlatform(
        env,
        "aws-lambda-queued",
        request_stages=[
            StageSpec("frontend", servers=1_000, base_ns=ms(8), per_byte_ns=0.022),
            StageSpec("placement", servers=1_000, base_ns=ms(10)),
        ],
        containers=10_000,
        response_stages=[
            StageSpec("frontend-out", servers=1_000, base_ns=ms(1.5), per_byte_ns=0.022),
        ],
    )
