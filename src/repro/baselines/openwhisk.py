"""Apache OpenWhisk invocation-path model.

Deployed standalone on the *same* RDMA cluster as rFaaS (Sec. V-C), so
there is no WAN -- the cost is all control plane: nginx gateway ->
controller -> load balancer -> Kafka -> invoker -> Docker action, with
the C++ action receiving input through argv (125 kB cap).

Fitted to the paper's reported gap: rFaaS is 5904x-22406x faster over
the measurable payload range.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import FaaSPlatform
from repro.baselines.http import base64_codec_ns, base64_size
from repro.sim.clock import ms, us


@dataclass
class OpenWhisk(FaaSPlatform):
    name: str = "openwhisk"
    #: Controller: request validation, identity, activation record.
    controller_ns: int = ms(24)
    #: Load balancer decision + Kafka produce/consume round trip.
    kafka_ns: int = ms(38)
    #: Invoker: activation bookkeeping, container dispatch (warm).
    invoker_ns: int = ms(30)
    #: Cluster-internal TCP hop.
    cluster_rtt_ns: int = us(100)
    #: Effective per-direction goodput through the gateway/Kafka chain.
    internal_bytes_per_sec: float = 6.3e6
    #: Cold: pull + start the action container.
    cold_ns: int = ms(900)
    #: argv-based input cap for native C++ actions.
    payload_cap: int = 125 * 1024

    def encode_size(self, size: int) -> int:
        return base64_size(size)

    def codec_ns(self, size: int) -> int:
        return base64_codec_ns(size)

    def control_plane_ns(self) -> int:
        return self.controller_ns + self.kafka_ns + self.invoker_ns

    def request_path_ns(self, wire_size: int) -> int:
        return self.cluster_rtt_ns // 2 + round(wire_size * 1e9 / self.internal_bytes_per_sec)

    def response_path_ns(self, wire_size: int) -> int:
        return self.cluster_rtt_ns // 2 + round(wire_size * 1e9 / self.internal_bytes_per_sec)

    def cold_start_ns(self) -> int:
        return self.cold_ns

    def max_payload(self) -> int:
        return self.payload_cap
