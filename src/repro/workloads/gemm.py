"""Matrix-matrix multiplication: the Fig. 13a MPI kernel.

Each MPI rank multiplies two n x n matrices; with rFaaS acceleration
the rank computes the top half of C locally while a remote function
computes the bottom half from the same A, B.

Wire format: u32 n | u32 row_begin | u32 row_end | u32 pad, then A
(n x n f64) and B (n x n f64); the response is rows [row_begin,
row_end) of C.

Cost model: ``2 n^3`` flops at the node's sustained GEMM rate (MKL on
one Xeon Gold core sustains ~85% of the 48 GF/s AVX-512 peak; the
NodeSpec default of 20 GF/s is the conservative compiled-loop figure,
so GEMM passes an efficiency factor of 2.0 to land at ~40 GF/s).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.functions import CodePackage, FunctionSpec

_HDR = struct.Struct("<IIII")

#: Sustained GEMM throughput of one pinned core (bytes are f64).
GEMM_FLOPS_PER_SEC = 40e9


def gemm_cost_ns(n: int, rows: int | None = None) -> int:
    """Virtual time to compute `rows` rows of an n x n GEMM."""
    rows = n if rows is None else rows
    flops = 2.0 * rows * n * n
    return max(1, round(flops * 1e9 / GEMM_FLOPS_PER_SEC))


def pack_matrices(a: np.ndarray, b: np.ndarray, row_begin: int, row_end: int) -> bytes:
    n = a.shape[0]
    if a.shape != (n, n) or b.shape != (n, n):
        raise ValueError("A and B must be square and same-shaped")
    if not 0 <= row_begin <= row_end <= n:
        raise ValueError("bad row range")
    header = _HDR.pack(n, row_begin, row_end, 0)
    return header + a.astype(np.float64).tobytes() + b.astype(np.float64).tobytes()


def unpack_request(payload: bytes) -> tuple[np.ndarray, np.ndarray, int, int]:
    n, row_begin, row_end, _ = _HDR.unpack_from(payload)
    matrix_bytes = n * n * 8
    offset = _HDR.size
    a = np.frombuffer(payload, dtype=np.float64, count=n * n, offset=offset).reshape(n, n)
    b = np.frombuffer(payload, dtype=np.float64, count=n * n, offset=offset + matrix_bytes).reshape(n, n)
    return a, b, row_begin, row_end


def unpack_result(data: bytes, n: int) -> np.ndarray:
    return np.frombuffer(data, dtype=np.float64).reshape(-1, n)


def _handler(payload: bytes) -> bytes:
    a, b, row_begin, row_end = unpack_request(payload)
    return (a[row_begin:row_end] @ b).tobytes()


def _cost_from_payload(payload_size: int) -> int:
    # Payload = header + 2 n^2 doubles; the function computes about
    # half the rows in the offload pattern, but the exact row count is
    # in the header, which a size-only model cannot see.  Use half.
    n = round(((payload_size - _HDR.size) / 16) ** 0.5)
    return gemm_cost_ns(n, rows=max(1, n // 2))


def _output_size(payload_size: int) -> int:
    n = round(((payload_size - _HDR.size) / 16) ** 0.5)
    return (n // 2) * n * 8


def gemm_function(name: str = "gemm") -> FunctionSpec:
    return FunctionSpec(
        name=name,
        handler=_handler,
        cost_ns=_cost_from_payload,
        output_size=_output_size,
    )


def gemm_package() -> CodePackage:
    package = CodePackage(name="gemm", size_bytes=9_000)
    package.add(gemm_function())
    return package
