"""Multi-tenant invocation workloads.

The paper's oversubscription argument (Sec. III-D) is about *mixes*:
latency-critical tenants pin hot workers while bursty and batch tenants
share oversubscribed capacity warmly.  This module declares those
tenant profiles -- arrival processes, payload sizes, compute costs,
deadlines -- for the multi-tenant experiments and tests.

:class:`TenantSpec` stays purely declarative.  Arrival *generation*
lives in :mod:`repro.sim.arrivals` (this module predates it and used
to carry its own exponential-gap generator); :meth:`TenantSpec.
arrival_stream` maps the declared profile onto ``arrival_times``:

* ``arrival="poisson"`` -- exponential gaps with mean
  ``1e9 / rate_per_s`` ns (the same long-run rate the retired
  ``interarrival_ns`` produced);
* ``arrival="bursty"`` -- a compound process with burst epochs of
  ``burst_len`` back-to-back invocations (``burst_intra_gap_ns``
  apart) and exponential epoch gaps of mean ``1e9 / rate_per_s`` --
  the retired generator's semantics, where ``rate_per_s`` was the
  *epoch* rate and each epoch released a whole burst.

For the million-invocation scale engine the same three-profile
:func:`standard_mix` is rescaled through its parameters: a target
total invocation count (split across profiles by their declared
weights), a rate multiplier, and a compute multiplier that scales
service times and deadlines together.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Optional

import numpy as np

from repro.core.functions import CodePackage, FunctionSpec
from repro.sim.arrivals import ARRIVAL_CHUNK, arrival_times
from repro.sim.clock import ms, us


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's workload profile."""

    name: str
    #: "poisson" (rate_per_s) or "bursty" (bursts of burst_len calls
    #: back-to-back, separated by exponential epoch gaps).
    arrival: str = "poisson"
    #: Poisson invocation rate -- or the burst-*epoch* rate for bursty
    #: tenants (each epoch releases ``burst_len`` invocations), exactly
    #: the semantics the retired per-tenant generator had.
    rate_per_s: float = 100.0
    burst_len: int = 10
    #: Spacing of invocations inside one burst ("bursty" only).
    burst_intra_gap_ns: int = 1
    payload_bytes: int = 1_024
    compute_ns: int = us(50)
    workers: int = 1
    #: None = stay hot forever; 0 = always warm; else rollback timeout.
    hot_timeout_ns: Optional[int] = 0
    invocations: int = 100
    #: Log-normal service shape around ``compute_ns`` (the scale engine
    #: draws service times as ``lognormal(ln(compute_ns), sigma)``; the
    #: RPC-level experiment uses the fixed ``compute_ns`` cost).
    service_log_sigma: float = 0.35
    #: Sojourn budget for the admission layer; ``None`` derives the
    #: default 2x compute budget (see :meth:`effective_deadline_ns`).
    deadline_ns: Optional[int] = None
    #: Per-tenant FIFO backlog depth beyond which a dry-pool arrival is
    #: rejected with CONGESTION instead of queueing.
    queue_cap: int = 1 << 30

    def package(self) -> CodePackage:
        package = CodePackage(name=f"tenant-{self.name}")
        package.add(
            FunctionSpec(
                name="work",
                handler=lambda data: data[:8],
                cost_ns=lambda size, cost=self.compute_ns: cost,
                output_size=lambda size: 8,
            )
        )
        return package

    @property
    def mean_gap_ns(self) -> float:
        """Mean *per-invocation* gap implied by ``rate_per_s``.

        Bursty profiles release ``burst_len`` invocations per epoch at
        an epoch rate of ``rate_per_s``, so their long-run invocation
        rate is ``rate_per_s * burst_len`` and the per-invocation gap
        (what :func:`repro.sim.arrivals.arrival_times` takes) divides
        accordingly.
        """
        if self.rate_per_s <= 0:
            raise ValueError(f"tenant {self.name!r} needs rate_per_s > 0")
        if self.arrival == "bursty":
            return 1e9 / (self.rate_per_s * self.burst_len)
        return 1e9 / self.rate_per_s

    def effective_deadline_ns(self) -> int:
        """The admission deadline: explicit, or 2x the compute budget."""
        if self.deadline_ns is not None:
            return int(self.deadline_ns)
        return 2 * int(self.compute_ns)

    def arrival_stream(
        self,
        rng: np.random.Generator,
        count: Optional[int] = None,
        chunk: int = ARRIVAL_CHUNK,
    ) -> Iterator[np.ndarray]:
        """Chunked absolute arrival times for this profile.

        Thin declarative bridge onto :func:`repro.sim.arrivals.
        arrival_times` -- the single home of every arrival-shape
        recipe (the old per-tenant exponential generator is retired).
        """
        return arrival_times(
            self.arrival,
            rng,
            self.invocations if count is None else count,
            self.mean_gap_ns,
            burst_len=self.burst_len,
            burst_intra_gap_ns=self.burst_intra_gap_ns,
            chunk=chunk,
        )


def split_by_weights(total: int, weights: list[int]) -> list[int]:
    """Deterministic largest-remainder split of *total* by *weights*.

    Used both to spread a target invocation count across the mix's
    profiles and, by the multi-tenant scale engine, to carve the warm
    pool into per-tenant pinned partitions.
    """
    denom = sum(weights)
    if denom <= 0:
        raise ValueError("invocation weights must sum to a positive count")
    quotas = [total * w / denom for w in weights]
    counts = [int(q) for q in quotas]
    leftover = total - sum(counts)
    # Hand leftovers to the largest fractional remainders; ties break
    # on the lowest profile index so the split is reproducible.
    order = sorted(
        range(len(weights)), key=lambda i: (counts[i] - quotas[i], i)
    )
    for i in order[:leftover]:
        counts[i] += 1
    return counts


def standard_mix(
    invocations: Optional[int] = None,
    rate_scale: float = 1.0,
    compute_scale: float = 1.0,
) -> list[TenantSpec]:
    """The three-profile mix used by the multi-tenant experiments.

    With no arguments this is the RPC-level mix (a few hundred
    invocations over two spot executors).  The scale engine rescales
    the same declared shapes: *invocations* redistributes a target
    total across the profiles by their declared weights (150:120:60),
    *rate_scale* multiplies every arrival rate, and *compute_scale*
    multiplies service medians and deadlines together so the
    deadline-miss geometry of each profile is scale-invariant.
    """
    if rate_scale <= 0:
        raise ValueError(f"rate_scale must be positive, got {rate_scale}")
    if compute_scale <= 0:
        raise ValueError(f"compute_scale must be positive, got {compute_scale}")
    mix = [
        TenantSpec(
            name="latency-critical",
            arrival="poisson",
            rate_per_s=200.0,
            payload_bytes=512,
            compute_ns=us(20),
            workers=2,
            hot_timeout_ns=None,  # always hot: the paying-premium tenant
            invocations=150,
        ),
        TenantSpec(
            name="bursty-service",
            arrival="bursty",
            rate_per_s=20.0,
            burst_len=8,
            payload_bytes=8_192,
            compute_ns=us(200),
            workers=2,
            hot_timeout_ns=ms(1),  # hot inside bursts, warm between
            invocations=120,
        ),
        TenantSpec(
            name="batch-analytics",
            arrival="poisson",
            rate_per_s=10.0,
            payload_bytes=262_144,
            compute_ns=ms(2),
            workers=2,
            hot_timeout_ns=0,  # always warm: the cheap tenant
            invocations=60,
        ),
    ]
    if invocations is None and rate_scale == 1.0 and compute_scale == 1.0:
        return mix
    counts = (
        split_by_weights(invocations, [spec.invocations for spec in mix])
        if invocations is not None
        else [spec.invocations for spec in mix]
    )
    if invocations is not None and min(counts) < 1:
        raise ValueError(
            f"{invocations} invocations spread too thin across {len(mix)} profiles"
        )
    return [
        replace(
            spec,
            invocations=count,
            rate_per_s=spec.rate_per_s * rate_scale,
            compute_ns=max(1, int(spec.compute_ns * compute_scale)),
            deadline_ns=max(1, int(spec.effective_deadline_ns() * compute_scale)),
        )
        for spec, count in zip(mix, counts)
    ]


@dataclass
class TenantOutcome:
    """Measured behaviour of one tenant over a run."""

    spec: TenantSpec
    rtts_ns: list[int] = field(default_factory=list)
    rejections: int = 0
    redirects: int = 0
    cost: float = 0.0
    hotpoll_s: float = 0.0
    compute_s: float = 0.0
