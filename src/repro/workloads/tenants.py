"""Multi-tenant invocation workloads.

The paper's oversubscription argument (Sec. III-D) is about *mixes*:
latency-critical tenants pin hot workers while bursty and batch tenants
share oversubscribed capacity warmly.  This module generates those
tenant profiles -- arrival processes, payload sizes, compute costs --
for the multi-tenant experiment and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.functions import CodePackage, FunctionSpec
from repro.sim.clock import ms, us
from repro.sim.rng import RngStreams


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's workload profile."""

    name: str
    #: "poisson" (rate_per_s) or "bursty" (bursts of burst_len calls
    #: back-to-back, separated by exponential gaps).
    arrival: str = "poisson"
    rate_per_s: float = 100.0
    burst_len: int = 10
    payload_bytes: int = 1_024
    compute_ns: int = us(50)
    workers: int = 1
    #: None = stay hot forever; 0 = always warm; else rollback timeout.
    hot_timeout_ns: Optional[int] = 0
    invocations: int = 100

    def package(self) -> CodePackage:
        package = CodePackage(name=f"tenant-{self.name}")
        package.add(
            FunctionSpec(
                name="work",
                handler=lambda data: data[:8],
                cost_ns=lambda size, cost=self.compute_ns: cost,
                output_size=lambda size: 8,
            )
        )
        return package

    def interarrival_ns(self, rng: np.random.Generator) -> int:
        """Next gap before an invocation (bursts return 0 inside)."""
        return max(1, round(rng.exponential(1e9 / self.rate_per_s)))


def standard_mix() -> list[TenantSpec]:
    """The three-profile mix used by the multi-tenant experiment."""
    return [
        TenantSpec(
            name="latency-critical",
            arrival="poisson",
            rate_per_s=200.0,
            payload_bytes=512,
            compute_ns=us(20),
            workers=2,
            hot_timeout_ns=None,  # always hot: the paying-premium tenant
            invocations=150,
        ),
        TenantSpec(
            name="bursty-service",
            arrival="bursty",
            rate_per_s=20.0,
            burst_len=8,
            payload_bytes=8_192,
            compute_ns=us(200),
            workers=2,
            hot_timeout_ns=ms(1),  # hot inside bursts, warm between
            invocations=120,
        ),
        TenantSpec(
            name="batch-analytics",
            arrival="poisson",
            rate_per_s=10.0,
            payload_bytes=262_144,
            compute_ns=ms(2),
            workers=2,
            hot_timeout_ns=0,  # always warm: the cheap tenant
            invocations=60,
        ),
    ]


@dataclass
class TenantOutcome:
    """Measured behaviour of one tenant over a run."""

    spec: TenantSpec
    rtts_ns: list[int] = field(default_factory=list)
    rejections: int = 0
    redirects: int = 0
    cost: float = 0.0
    hotpoll_s: float = 0.0
    compute_s: float = 0.0
