"""The no-op echo benchmark function (Figs. 1, 8, 10).

Returns its input unchanged; the paper uses it to isolate platform
overhead from computation.  The code package's 7.88 kB size matches
the paper's compiled shared library.
"""

from __future__ import annotations

from repro.core.functions import CodePackage, echo_function


def noop_package(name: str = "noop") -> CodePackage:
    """The benchmark package: a single 'echo' function, 7.88 kB."""
    package = CodePackage(name=name, size_bytes=7_880)
    package.add(echo_function())
    return package
