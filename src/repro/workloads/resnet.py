"""SeBS *image-recognition*: ResNet-50 inference (Fig. 11b).

The real kernel is a width-reduced residual network in pure NumPy --
conv stem, two residual blocks, global pooling, a 1000-way classifier
-- with deterministic weights.  It exercises the same code path as the
paper's libtorch deployment (decode image -> normalize -> forward ->
argmax) on real pixels, while the *cost model* charges what full
ResNet-50 costs on one Xeon core.

Cost: ResNet-50 forward is ~4 GFLOPs prediction-time [He et al.];
dense conv kernels sustain ~25 GF/s on one AVX-512 core, so inference
costs ~160 ms plus decode at 10 ns/pixel.  The model weights live in
the warm container (cached after the first invocation), matching the
paper's TorchScript deployment.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.functions import CodePackage, FunctionSpec
from repro.workloads.images import HEADER_BYTES, Image

#: ResNet-50 single-image inference on one Xeon Gold core.
INFERENCE_COST_NS = 160_000_000
#: Image decode + preprocessing per pixel.
DECODE_COST_PER_PIXEL_NS = 10

NUM_CLASSES = 1000
_INPUT_DIM = 32  # the NumPy stand-in operates on 32x32 crops


class TinyResNet:
    """A deterministic, width-reduced residual classifier."""

    def __init__(self, seed: int = 50, channels: int = 8) -> None:
        rng = np.random.default_rng(seed)
        scale = 0.1
        self.conv_stem = rng.normal(0, scale, (channels, 3, 3, 3))
        self.block1 = rng.normal(0, scale, (channels, channels, 3, 3))
        self.block2 = rng.normal(0, scale, (channels, channels, 3, 3))
        self.fc = rng.normal(0, scale, (NUM_CLASSES, channels))

    @staticmethod
    def _conv2d(x: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """Same-padded 3x3 convolution, NCHW single image."""
        out_c, in_c, kh, kw = weight.shape
        _, h, w = x.shape
        padded = np.pad(x, ((0, 0), (1, 1), (1, 1)))
        # im2col: (in_c*kh*kw, h*w)
        cols = np.empty((in_c * kh * kw, h * w))
        idx = 0
        for c in range(in_c):
            for dy in range(kh):
                for dx in range(kw):
                    cols[idx] = padded[c, dy : dy + h, dx : dx + w].reshape(-1)
                    idx += 1
        return (weight.reshape(out_c, -1) @ cols).reshape(out_c, h, w)

    def forward(self, pixels: np.ndarray) -> np.ndarray:
        """Logits for an (H, W, 3) uint8 image."""
        # Center-crop/resize to the fixed input via strided sampling.
        h, w = pixels.shape[:2]
        ys = np.linspace(0, h - 1, _INPUT_DIM).astype(int)
        xs = np.linspace(0, w - 1, _INPUT_DIM).astype(int)
        x = pixels[np.ix_(ys, xs)].astype(np.float64).transpose(2, 0, 1) / 255.0

        x = np.maximum(self._conv2d(x, self.conv_stem), 0)
        for block in (self.block1, self.block2):
            residual = x
            x = np.maximum(self._conv2d(x, block) + residual, 0)
        features = x.mean(axis=(1, 2))
        return self.fc @ features

    def predict(self, image: Image) -> tuple[int, float]:
        logits = self.forward(image.pixels)
        top = int(np.argmax(logits))
        return top, float(logits[top])


_MODEL: TinyResNet | None = None


def _model() -> TinyResNet:
    """Lazily built, process-wide model: the warm-container cache."""
    global _MODEL
    if _MODEL is None:
        _MODEL = TinyResNet()
    return _MODEL


_RESULT = struct.Struct("<If")
RESULT_BYTES = _RESULT.size


def _handler(payload: bytes) -> bytes:
    image = Image.decode(payload)
    label, score = _model().predict(image)
    return _RESULT.pack(label, score)


def decode_result(data: bytes) -> tuple[int, float]:
    label, score = _RESULT.unpack(data)
    return label, score


def inference_cost_ns(payload_size: int) -> int:
    pixels = max(0, payload_size - HEADER_BYTES) // 3
    return INFERENCE_COST_NS + pixels * DECODE_COST_PER_PIXEL_NS


def resnet_function(name: str = "image-recognition") -> FunctionSpec:
    return FunctionSpec(
        name=name,
        handler=_handler,
        cost_ns=inference_cost_ns,
        output_size=lambda size: RESULT_BYTES,
    )


def resnet_package() -> CodePackage:
    """Docker image with libtorch + TorchScript model: big artifact."""
    package = CodePackage(name="image-recognition", size_bytes=48_000)
    package.add(resnet_function())
    return package
