"""Workloads: the real computations behind the paper's evaluation.

Every workload is implemented twice over the same code:

* a **real kernel** (NumPy) whose numerical output is validated in the
  test suite -- thumbnail pixels, option prices, solver residuals are
  all checked, and
* a **cost model** giving the kernel's virtual-time duration on the
  paper's Xeon Gold 6154 testbed, used when the workload runs inside
  the simulation (as an rFaaS function, an OpenMP thread, or an MPI
  rank).

Workload -> paper section map:

===================  =========================================
``noop``             no-op echo (Figs. 1, 8, 10)
``thumbnailer``      SeBS image processing (Fig. 11a)
``resnet``           SeBS ResNet-50 inference (Fig. 11b)
``black_scholes``    PARSEC solver offload (Fig. 12)
``gemm``             MPI matrix-matrix multiply (Fig. 13a)
``jacobi``           MPI Jacobi linear solver (Fig. 13b)
===================  =========================================
"""

from repro.workloads.images import Image, generate_image
from repro.workloads.noop import noop_package
from repro.workloads.thumbnailer import make_thumbnail, thumbnailer_function
from repro.workloads.resnet import TinyResNet, resnet_function
from repro.workloads.black_scholes import (
    black_scholes_price,
    bs_function,
    generate_options,
    pack_options,
    unpack_options,
)
from repro.workloads.gemm import gemm_cost_ns, gemm_function, pack_matrices, unpack_result
from repro.workloads.jacobi import JacobiWorkspace, jacobi_function, jacobi_iteration_cost_ns
from repro.workloads.sebs_extra import (
    bfs_function,
    compression_function,
    pagerank_function,
    sebs_extra_package,
)
from repro.workloads.tenants import TenantSpec, standard_mix

__all__ = [
    "Image",
    "JacobiWorkspace",
    "TinyResNet",
    "black_scholes_price",
    "bs_function",
    "gemm_cost_ns",
    "gemm_function",
    "generate_image",
    "generate_options",
    "jacobi_function",
    "jacobi_iteration_cost_ns",
    "make_thumbnail",
    "noop_package",
    "pack_matrices",
    "pack_options",
    "resnet_function",
    "thumbnailer_function",
    "TenantSpec",
    "bfs_function",
    "compression_function",
    "pagerank_function",
    "sebs_extra_package",
    "standard_mix",
    "unpack_options",
    "unpack_result",
]
