"""A tiny raw image format and deterministic image generator.

The SeBS benchmarks ship JPEG images; with no image codecs offline we
use a raw RGB format with an 8-byte header, choosing dimensions so the
*byte sizes* match the paper's inputs (97 kB / 3.6 MB thumbnails,
53 kB / 230 kB recognition inputs).

Header layout: u16 width | u16 height | u16 channels | u16 reserved,
followed by ``width * height * channels`` uint8 pixels, row-major.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

_HEADER = struct.Struct("<HHHH")
HEADER_BYTES = _HEADER.size


@dataclass
class Image:
    """A decoded image."""

    pixels: np.ndarray  # (height, width, channels) uint8

    @property
    def height(self) -> int:
        return self.pixels.shape[0]

    @property
    def width(self) -> int:
        return self.pixels.shape[1]

    @property
    def channels(self) -> int:
        return self.pixels.shape[2]

    def encode(self) -> bytes:
        header = _HEADER.pack(self.width, self.height, self.channels, 0)
        return header + self.pixels.tobytes()

    @classmethod
    def decode(cls, data: bytes) -> "Image":
        if len(data) < HEADER_BYTES:
            raise ValueError("image payload shorter than header")
        width, height, channels, _ = _HEADER.unpack_from(data)
        expected = width * height * channels
        body = data[HEADER_BYTES : HEADER_BYTES + expected]
        if len(body) != expected:
            raise ValueError(
                f"image body has {len(body)} bytes, header promises {expected}"
            )
        pixels = np.frombuffer(body, dtype=np.uint8).reshape(height, width, channels)
        return cls(pixels=pixels.copy())

    @property
    def nbytes(self) -> int:
        return HEADER_BYTES + self.pixels.size


def generate_image(width: int, height: int, channels: int = 3, seed: int = 7) -> Image:
    """A deterministic structured test image (gradients + noise).

    Structure matters: thumbnail tests verify that downscaling
    preserves the gradient, which uniform noise would not show.
    """
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:height, 0:width]
    base = (xx * 255 // max(width - 1, 1) + yy * 128 // max(height - 1, 1)) % 256
    pixels = np.stack(
        [(base + 40 * c) % 256 for c in range(channels)], axis=-1
    ).astype(np.uint8)
    noise = rng.integers(0, 16, size=pixels.shape, dtype=np.uint8)
    return Image(pixels=((pixels.astype(np.uint16) + noise) % 256).astype(np.uint8))


def image_for_payload_size(target_bytes: int, channels: int = 3, aspect: float = 4 / 3) -> Image:
    """An image whose encoded size is close to *target_bytes*."""
    pixel_budget = max(1, (target_bytes - HEADER_BYTES) // channels)
    width = max(1, int((pixel_budget * aspect) ** 0.5))
    height = max(1, pixel_budget // width)
    return generate_image(width, height, channels)
