"""Additional SeBS-style serverless workloads.

The paper evaluates two functions from its SeBS suite [21]; the suite
itself is broader.  These three more -- compression, graph BFS, and
graph PageRank -- are real computations (cross-checked against zlib and
networkx in the tests) deployable on any platform in this repository,
used by the suite example and extra coverage tests.

Wire formats
------------
* compression: raw bytes in -> zlib stream out.
* graphs: ``u32 n | u32 m | m x (u32 u32) edges | u32 arg`` where
  ``arg`` is the BFS source or the PageRank iteration count.
  BFS answers ``n x i32`` hop distances (-1 = unreachable);
  PageRank answers ``n x f64`` scores.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.core.functions import CodePackage, FunctionSpec

_GRAPH_HDR = struct.Struct("<II")
_ARG = struct.Struct("<I")


# -- compression ---------------------------------------------------------------

#: zlib level-6 compression rate on one Xeon core.
COMPRESS_BYTES_PER_SEC = 95e6


def compress_handler(payload: bytes) -> bytes:
    return zlib.compress(payload, level=6)


def compression_function(name: str = "compression") -> FunctionSpec:
    return FunctionSpec(
        name=name,
        handler=compress_handler,
        cost_ns=lambda size: round(size * 1e9 / COMPRESS_BYTES_PER_SEC),
        # Virtual estimate: text-like inputs compress to roughly half.
        output_size=lambda size: max(16, size // 2),
    )


# -- graph serialization ----------------------------------------------------------


def pack_graph(n: int, edges: np.ndarray, arg: int) -> bytes:
    """``edges`` is an (m, 2) array of u32 endpoints."""
    edges = np.ascontiguousarray(edges, dtype=np.uint32)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError("edges must be an (m, 2) array")
    if edges.size and int(edges.max()) >= n:
        raise ValueError("edge endpoint out of range")
    return _GRAPH_HDR.pack(n, edges.shape[0]) + edges.tobytes() + _ARG.pack(arg)


def unpack_graph(payload: bytes) -> tuple[int, np.ndarray, int]:
    n, m = _GRAPH_HDR.unpack_from(payload)
    edges = np.frombuffer(payload, dtype=np.uint32, count=2 * m, offset=_GRAPH_HDR.size)
    (arg,) = _ARG.unpack_from(payload, _GRAPH_HDR.size + 8 * m)
    return n, edges.reshape(m, 2), arg


def graph_bytes(n: int, m: int) -> int:
    return _GRAPH_HDR.size + 8 * m + _ARG.size


def random_graph(n: int, m: int, seed: int = 3) -> np.ndarray:
    """m random directed edges over n nodes (deterministic)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, n, size=(m, 2), dtype=np.uint32)


# -- BFS ----------------------------------------------------------------------

#: Edges scanned per second in CSR BFS on one core.
BFS_EDGES_PER_SEC = 200e6


def bfs_distances(n: int, edges: np.ndarray, source: int) -> np.ndarray:
    """Hop distances from *source* over directed edges (-1 unreachable)."""
    adjacency: list[list[int]] = [[] for _ in range(n)]
    for u, v in edges:
        adjacency[int(u)].append(int(v))
    dist = np.full(n, -1, dtype=np.int32)
    dist[source] = 0
    frontier = [source]
    level = 0
    while frontier:
        level += 1
        next_frontier: list[int] = []
        for u in frontier:
            for v in adjacency[u]:
                if dist[v] < 0:
                    dist[v] = level
                    next_frontier.append(v)
        frontier = next_frontier
    return dist


def bfs_handler(payload: bytes) -> bytes:
    n, edges, source = unpack_graph(payload)
    if not 0 <= source < n:
        raise ValueError(f"BFS source {source} out of range")
    return bfs_distances(n, edges, source).tobytes()


def bfs_function(name: str = "graph-bfs") -> FunctionSpec:
    return FunctionSpec(
        name=name,
        handler=bfs_handler,
        cost_ns=lambda size: round((size // 8) * 1e9 / BFS_EDGES_PER_SEC),
        output_size=lambda size: max(4, (size // 8) // 2),
    )


# -- PageRank --------------------------------------------------------------------

#: Edge traversals per second per power iteration on one core.
PAGERANK_EDGES_PER_SEC = 150e6
DAMPING = 0.85


def pagerank_scores(n: int, edges: np.ndarray, iterations: int) -> np.ndarray:
    """Power iteration with uniform teleport; dangling mass spread
    uniformly (matching networkx's convention)."""
    out_degree = np.zeros(n, dtype=np.float64)
    for u, _ in edges:
        out_degree[int(u)] += 1.0
    rank = np.full(n, 1.0 / n)
    src = edges[:, 0].astype(np.int64)
    dst = edges[:, 1].astype(np.int64)
    for _ in range(iterations):
        contrib = np.zeros(n)
        if len(edges):
            weights = rank[src] / out_degree[src]
            np.add.at(contrib, dst, weights)
        dangling = rank[out_degree == 0].sum()
        rank = (1 - DAMPING) / n + DAMPING * (contrib + dangling / n)
    return rank


def pagerank_handler(payload: bytes) -> bytes:
    n, edges, iterations = unpack_graph(payload)
    return pagerank_scores(n, edges, iterations).tobytes()


def pagerank_function(name: str = "graph-pagerank") -> FunctionSpec:
    return FunctionSpec(
        name=name,
        handler=pagerank_handler,
        # Iterations are inside the payload; assume the suite's 20.
        cost_ns=lambda size: round(20 * (size // 8) * 1e9 / PAGERANK_EDGES_PER_SEC),
        output_size=lambda size: max(8, (size // 8) * 4),
    )


def sebs_extra_package() -> CodePackage:
    """All three extra functions in one deployable package."""
    package = CodePackage(name="sebs-extra", size_bytes=22_000)
    package.add(compression_function())
    package.add(bfs_function())
    package.add(pagerank_function())
    return package
