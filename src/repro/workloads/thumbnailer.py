"""SeBS *thumbnailer*: general-purpose image processing (Fig. 11a).

The real kernel is an area-average downscale to a bounded thumbnail
(default 200x200, preserving aspect), reimplemented in NumPy the way
the paper reimplements the Python benchmark in C++/OpenCV.

Cost model: decode + box-filter resize + encode is a streaming pass
over the pixels; OpenCV on one Xeon core sustains roughly 25 ns/pixel
for the whole pipeline (JPEG decode dominating).
"""

from __future__ import annotations

import numpy as np

from repro.core.functions import CodePackage, FunctionSpec
from repro.workloads.images import HEADER_BYTES, Image

THUMBNAIL_MAX_DIM = 200

#: End-to-end per-pixel processing cost (decode + resize + encode).
COST_PER_PIXEL_NS = 25
#: Fixed per-invocation setup (argument parsing, allocations).
COST_BASE_NS = 200_000


def make_thumbnail(image: Image, max_dim: int = THUMBNAIL_MAX_DIM) -> Image:
    """Area-average downscale keeping aspect ratio."""
    height, width = image.height, image.width
    scale = max(1, -(-max(height, width) // max_dim))  # ceil division
    if scale == 1:
        return Image(pixels=image.pixels.copy())
    # Crop to a multiple of the scale, then box-average.
    new_h = height // scale
    new_w = width // scale
    cropped = image.pixels[: new_h * scale, : new_w * scale, :]
    blocks = cropped.reshape(new_h, scale, new_w, scale, image.channels)
    thumb = blocks.mean(axis=(1, 3)).round().astype(np.uint8)
    return Image(pixels=thumb)


def thumbnail_cost_ns(payload_size: int) -> int:
    pixels = max(0, payload_size - HEADER_BYTES) // 3
    return COST_BASE_NS + pixels * COST_PER_PIXEL_NS


def _thumbnail_output_size(payload_size: int) -> int:
    """Virtual-payload output estimate: bounded by the thumbnail dims."""
    pixels = max(1, payload_size - HEADER_BYTES) // 3
    side = int(pixels**0.5)
    scale = max(1, -(-side // THUMBNAIL_MAX_DIM))
    out_pixels = max(1, (side // scale)) ** 2
    return HEADER_BYTES + 3 * out_pixels


def _handler(payload: bytes) -> bytes:
    return make_thumbnail(Image.decode(payload)).encode()


def thumbnailer_function(name: str = "thumbnailer") -> FunctionSpec:
    return FunctionSpec(
        name=name,
        handler=_handler,
        cost_ns=thumbnail_cost_ns,
        output_size=_thumbnail_output_size,
    )


def thumbnailer_package() -> CodePackage:
    """Deployable package: image, OpenCV-like code (bigger artifact)."""
    package = CodePackage(name="thumbnailer", size_bytes=40_000)
    package.add(thumbnailer_function())
    return package
