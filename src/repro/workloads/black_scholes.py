"""PARSEC *blackscholes*: massively parallel option pricing (Fig. 12).

Real kernel: closed-form Black-Scholes European option pricing,
vectorized over a portfolio.  The normal CDF uses the Abramowitz &
Stegun 7.1.26 polynomial (|error| < 7.5e-8), keeping the library
NumPy-only; tests cross-check against ``scipy.stats.norm``.

Wire format: 48 bytes per option (S, K, r, sigma, T, call_flag as
float64), 8 bytes out (the price).  The paper's workload -- "approx.
229 MB of input and 38 MB of output" -- is exactly 4.75 M options in
this format.

Cost model: the PARSEC kernel prices an option in ~150 ns on one Xeon
core (a few dozen flops plus two CNDF evaluations).
"""

from __future__ import annotations

import numpy as np

from repro.core.functions import CodePackage, FunctionSpec

BYTES_PER_OPTION = 48
BYTES_PER_PRICE = 8
COST_PER_OPTION_NS = 150

#: The paper's full workload: 229 MB in / 38 MB out.
PAPER_NUM_OPTIONS = 4_750_000


def norm_cdf(x: np.ndarray) -> np.ndarray:
    """Standard normal CDF, Abramowitz & Stegun 7.1.26 (|err|<7.5e-8)."""
    x = np.asarray(x, dtype=np.float64)
    t = 1.0 / (1.0 + 0.2316419 * np.abs(x))
    poly = t * (
        0.319381530
        + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429)))
    )
    pdf = np.exp(-0.5 * x * x) / np.sqrt(2.0 * np.pi)
    upper = 1.0 - pdf * poly
    return np.where(x >= 0, upper, 1.0 - upper)


def black_scholes_price(
    spot: np.ndarray,
    strike: np.ndarray,
    rate: np.ndarray,
    volatility: np.ndarray,
    expiry: np.ndarray,
    is_call: np.ndarray,
) -> np.ndarray:
    """Vectorized closed-form European option prices."""
    spot = np.asarray(spot, dtype=np.float64)
    sqrt_t = np.sqrt(expiry)
    d1 = (np.log(spot / strike) + (rate + 0.5 * volatility**2) * expiry) / (
        volatility * sqrt_t
    )
    d2 = d1 - volatility * sqrt_t
    discount = strike * np.exp(-rate * expiry)
    call = spot * norm_cdf(d1) - discount * norm_cdf(d2)
    put = discount * norm_cdf(-d2) - spot * norm_cdf(-d1)
    return np.where(is_call > 0.5, call, put)


def generate_options(n: int, seed: int = 56) -> np.ndarray:
    """(n, 6) float64 option matrix: S, K, r, sigma, T, call_flag."""
    rng = np.random.default_rng(seed)
    spot = rng.uniform(20.0, 120.0, n)
    strike = spot * rng.uniform(0.8, 1.2, n)
    rate = rng.uniform(0.01, 0.05, n)
    vol = rng.uniform(0.1, 0.6, n)
    expiry = rng.uniform(0.1, 2.0, n)
    is_call = (rng.random(n) < 0.5).astype(np.float64)
    return np.column_stack([spot, strike, rate, vol, expiry, is_call])


def pack_options(options: np.ndarray) -> bytes:
    if options.ndim != 2 or options.shape[1] != 6:
        raise ValueError("options must be an (n, 6) matrix")
    return np.ascontiguousarray(options, dtype=np.float64).tobytes()


def unpack_options(payload: bytes) -> np.ndarray:
    if len(payload) % BYTES_PER_OPTION:
        raise ValueError(f"payload of {len(payload)} B is not a whole option array")
    flat = np.frombuffer(payload, dtype=np.float64)
    return flat.reshape(-1, 6)


def price_options(options: np.ndarray) -> np.ndarray:
    return black_scholes_price(
        options[:, 0], options[:, 1], options[:, 2], options[:, 3], options[:, 4], options[:, 5]
    )


def _handler(payload: bytes) -> bytes:
    return price_options(unpack_options(payload)).tobytes()


def bs_cost_ns(payload_size: int) -> int:
    return (payload_size // BYTES_PER_OPTION) * COST_PER_OPTION_NS


def bs_function(name: str = "black-scholes") -> FunctionSpec:
    return FunctionSpec(
        name=name,
        handler=_handler,
        cost_ns=bs_cost_ns,
        output_size=lambda size: (size // BYTES_PER_OPTION) * BYTES_PER_PRICE,
    )


def bs_package() -> CodePackage:
    package = CodePackage(name="black-scholes", size_bytes=12_000)
    package.add(bs_function())
    return package
