"""Jacobi linear solver: the Fig. 13b bulk-synchronous MPI kernel.

Each iteration computes ``x' = (b - R x) / d`` for the splitting
``A = D + R``.  In the MPI+rFaaS variant, half of each iterate is
offloaded, and -- the paper's "classical serverless optimization" --
the matrix and right-hand side are cached in the warm sandbox: only
the current solution vector travels after the first invocation.

Wire format:

* setup message:  u8 0 | u32 n | u32 row_begin | u32 row_end |
  A (n x n f64) | b (n f64) | x (n f64)
* iterate message: u8 1 | u32 n | u32 row_begin | u32 row_end | x (n f64)

Response: rows [row_begin, row_end) of x'.

Cost model: the sweep is memory-bandwidth bound -- each row touches n
matrix doubles once; one core streams ~8 GB/s.  n = 2000 gives ~4 ms
per full iteration, inside the paper's 1-15 ms band.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.functions import CodePackage, FunctionSpec

_HDR = struct.Struct("<BIII")

MSG_SETUP = 0
MSG_ITERATE = 1

#: Streaming bandwidth of one pinned core over the matrix rows.
STREAM_BYTES_PER_SEC = 8e9


def jacobi_iteration_cost_ns(n: int, rows: int | None = None) -> int:
    rows = n if rows is None else rows
    return max(1, round(rows * n * 8 * 1e9 / STREAM_BYTES_PER_SEC))


def generate_system(n: int, seed: int = 13) -> tuple[np.ndarray, np.ndarray]:
    """A strictly diagonally dominant system (Jacobi converges)."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, (n, n))
    a[np.diag_indices(n)] = np.abs(a).sum(axis=1) + 1.0
    b = rng.uniform(-1.0, 1.0, n)
    return a, b


def jacobi_sweep(a: np.ndarray, b: np.ndarray, x: np.ndarray, row_begin: int, row_end: int) -> np.ndarray:
    """Rows [row_begin, row_end) of the next Jacobi iterate."""
    rows = slice(row_begin, row_end)
    diag = np.diag(a)[rows]
    partial = a[rows] @ x - diag * x[rows]
    return (b[rows] - partial) / diag


def pack_setup(a: np.ndarray, b: np.ndarray, x: np.ndarray, row_begin: int, row_end: int) -> bytes:
    n = a.shape[0]
    return (
        _HDR.pack(MSG_SETUP, n, row_begin, row_end)
        + a.astype(np.float64).tobytes()
        + b.astype(np.float64).tobytes()
        + x.astype(np.float64).tobytes()
    )


def pack_iterate(x: np.ndarray, row_begin: int, row_end: int) -> bytes:
    return _HDR.pack(MSG_ITERATE, x.shape[0], row_begin, row_end) + x.astype(np.float64).tobytes()


def setup_bytes(n: int) -> int:
    return _HDR.size + 8 * (n * n + 2 * n)


def iterate_bytes(n: int) -> int:
    return _HDR.size + 8 * n


class JacobiWorkspace:
    """The warm-sandbox state: caches A, b across invocations."""

    def __init__(self) -> None:
        self.a: np.ndarray | None = None
        self.b: np.ndarray | None = None
        self.n = 0
        self.setup_calls = 0
        self.iterate_calls = 0

    def handle(self, payload: bytes) -> bytes:
        msg_type, n, row_begin, row_end = _HDR.unpack_from(payload)
        offset = _HDR.size
        if msg_type == MSG_SETUP:
            self.setup_calls += 1
            self.n = n
            self.a = (
                np.frombuffer(payload, dtype=np.float64, count=n * n, offset=offset)
                .reshape(n, n)
                .copy()
            )
            offset += n * n * 8
            self.b = np.frombuffer(payload, dtype=np.float64, count=n, offset=offset).copy()
            offset += n * 8
        elif msg_type == MSG_ITERATE:
            self.iterate_calls += 1
            if self.a is None:
                raise RuntimeError("iterate before setup: sandbox state lost")
            if n != self.n:
                raise RuntimeError(f"dimension mismatch: cached {self.n}, got {n}")
        else:
            raise ValueError(f"unknown Jacobi message type {msg_type}")
        x = np.frombuffer(payload, dtype=np.float64, count=n, offset=offset)
        return jacobi_sweep(self.a, self.b, x, row_begin, row_end).tobytes()

    def cost_ns(self, payload_size: int) -> int:
        """Stateful cost model: sweep cost for the cached dimension.

        With virtual payloads the handler never runs, so the first
        (setup-sized) call also establishes ``n`` from the payload size
        -- subsequent iterate-sized calls then cost a half-sweep of the
        remembered dimension.
        """
        self._ensure_dimension(payload_size)
        return jacobi_iteration_cost_ns(self.n, rows=max(1, self.n // 2))

    def output_size(self, payload_size: int) -> int:
        """Virtual-mode output estimate: the half-iterate rows."""
        self._ensure_dimension(payload_size)
        return 8 * max(1, self.n // 2)

    def _ensure_dimension(self, payload_size: int) -> None:
        if self.n == 0:
            # First call is the setup: header + 8 * (n^2 + 2n) bytes.
            self.n = max(1, round(((payload_size - _HDR.size) / 8) ** 0.5))


def jacobi_function(name: str = "jacobi") -> FunctionSpec:
    workspace = JacobiWorkspace()
    return FunctionSpec(
        name=name,
        handler=workspace.handle,
        cost_ns=workspace.cost_ns,
        output_size=workspace.output_size,
    )


def jacobi_package() -> CodePackage:
    # Stateful (the matrix cache lives in the workspace closure), so a
    # factory guarantees fresh state per allocation.
    package = CodePackage(name="jacobi", size_bytes=10_000, factory=jacobi_package)
    package.add(jacobi_function())
    return package
