"""repro -- a from-scratch Python reproduction of rFaaS (IPDPS 2023).

rFaaS is an RDMA-accelerated Function-as-a-Service platform built around
two ideas: *allocation leases* that remove the centralized scheduler
from the invocation path, and an *RDMA function-dispatch protocol* with
hot (busy-polling) invocations costing only ~300 ns over raw RDMA.

Because nanosecond latencies are unobservable from wall-clock Python,
this reproduction runs on a deterministic discrete-event simulation
calibrated to the paper's measured hardware constants (see DESIGN.md).
Payloads are real bytes and functions are real computations; only their
*durations* are modelled.

Subpackages
-----------
``repro.sim``        discrete-event kernel (virtual nanoseconds)
``repro.rdma``       simulated ibverbs: QPs, CQs, MRs, verbs, fabric
``repro.tcp``        kernel-stack TCP baseline on the same fabric
``repro.cluster``    nodes, SLURM-like batch system, utilization traces
``repro.core``       rFaaS itself: managers, leases, executors, invoker
``repro.baselines``  AWS Lambda / OpenWhisk / Nightcore / FuncX models
``repro.workloads``  echo, thumbnailer, ResNet-style inference, HPC kernels
``repro.hpc``        mini-MPI and OpenMP fork-join models
``repro.analysis``   medians, nonparametric CIs, sweeps, reporting
"""

__version__ = "1.0.0"
