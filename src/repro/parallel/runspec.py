"""Picklable run descriptions: ship any scenario to a worker process.

A :class:`RunSpec` names its factory by import path (``module:qualname``)
instead of holding the callable, so the spec itself is always picklable
even when the target interpreter has not imported the module yet.  The
optional explicit seed implements the determinism contract: a worker
reconstructs exactly the RNG state the serial run would have used, so
parallel execution is bit-identical to serial execution.
"""

from __future__ import annotations

import importlib
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation run, addressable from any process."""

    #: Import path of the factory: ``package.module:qualname``.
    factory: str
    #: Keyword arguments for the factory (must be picklable).
    kwargs: dict[str, Any] = field(default_factory=dict)
    #: Explicit RNG seed, injected as ``kwargs[seed_arg]`` when set.
    seed: int | None = None
    #: Name of the keyword argument that receives :attr:`seed`.
    seed_arg: str | None = None
    #: Position in the originating grid; used for ordered reassembly.
    index: int = 0
    #: Human-readable tag for progress/error reporting.
    label: str = ""

    def resolve(self) -> Callable[..., Any]:
        """Import and return the factory callable."""
        module_name, _, qualname = self.factory.partition(":")
        if not module_name or not qualname:
            raise ValueError(f"factory must be 'module:qualname', got {self.factory!r}")
        target: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            target = getattr(target, part)
        if not callable(target):
            raise TypeError(f"{self.factory} resolved to non-callable {target!r}")
        return target

    def call(self) -> Any:
        """Resolve the factory and run it with this spec's arguments."""
        kwargs = dict(self.kwargs)
        if self.seed_arg is not None and self.seed is not None:
            kwargs[self.seed_arg] = self.seed
        return self.resolve()(**kwargs)

    @property
    def name(self) -> str:
        return self.label or f"{self.factory}[{self.index}]"


@dataclass
class FailedPoint:
    """A grid point whose run raised, crashed, or timed out.

    Failures are *data*, not control flow: one bad point must never
    hang or abort the rest of a sweep, so the engine returns this
    structured record in the slot the result would have occupied.
    """

    index: int
    label: str
    params: dict[str, Any]
    error_type: str
    message: str
    #: Full ``traceback.format_exc()`` text from the failing process
    #: (empty for timeouts and worker crashes, where no Python frame
    #: survives to report).
    traceback: str = ""

    def __bool__(self) -> bool:  # failed points are falsy in filters
        return False

    def summary(self) -> str:
        return f"{self.label or self.index}: {self.error_type}: {self.message}"


def failure_from_exception(spec: RunSpec, exc: BaseException, tb: str | None = None) -> FailedPoint:
    """Wrap an exception raised while running *spec* as a FailedPoint."""
    return FailedPoint(
        index=spec.index,
        label=spec.name,
        params=dict(spec.kwargs),
        error_type=type(exc).__name__,
        message=str(exc),
        traceback=tb if tb is not None else traceback.format_exc(),
    )


def spec_for_callable(
    fn: Callable[..., Any],
    kwargs: dict[str, Any] | None = None,
    *,
    seed: int | None = None,
    seed_arg: str | None = None,
    index: int = 0,
    label: str = "",
) -> RunSpec:
    """Build a RunSpec from a module-level callable.

    Raises ``ValueError`` when *fn* cannot be named by import path
    (lambdas, closures, instance methods) -- callers treat that as the
    signal to fall back to serial in-process execution.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        raise ValueError(f"{fn!r} is not addressable by import path")
    spec = RunSpec(
        factory=f"{module}:{qualname}",
        kwargs=dict(kwargs or {}),
        seed=seed,
        seed_arg=seed_arg,
        index=index,
        label=label,
    )
    try:
        resolved = spec.resolve()
    except (ImportError, AttributeError) as exc:
        raise ValueError(f"cannot re-import {spec.factory}: {exc}") from exc
    if resolved is not fn:
        raise ValueError(f"{spec.factory} does not round-trip to {fn!r}")
    return spec
