"""Process-pool execution engine for independent simulation runs.

``run_specs`` fans a list of :class:`RunSpec` out across CPU cores and
reassembles results **in input order**, regardless of completion order.
Guarantees:

* bit-identical to serial execution -- each worker runs one spec from a
  fresh, explicitly seeded state, so no cross-run state can leak;
* crash capture -- a spec that raises, returns an unpicklable value,
  times out, or takes its worker down (segfault) yields a structured
  :class:`FailedPoint` in its slot instead of hanging the suite;
* automatic serial fallback -- ``max_workers <= 1``, a platform without
  ``fork``, or an empty spec list runs everything inline with the same
  failure-capture semantics;
* :mod:`repro.perf` aggregation -- worker-side counters are snapshotted
  and merged into the parent's counters when perf is enabled.

Chunking batches several specs per IPC round trip (``chunksize``); the
per-task timeout then applies to each chunk as submitted.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Optional, Sequence

from repro import perf
from repro.parallel.runspec import FailedPoint, RunSpec, failure_from_exception


def available_workers() -> int:
    """CPU cores this process may use (affinity-aware, never < 1).

    Prefers :func:`os.process_cpu_count` (Python 3.13+, the canonical
    "CPUs usable by this process" call); older interpreters fall back
    to the affinity mask it is defined in terms of.
    """
    process_cpu_count = getattr(os, "process_cpu_count", None)
    if process_cpu_count is not None:
        return max(1, process_cpu_count() or 1)
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def resolve_workers(requested: "int | str | None" = None) -> int:
    """THE ``--parallel`` fallback chain, shared by every dispatch path.

    ``None``, ``0``, negative, ``"auto"``, or ``""`` resolve to one
    worker per usable CPU (:func:`available_workers`); a positive value
    (or its string form) is taken literally.  Anything else raises
    ``ValueError``.  The pool, the sweep engine, the bench harness, and
    the CLI all funnel through here so "auto" means exactly one thing.
    """
    if requested is None:
        return available_workers()
    if isinstance(requested, str):
        text = requested.strip().lower()
        if text in ("auto", ""):
            return available_workers()
        requested = int(text)  # raises ValueError on junk
    workers = int(requested)
    if workers <= 0:
        return available_workers()
    return workers


def fork_available() -> bool:
    """Whether the platform supports fork-start workers (Linux/macOS)."""
    return "fork" in multiprocessing.get_all_start_methods()


def _run_one(spec: RunSpec) -> Any:
    """Run one spec in the current process, capturing failure as data."""
    try:
        return spec.call()
    except Exception as exc:
        return failure_from_exception(spec, exc)


def _worker_chunk(payload: tuple[list[RunSpec], bool]) -> list[tuple[Any, Optional[dict]]]:
    """Worker entry point: run a chunk of specs, snapshot perf per spec."""
    specs, with_perf = payload
    out: list[tuple[Any, Optional[dict]]] = []
    for spec in specs:
        snapshot: Optional[dict] = None
        if with_perf:
            perf.reset()
            perf.enable()
        try:
            outcome = _run_one(spec)
        finally:
            if with_perf:
                snapshot = perf.snapshot()
                perf.disable()
        out.append((outcome, snapshot))
    return out


def _chunked(specs: list[RunSpec], chunksize: int) -> list[list[RunSpec]]:
    size = max(1, int(chunksize))
    return [specs[i : i + size] for i in range(0, len(specs), size)]


def run_specs(
    specs: Sequence[RunSpec],
    max_workers: Optional[int] = None,
    *,
    timeout_s: Optional[float] = None,
    chunksize: int = 1,
    cache: Optional[Any] = None,
) -> list[Any]:
    """Execute *specs*, returning one outcome per spec, in input order.

    Each outcome is either the factory's return value or a
    :class:`FailedPoint`.  ``max_workers=None`` or ``0`` uses one worker
    per available core; ``<= 1`` runs serially in-process (where
    ``timeout_s`` cannot be enforced and is ignored).

    *cache* (a :class:`repro.cache.ResultCache`) short-circuits specs
    whose content key already has a stored result: hits fill their
    result slots without dispatching (merging the stored run's perf
    counters when perf is enabled), only misses run, and successful
    miss results are written back.  :class:`FailedPoint` outcomes and
    uncacheable specs (kwargs without a canonical form) are never
    cached.  ``cache=None`` is byte-for-byte the pre-cache engine: no
    keys are computed, no disk is touched, and each run's RNG draw
    order is exactly what it always was.
    """
    specs = list(specs)
    if not specs:
        return []
    if cache is None:
        return [outcome for outcome, _ in _execute_pairs(specs, max_workers, timeout_s, chunksize)]

    keys = [cache.key_for(spec) for spec in specs]
    results: list[Any] = [None] * len(specs)
    miss_positions: list[int] = []
    for position, key in enumerate(keys):
        if key is not None:
            hit, value, snapshot = cache.lookup(key)
            if hit:
                results[position] = value
                if snapshot and perf.enabled:
                    perf.merge(snapshot)
                continue
        miss_positions.append(position)
    if miss_positions:
        pairs = _execute_pairs(
            [specs[position] for position in miss_positions],
            max_workers,
            timeout_s,
            chunksize,
        )
        for position, (outcome, snapshot) in zip(miss_positions, pairs):
            results[position] = outcome
            if keys[position] is not None and not isinstance(outcome, FailedPoint):
                cache.store(
                    keys[position], outcome, spec=specs[position], perf_snapshot=snapshot
                )
    cache.flush()
    return results


def _execute_pairs(
    specs: list[RunSpec],
    max_workers: Optional[int],
    timeout_s: Optional[float],
    chunksize: int,
) -> list[tuple[Any, Optional[dict]]]:
    """The dispatch engine: (outcome, perf delta) per spec, input order.

    Parallel outcomes carry the worker-side perf snapshot (already
    merged into this process's counters, exactly as before the cache
    existed); serial outcomes carry an in-process counter delta.  The
    snapshot is what the cache persists so later hits can re-merge it.
    """
    max_workers = resolve_workers(max_workers)
    if max_workers <= 1 or not fork_available():
        pairs: list[tuple[Any, Optional[dict]]] = []
        for spec in specs:
            if perf.enabled:
                before = perf.snapshot()
                outcome = _run_one(spec)
                pairs.append((outcome, perf.delta(before, perf.snapshot())))
            else:
                pairs.append((_run_one(spec), None))
        return pairs

    with_perf = perf.enabled
    chunks = _chunked(specs, chunksize)
    results: list[tuple[Any, Optional[dict]]] = [(None, None)] * len(specs)
    context = multiprocessing.get_context("fork")
    pool = ProcessPoolExecutor(
        max_workers=min(max_workers, len(chunks)), mp_context=context
    )
    try:
        futures = [pool.submit(_worker_chunk, (chunk, with_perf)) for chunk in chunks]
        position = 0
        broken = False
        for future, chunk in zip(futures, chunks):
            try:
                if broken:
                    raise BrokenProcessPool("pool already broken by an earlier crash")
                outcomes = future.result(timeout=timeout_s)
            except FuturesTimeout:
                future.cancel()
                outcomes = [
                    (
                        FailedPoint(
                            index=spec.index,
                            label=spec.name,
                            params=dict(spec.kwargs),
                            error_type="TimeoutError",
                            message=f"no result within {timeout_s}s",
                        ),
                        None,
                    )
                    for spec in chunk
                ]
            except BrokenProcessPool as exc:
                # A worker died hard (segfault, OOM-kill): every not-yet-
                # collected chunk fails structurally instead of hanging.
                broken = True
                outcomes = [
                    (failure_from_exception(spec, exc, tb=""), None) for spec in chunk
                ]
            except Exception as exc:  # e.g. result failed to unpickle
                outcomes = [
                    (failure_from_exception(spec, exc, tb=""), None) for spec in chunk
                ]
            for outcome, snapshot in outcomes:
                if snapshot is not None and perf.enabled:
                    perf.merge(snapshot)
                results[position] = (outcome, snapshot)
                position += 1
    finally:
        # Abandon stragglers (timeouts) rather than blocking on them.
        pool.shutdown(wait=False, cancel_futures=True)
    return results
