"""Process-pool fan-out for independent, deterministic simulations.

The evaluation is embarrassingly parallel -- every figure/ablation grid
point is an independent, explicitly seeded DES run -- so this package
ships them to worker processes and reassembles results in grid order,
bit-identical to serial execution (see ``docs/architecture.md``,
"Parallel execution").
"""

from repro.parallel.pool import (
    available_workers,
    fork_available,
    resolve_workers,
    run_specs,
)
from repro.parallel.runspec import (
    FailedPoint,
    RunSpec,
    failure_from_exception,
    spec_for_callable,
)

__all__ = [
    "FailedPoint",
    "RunSpec",
    "available_workers",
    "failure_from_exception",
    "fork_available",
    "resolve_workers",
    "run_specs",
    "spec_for_callable",
]
