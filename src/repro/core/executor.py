"""The spot executor: a lightweight allocator on an idle node.

Responsibilities (Sec. III-A): accept client connections, create
isolated execution contexts (sandboxes) with RDMA-capable executor
processes, remove processes idle too long or past their lease, and
account resource consumption into the manager's billing database via
RDMA fetch-and-add.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.cluster.node import Node, NodeClaim
from repro.core import billing as billing_mod
from repro.core.config import RFaaSConfig
from repro.core.functions import CodePackage
from repro.core.rpc import RpcConnection, rpc_connect, rpc_listen
from repro.core.sandbox import SANDBOX_PROFILES, SandboxProfile
from repro.core.worker import Worker
from repro.rdma.cm import install_cm
from repro.rdma.constants import Access, Opcode
from repro.rdma.verbs import SendWR, sge
from repro.sim.clock import secs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment


@dataclass
class Allocation:
    """One active lease's materialization on this executor."""

    lease_id: int
    tenant: str
    sandbox: SandboxProfile
    workers: list[Worker] = field(default_factory=list)
    claim: Optional[NodeClaim] = None
    billing_addr: int = 0
    billing_rkey: int = 0
    manager_host: str = ""
    started_ns: int = 0
    memory_bytes: int = 0
    #: Billing already flushed to the manager (to compute deltas).
    flushed_alloc_bs: int = 0
    flushed_compute_ns: int = 0
    flushed_hotpoll_ns: int = 0
    torn_down: bool = False


class SpotExecutor:
    """One idle node offered to rFaaS (Fig. 4's spot executor)."""

    ALLOCATOR_PORT = 10_000
    WORKER_PORT_BASE = 20_000

    def __init__(
        self,
        node: Node,
        config: Optional[RFaaSConfig] = None,
        name: Optional[str] = None,
        port: int = ALLOCATOR_PORT,
    ) -> None:
        if node.nic is None:
            raise ValueError("spot executor nodes need an RDMA NIC")
        self.node = node
        self.env: "Environment" = node.env
        self.nic = node.nic
        self.config = config or RFaaSConfig()
        self.name = name or node.name
        self.port = port
        self.alive = True
        self.allocations: dict[int, Allocation] = {}
        self._next_worker_port = self.WORKER_PORT_BASE
        self._manager_conn: Optional[RpcConnection] = None
        self._atomic_scratch = None
        #: Plain-dict "Docker registry" of deployable packages.
        self.package_registry: dict[str, CodePackage] = {}
        install_cm(self.nic)
        self._listener = rpc_listen(self.nic, port, self._handle_rpc, name=f"{self.name}-allocator")
        self._reaper = self.env.process(self._idle_reaper(), name=f"{self.name}-reaper")
        #: Ready generic sandboxes (Sec. V-B warm pool).
        self.warm_pool = 0
        self.pool_hits = 0
        self.pool_misses = 0
        if self.config.warm_pool_size > 0:
            self.env.process(
                self._fill_pool(self.config.warm_pool_size), name=f"{self.name}-pool"
            )

    # -- capacity ---------------------------------------------------------

    @property
    def free_cores(self) -> int:
        return self.node.free_cores

    @property
    def free_memory(self) -> int:
        return self.node.free_memory

    @property
    def oversubscribed(self) -> bool:
        """More live workers than physical cores on the node."""
        live = sum(len(a.workers) for a in self.allocations.values() if not a.torn_down)
        return live > self.node.spec.cores

    def try_claim_core(self) -> Optional[NodeClaim]:
        """Warm-path resource check: grab a core for one execution."""
        return self.node.try_claim(1, 0) if self.node.free_cores > 0 else None

    # -- manager registration ----------------------------------------------

    def register_with(self, manager_host: str, manager_port: int):
        """Process generator: announce this executor to a manager."""
        conn = yield from rpc_connect(self.nic, manager_host, manager_port)
        self._manager_conn = conn
        response = yield from conn.call(
            {
                "type": "register_executor",
                "host": self.nic.name,
                "port": self.port,
                "name": self.name,
                "cores": self.node.spec.cores,
                "memory_bytes": self.node.spec.memory_bytes,
            }
        )
        if self._atomic_scratch is None:
            pd = conn.qp.pd
            self._atomic_scratch = pd.register(self.nic.alloc(64), Access.LOCAL_WRITE)
        return response

    # -- the allocator RPC surface ----------------------------------------------

    def _handle_rpc(self, message: Any, connection: RpcConnection):
        """Dispatch incoming control messages (generator handler)."""
        if not self.alive:
            return None  # dead executors answer nothing
        kind = message.get("type")
        if kind == "allocate":
            return self._do_allocate(message)
        if kind == "deallocate":
            return self._do_deallocate(message)
        if kind == "lease_expired":
            return self._do_lease_expired(message)
        if kind == "ping":
            return self._do_ping(message)
        return iter_return({"error": f"unknown message type {kind!r}"})

    def _do_ping(self, message: Any):
        yield self.env.timeout(0)
        if not self.alive:
            return None
        return {"type": "pong", "name": self.name, "allocations": len(self.allocations)}

    def _do_allocate(self, message: Any):
        """Cold-start path: sandbox + worker creation (Fig. 9)."""
        env = self.env
        cfg = self.config
        yield env.timeout(cfg.timings.allocator_decision_ns)

        workers_requested = int(message["workers"])
        memory_bytes = int(message["memory_bytes"])
        # Lease authentication (Sec. III-E): the manager MAC-signed the
        # lease over exactly these parameters; forged or inflated
        # leases fail verification against the cluster secret.
        from repro.core.leases import verify_lease_token

        if not verify_lease_token(
            cfg.cluster_secret,
            message.get("token", ""),
            int(message["lease_id"]),
            message.get("tenant", "anonymous"),
            workers_requested,
            memory_bytes,
        ):
            return {"error": "lease authentication failed"}
        sandbox = SANDBOX_PROFILES[message.get("sandbox", "bare-metal")]
        package = self.package_registry.get(message["package"])
        if package is None:
            return {"error": f"package {message['package']!r} not in registry"}
        if workers_requested <= 0:
            return {"error": "workers must be positive"}
        # Fresh sandbox state per allocation (stateful packages rebuild).
        package = package.fresh()

        claim = self.node.try_claim(
            0 if cfg.allow_oversubscription else workers_requested, memory_bytes
        )
        if claim is None:
            return {"error": "insufficient resources on spot executor"}

        submit_code_started = env.now

        allocation = Allocation(
            lease_id=int(message["lease_id"]),
            tenant=message.get("tenant", "anonymous"),
            sandbox=sandbox,
            claim=claim,
            billing_addr=int(message.get("billing_addr", 0)),
            billing_rkey=int(message.get("billing_rkey", 0)),
            started_ns=env.now,
            memory_bytes=memory_bytes,
        )

        # "Code submission": the shared library has already crossed the
        # wire inside this request's padding; charge install/link time.
        yield env.timeout(
            cfg.timings.code_install_base_ns
            + secs(package.size_bytes / cfg.timings.code_install_bytes_per_sec)
        )
        submit_code_ns = env.now - submit_code_started

        # Sandbox + worker creation: the dominant cold-start cost.
        # A matching pre-booted sandbox from the warm pool bypasses the
        # container boot (Sec. V-B); a replacement boots in background.
        spawn_started = env.now
        if sandbox.name == self.config.warm_pool_sandbox and self.warm_pool > 0:
            self.warm_pool -= 1
            self.pool_hits += 1
            env.process(self._fill_pool(1), name=f"{self.name}-pool-refill")
            yield env.timeout(sandbox.pool_spawn_ns(workers_requested))
        else:
            if self.config.warm_pool_size > 0 and sandbox.name == self.config.warm_pool_sandbox:
                self.pool_misses += 1
            yield env.timeout(sandbox.spawn_ns(workers_requested))
        hot_timeout = message.get("hot_timeout_ns", cfg.hot_timeout_ns)
        buffer_bytes = message.get("buffer_bytes") or cfg.worker_buffer_bytes
        virtual_buffers = message.get("virtual_buffers")
        worker_ports = []
        for _ in range(workers_requested):
            worker_id = self._next_worker_port
            self._next_worker_port += 1
            worker = Worker(
                executor=self,
                allocation=allocation,
                worker_id=worker_id,
                package=package,
                sandbox=sandbox,
                config=cfg,
                hot_timeout_ns=hot_timeout,
                buffer_bytes=buffer_bytes,
                virtual_buffers=virtual_buffers,
            )
            allocation.workers.append(worker)
            self._listen_for_worker(worker)
            worker.start()
            worker_ports.append(worker_id)
        spawn_ns = env.now - spawn_started

        self.allocations[allocation.lease_id] = allocation
        return {
            "type": "allocated",
            "lease_id": allocation.lease_id,
            "worker_ports": worker_ports,
            "sandbox": sandbox.name,
            "submit_code_ns": submit_code_ns,
            "spawn_ns": spawn_ns,
        }

    def _listen_for_worker(self, worker: Worker) -> None:
        """CM listener handing the worker's QP to the connecting client."""
        listener = self.nic.cm.listen(worker.worker_id)

        def acceptor():
            request = yield listener.get_request()
            listener.accept(request, worker.qp, private_data=worker.connection_settings())
            listener.close()

        self.env.process(acceptor(), name=f"{self.name}-w{worker.worker_id}-accept")

    def _do_lease_expired(self, message: Any):
        """Manager-driven reclamation of an expired lease (one-way)."""
        allocation = self.allocations.get(int(message["lease_id"]))
        if allocation is not None:
            yield from self._teardown(allocation)
        return None

    def _do_deallocate(self, message: Any):
        lease_id = int(message["lease_id"])
        allocation = self.allocations.get(lease_id)
        if allocation is None:
            yield self.env.timeout(0)
            return {"error": f"unknown lease {lease_id}"}
        yield from self._teardown(allocation)
        return {"type": "deallocated", "lease_id": lease_id}

    # -- teardown, reclamation, billing -----------------------------------------

    def _teardown(self, allocation: Allocation):
        if allocation.torn_down:
            return
        allocation.torn_down = True
        for worker in allocation.workers:
            worker.kill()
        yield self.env.timeout(allocation.sandbox.teardown_ns)
        yield from self._flush_billing(allocation, final=True)
        if allocation.claim is not None:
            allocation.claim.release()
        self.allocations.pop(allocation.lease_id, None)
        # Announce freed resources so the manager reuses them (Sec. III-B).
        if self._manager_conn is not None and self._manager_conn.alive and self.alive:
            self._manager_conn.notify(
                {"type": "resources_freed", "name": self.name, "lease_id": allocation.lease_id}
            )

    def _flush_billing(self, allocation: Allocation, final: bool = False):
        """Push accounting deltas with RDMA fetch-and-add (Sec. IV-C)."""
        if (
            self._manager_conn is None
            or not self._manager_conn.alive
            or allocation.billing_addr == 0
            or self._atomic_scratch is None
        ):
            return
        env = self.env
        alloc_ns = env.now - allocation.started_ns
        alloc_bs = round(allocation.memory_bytes * alloc_ns / 1e9)
        compute_ns = sum(w.stats.busy_ns for w in allocation.workers)
        hotpoll_ns = sum(w.stats.hotpoll_ns for w in allocation.workers)
        deltas = (
            (billing_mod.SLOT_ALLOCATION, alloc_bs - allocation.flushed_alloc_bs),
            (billing_mod.SLOT_COMPUTE, compute_ns - allocation.flushed_compute_ns),
            (billing_mod.SLOT_HOTPOLL, hotpoll_ns - allocation.flushed_hotpoll_ns),
        )
        qp = self._manager_conn.qp
        send_cq = qp.send_cq
        for slot, delta in deltas:
            if delta <= 0:
                continue
            qp.post_send(
                SendWR(
                    opcode=Opcode.ATOMIC_FETCH_ADD,
                    local=sge(self._atomic_scratch, 0, 8),
                    remote_addr=allocation.billing_addr + 8 * slot,
                    rkey=allocation.billing_rkey,
                    compare_add=delta,
                )
            )
            yield from send_cq.busy_poll(max_entries=1)
        allocation.flushed_alloc_bs = alloc_bs
        allocation.flushed_compute_ns = compute_ns
        allocation.flushed_hotpoll_ns = hotpoll_ns

    def _fill_pool(self, count: int):
        """Boot *count* generic sandboxes into the warm pool."""
        from repro.sim.process import Interrupt

        profile = SANDBOX_PROFILES[self.config.warm_pool_sandbox]
        try:
            for _ in range(count):
                if not self.alive:
                    return
                yield self.env.timeout(profile.spawn_base_ns)
                self.warm_pool += 1
        except Interrupt:
            return

    def _idle_reaper(self):
        """Remove executor processes idle beyond the configured limit."""
        from repro.sim.process import Interrupt

        env = self.env
        interval = max(1, self.config.executor_idle_timeout_ns // 4)
        try:
            while self.alive:
                yield env.timeout(interval)
                for allocation in list(self.allocations.values()):
                    if allocation.torn_down or not allocation.workers:
                        continue
                    idle = min(worker.idle_ns for worker in allocation.workers)
                    if idle >= self.config.executor_idle_timeout_ns:
                        yield from self._teardown(allocation)
        except Interrupt:
            return

    # -- graceful retirement (resource reclamation) -----------------------------

    def retire(self):
        """Process generator: give the node back gracefully.

        The batch system wants this node (Sec. II-A: reclaimed resources
        must be "transient and easily retrievable"): tear every
        allocation down (flushing billing), tell the manager to stop
        offering this executor, and stop serving.
        """
        for allocation in list(self.allocations.values()):
            yield from self._teardown(allocation)
        if self._manager_conn is not None and self._manager_conn.alive:
            self._manager_conn.notify({"type": "deregister_executor", "name": self.name})
        self.alive = False
        if self._reaper.is_alive:
            self._reaper.interrupt("executor retired")
        self._listener.close()

    # -- failure injection ----------------------------------------------------

    def kill(self) -> None:
        """Simulate node failure: workers die, RPCs go unanswered."""
        self.alive = False
        for allocation in self.allocations.values():
            for worker in allocation.workers:
                worker.kill()
        if self._reaper.is_alive:
            self._reaper.interrupt("executor killed")
        self._listener.close()


def iter_return(value):
    """A generator that immediately returns *value* (handler helper)."""
    return value
    yield  # pragma: no cover - makes this a generator
