"""Executor placement policies (Sec. III-D round robin), pluggable.

The resource manager's only placement decision is "which spot executor
serves this lease?".  The paper's answer is round-robin first-fit over
the executors with capacity; this module makes that policy a
first-class object with two interchangeable implementations:

* :class:`RoundRobinFirstFit` -- the scalar reference used by the RPC
  manager (:class:`repro.core.resource_manager.ResourceManager`).  It
  preserves the historical scan semantics *exactly* -- same iteration
  order, same round-robin cursor arithmetic, dead records consume a
  scan step but are skipped before any capacity math -- while caching
  the sorted name list (the old code re-sorted every grant, which is
  O(E log E) per lease at cluster scale).
* :class:`SoACapacity` -- the struct-of-arrays twin used by the
  control-plane scale kernel (:mod:`repro.experiments.control`): free
  cores / free memory / liveness as parallel numpy arrays, placement by
  a masked ``argmax`` over the eligibility vector split at the
  round-robin cursor.  Pick order and cursor movement are contractually
  identical to the scalar policy; ``tests/core/test_placement.py`` pins
  the contract on randomized sequences.

Both implementations answer the same question with the same cursor
rule: scan ``sorted(names)`` cyclically starting at ``rr_index``; the
first *alive* record satisfying ``(allow_oversubscription or
free_cores >= cores) and free_memory >= memory_bytes`` wins, and the
cursor moves to the winner's successor.  A full fruitless cycle leaves
the cursor untouched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.resource_manager import ExecutorRecord


class RoundRobinFirstFit:
    """Scalar round-robin first-fit over a name-keyed record dict."""

    __slots__ = ("rr_index", "_names")

    def __init__(self) -> None:
        self.rr_index = 0
        self._names: Optional[list[str]] = None

    def invalidate(self) -> None:
        """Drop the cached name order (membership changed)."""
        self._names = None

    def _sorted_names(self, executors: dict) -> list[str]:
        names = self._names
        if names is None or len(names) != len(executors):
            names = self._names = sorted(executors)
        return names

    def pick(
        self,
        executors: dict,
        cores: int,
        memory_bytes: int,
        allow_oversubscription: bool = False,
    ) -> Optional["ExecutorRecord"]:
        """First record with capacity at or after the cursor, else None."""
        names = self._sorted_names(executors)
        if not names:
            return None
        size = len(names)
        rr = self.rr_index
        for step in range(size):
            record = executors[names[(rr + step) % size]]
            # Dead records consume a scan step (the cursor arithmetic
            # counts them) but are skipped before any capacity math.
            if not record.alive:
                continue
            fits_cores = allow_oversubscription or record.free_cores >= cores
            if fits_cores and record.free_memory >= memory_bytes:
                self.rr_index = (rr + step + 1) % size
                return record
        return None


class SoACapacity:
    """Struct-of-arrays executor capacity with vectorized placement.

    Index ``i`` is the rank of the executor's name in sorted order, so
    the masked-argmax scan below visits candidates in exactly the order
    :class:`RoundRobinFirstFit` iterates its sorted name list.
    """

    __slots__ = ("size", "cores", "memory", "free_cores", "free_memory", "alive", "rr_index")

    def __init__(self, cores_per_executor: np.ndarray, memory_per_executor: np.ndarray) -> None:
        self.cores = np.asarray(cores_per_executor, dtype=np.int64)
        self.memory = np.asarray(memory_per_executor, dtype=np.int64)
        if self.cores.shape != self.memory.shape or self.cores.ndim != 1:
            raise ValueError("cores and memory must be equal-length 1-D arrays")
        self.size = int(self.cores.size)
        self.free_cores = self.cores.copy()
        self.free_memory = self.memory.copy()
        self.alive = np.ones(self.size, dtype=bool)
        self.rr_index = 0

    @classmethod
    def uniform(cls, executors: int, cores: int, memory_bytes: int) -> "SoACapacity":
        return cls(
            np.full(executors, cores, dtype=np.int64),
            np.full(executors, memory_bytes, dtype=np.int64),
        )

    def pick(
        self, cores: int, memory_bytes: int, allow_oversubscription: bool = False
    ) -> int:
        """Index of the first fitting alive executor from the cursor, or -1.

        Fast path: the record *at* the cursor usually fits (round robin
        on an unsaturated pool), three scalar loads decide.  General
        path: one boolean eligibility vector, then ``argmax`` on the
        ``[rr:]`` and ``[:rr]`` halves -- numpy's argmax on bools stops
        at the first True, so this is the vectorized first-fit.
        """
        rr = self.rr_index
        free_cores = self.free_cores
        free_memory = self.free_memory
        alive = self.alive
        if (
            alive[rr]
            and free_memory[rr] >= memory_bytes
            and (allow_oversubscription or free_cores[rr] >= cores)
        ):
            self.rr_index = (rr + 1) % self.size
            return rr
        ok = alive & (free_memory >= memory_bytes)
        if not allow_oversubscription:
            ok &= free_cores >= cores
        tail = ok[rr:]
        j = int(np.argmax(tail))
        if tail[j]:
            picked = rr + j
        else:
            head = ok[:rr]
            j = int(np.argmax(head)) if rr else 0
            if not (rr and head[j]):
                return -1
            picked = j
        self.rr_index = (picked + 1) % self.size
        return picked

    # -- state transitions mirrored from the RPC manager ------------------

    def grant(self, index: int, cores: int, memory_bytes: int) -> None:
        self.free_cores[index] -= cores
        self.free_memory[index] -= memory_bytes

    def reclaim(self, index: int, cores: int, memory_bytes: int) -> None:
        self.free_cores[index] += cores
        self.free_memory[index] += memory_bytes

    def kill(self, index: int) -> None:
        """Mark dead.  Capacity stays decremented, exactly like
        ``ResourceManager._declare_dead`` (which clears the lease list
        without returning capacity -- the node is gone)."""
        self.alive[index] = False

    def revive(self, index: int) -> None:
        """Node back with full capacity (its leases all terminated)."""
        self.alive[index] = True
        self.free_cores[index] = self.cores[index]
        self.free_memory[index] = self.memory[index]
