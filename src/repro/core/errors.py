"""rFaaS error hierarchy."""

from __future__ import annotations


class RFaaSError(Exception):
    """Base class for platform errors."""


class AllocationError(RFaaSError):
    """No lease could be granted (no capacity, unknown executor, ...)."""


class LeaseExpired(RFaaSError):
    """The lease backing an operation has expired or was terminated."""


class InvocationRejected(RFaaSError):
    """The executor rejected an invocation (resource exhaustion).

    Clients handle this by redirecting to another executor; it only
    escapes to the user when every executor rejected.
    """


class FunctionNotFound(RFaaSError):
    """The invoked function index/name is not in the deployed package."""


class InvocationTimeout(RFaaSError):
    """A future's wait_for deadline elapsed before the result arrived.

    The remote execution is not cancelled (an RDMA write cannot be
    recalled); the eventual result is discarded client-side.
    """
