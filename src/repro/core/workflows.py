"""Serverless workflows on rFaaS (Sec. VII, "Can rFaaS improve
serverless workflows?").

The paper argues that an orchestrator built on rFaaS invocations gets
"single-digit microsecond latency overhead of invocations and efficient
data movement" -- here is that orchestrator: a DAG of named stages whose
edges carry real bytes, executed over a client's cached worker
connections with maximal parallelism (a stage runs the moment all of
its predecessors finished).

Join stages receive the concatenation of their predecessors' outputs in
declaration order; source stages receive the workflow input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.errors import RFaaSError
from repro.sim.events import AnyOf

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.invoker import Invoker, RemoteFuture


class WorkflowError(RFaaSError):
    """Invalid workflow structure (cycle, unknown stage, ...)."""


@dataclass
class Stage:
    """One node of the DAG: a function applied to its inputs."""

    name: str
    fn: str
    after: tuple[str, ...] = ()
    #: Upper bound on this stage's output (buffer sizing).
    out_capacity: int = 64 * 1024


@dataclass
class Workflow:
    """A named DAG of stages."""

    name: str = "workflow"
    stages: dict[str, Stage] = field(default_factory=dict)

    def add(
        self,
        name: str,
        fn: str,
        after: tuple[str, ...] | list[str] = (),
        out_capacity: int = 64 * 1024,
    ) -> "Workflow":
        if name in self.stages:
            raise WorkflowError(f"duplicate stage {name!r}")
        self.stages[name] = Stage(name=name, fn=fn, after=tuple(after), out_capacity=out_capacity)
        return self

    def validate(self) -> list[str]:
        """Topological order; raises on cycles or unknown dependencies."""
        for stage in self.stages.values():
            for dep in stage.after:
                if dep not in self.stages:
                    raise WorkflowError(f"stage {stage.name!r} depends on unknown {dep!r}")
        order: list[str] = []
        state: dict[str, int] = {}  # 0 unseen, 1 visiting, 2 done

        def visit(name: str) -> None:
            if state.get(name) == 2:
                return
            if state.get(name) == 1:
                raise WorkflowError(f"cycle through stage {name!r}")
            state[name] = 1
            for dep in self.stages[name].after:
                visit(dep)
            state[name] = 2
            order.append(name)

        for name in self.stages:
            visit(name)
        return order

    @property
    def sources(self) -> list[str]:
        return [s.name for s in self.stages.values() if not s.after]

    @property
    def sinks(self) -> list[str]:
        wanted = {dep for s in self.stages.values() for dep in s.after}
        return [name for name in self.stages if name not in wanted]


def chain(name: str, *fns: str, out_capacity: int = 64 * 1024) -> Workflow:
    """A linear pipeline: fn1 -> fn2 -> ... (a common workflow shape)."""
    workflow = Workflow(name=name)
    previous: tuple[str, ...] = ()
    for index, fn in enumerate(fns):
        stage = f"s{index}-{fn}"
        workflow.add(stage, fn, after=previous, out_capacity=out_capacity)
        previous = (stage,)
    return workflow


@dataclass
class WorkflowRun:
    """The outcome of one workflow execution."""

    outputs: dict[str, bytes]
    stage_rtt_ns: dict[str, int]
    started_ns: int
    finished_ns: int

    @property
    def makespan_ns(self) -> int:
        return self.finished_ns - self.started_ns

    def result(self, workflow: Workflow) -> bytes:
        """The single sink's output (raises if the DAG has several)."""
        sinks = workflow.sinks
        if len(sinks) != 1:
            raise WorkflowError(f"workflow has {len(sinks)} sinks; name one explicitly")
        return self.outputs[sinks[0]]


class WorkflowRunner:
    """Executes workflows over an invoker's worker connections."""

    def __init__(self, invoker: "Invoker") -> None:
        self.invoker = invoker
        self.env = invoker.env

    def run(self, workflow: Workflow, initial_payload: bytes):
        """Process generator: execute the DAG, return a WorkflowRun.

        Stages are dispatched the moment their predecessors complete;
        independent stages run on different workers concurrently.
        """
        workflow.validate()
        env = self.env
        started = env.now
        outputs: dict[str, bytes] = {}
        rtts: dict[str, int] = {}
        pending: dict[str, "RemoteFuture"] = {}
        remaining = set(workflow.stages)

        def payload_for(stage: Stage) -> bytes:
            if not stage.after:
                return initial_payload
            return b"".join(outputs[dep] for dep in stage.after)

        def dispatch_ready() -> None:
            for name in sorted(remaining):
                stage = workflow.stages[name]
                if name in pending:
                    continue
                if all(dep in outputs for dep in stage.after):
                    payload = payload_for(stage)
                    in_buf = self.invoker.alloc_input(max(len(payload), 64))
                    in_buf.write(payload)
                    out_buf = self.invoker.alloc_output(stage.out_capacity)
                    pending[name] = self.invoker.submit(
                        stage.fn, in_buf, len(payload), out_buf
                    )

        dispatch_ready()
        while remaining:
            if not pending:
                raise WorkflowError("workflow stalled: no runnable stages")
            events = {name: future.wait() for name, future in pending.items()}
            yield AnyOf(env, list(events.values()))
            for name, event in list(events.items()):
                if event.processed:
                    result = event.value
                    outputs[name] = result.output()
                    rtts[name] = result.rtt_ns
                    remaining.discard(name)
                    del pending[name]
            dispatch_ready()
        return WorkflowRun(
            outputs=outputs, stage_rtt_ns=rtts, started_ns=started, finished_ns=env.now
        )
