"""The client library: ``rfaas::invoker`` (Sec. IV-B).

Mirrors the paper's programming model: the invoker acquires and caches
leases, manages RDMA-registered buffers (inputs carry the 12-byte
result header), submits invocations as single RDMA writes, and hands
back futures.  Completion events are consumed either by busy polling
(minimum latency) or by a single blocking background loop per
connection (minimum CPU) -- both modes from Sec. IV-B.

Rejected invocations (executor resource exhaustion, Fig. 6) are
transparently redirected to another connected worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import TYPE_CHECKING, Any, Optional

from repro.core import protocol
from repro.core.config import ColdStartBreakdown, RFaaSConfig
from repro.core.errors import (
    AllocationError,
    InvocationRejected,
    InvocationTimeout,
    LeaseExpired,
    RFaaSError,
)
from repro.rdma.errors import ConnectionRefused
from repro.core.functions import CodePackage
from repro.core.leases import Lease, LeaseState
from repro.core.rpc import RpcConnection, rpc_connect
from repro.rdma.cm import install_cm
from repro.rdma.constants import Access, Opcode
from repro.rdma.verbs import RecvWR, SendWR, sge

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rdma.device import NIC
    from repro.rdma.memory import MemoryRegion
    from repro.sim.core import Environment

_rpc_ids = count(1)


class ClientBuffer:
    """An RDMA-registered client buffer (``rfaas::buffer``).

    Input buffers reserve :data:`protocol.HEADER_BYTES` at the front for
    the result header; user payload starts at :attr:`payload_offset`.
    """

    def __init__(self, mr: "MemoryRegion", *, is_input: bool) -> None:
        self.mr = mr
        self.is_input = is_input
        self.payload_offset = protocol.HEADER_BYTES if is_input else 0

    @property
    def capacity(self) -> int:
        return self.mr.length - self.payload_offset

    def write(self, payload: bytes, offset: int = 0) -> None:
        """Place user payload into the buffer."""
        self.mr.write(self.payload_offset + offset, payload)

    def read(self, length: int, offset: int = 0) -> bytes:
        return self.mr.read(self.payload_offset + offset, length)

    @property
    def is_virtual(self) -> bool:
        return self.mr.block.is_virtual


@dataclass
class InvocationResult:
    """What a completed future resolves to."""

    status: int
    output_size: int
    output_buffer: Optional[ClientBuffer]
    submitted_ns: int
    completed_ns: int

    @property
    def ok(self) -> bool:
        return self.status == protocol.STATUS_OK

    @property
    def rtt_ns(self) -> int:
        return self.completed_ns - self.submitted_ns

    def output(self) -> bytes:
        if self.output_buffer is None or self.output_buffer.is_virtual:
            return b""
        return self.output_buffer.read(self.output_size)


class RemoteFuture:
    """Result handle for one invocation (``std::future`` analogue)."""

    def __init__(
        self,
        invoker: "Invoker",
        fn: "str | int",
        in_buf: ClientBuffer,
        size: int,
        out_buf: ClientBuffer,
    ) -> None:
        self.invoker = invoker
        #: Function name or raw index; indices resolve per connection
        #: (different leases may carry different code packages).
        self.fn = fn
        self.in_buf = in_buf
        self.size = size
        self.out_buf = out_buf
        self.event = invoker.env.event()
        self.submitted_ns = invoker.env.now
        self.tried_workers: list[int] = []
        self.redirects = 0
        #: Set when a wait_for deadline fired; late results/failures
        #: are silently dropped instead of crashing the simulation.
        self.abandoned = False
        #: The pooled SendWR this invocation went out on (recycled by
        #: the completion loop once the response arrives).
        self._send_wr: Optional[SendWR] = None

    def wait(self):
        """Event to ``yield`` on; value is an :class:`InvocationResult`."""
        return self.event

    def wait_for(self, timeout_ns: int):
        """Generator: result within *timeout_ns*, else raises
        :class:`InvocationTimeout`.  The invocation itself is NOT
        cancelled (RDMA writes cannot be recalled); a late result is
        discarded when it lands."""
        from repro.sim.events import AnyOf

        env = self.invoker.env
        deadline = env.timeout(timeout_ns)
        yield AnyOf(env, [self.event, deadline])
        if self.event.processed:
            if not self.event.ok:
                raise self.event.value
            return self.event.value
        self.abandoned = True
        raise InvocationTimeout(f"invocation exceeded {timeout_ns} ns")

    @property
    def done(self) -> bool:
        return self.event.triggered


@dataclass
class WorkerConnection:
    """A cached, direct RDMA connection to one remote worker thread."""

    invoker: "Invoker"
    lease: Lease
    qp: Any
    settings: dict
    scratch_mr: Any
    package: Optional[CodePackage] = None
    alive: bool = True
    futures: dict[int, RemoteFuture] = field(default_factory=dict)
    inflight: int = 0
    _inv_ids: Any = field(default_factory=lambda: count(1))
    #: Submissions waiting for an input slot: a worker exposes
    #: ``slots`` independent regions of its input buffer (1 by default
    #: -- one request at a time, as in the paper); writes beyond that
    #: would overwrite in-flight requests.
    _queue: list[RemoteFuture] = field(default_factory=list)
    _active: int = 0

    def __post_init__(self) -> None:
        # The per-dispatch fast path: settings are immutable after the
        # CM handshake, so hoist the dict lookups out of _dispatch().
        settings = self.settings
        self._worker_id: int = settings["worker_id"]
        self._slots: int = settings.get("slots", 1)
        self._slot_stride: int = settings.get("slot_stride", settings["input_capacity"])
        self._input_addr: int = settings["input_addr"]
        self._input_rkey: int = settings["input_rkey"]
        # Receives are stateless (zero-byte landing zone), so one WR
        # object is re-posted for every outstanding invocation.
        self._recv_wr = RecvWR(local=sge(self.scratch_mr, 0, 0))
        #: Recycled request descriptors (see _dispatch / completion loop).
        self._send_pool: list[SendWR] = []
        #: Packed 12-byte result headers, keyed by output MR: an output
        #: buffer's (addr, rkey) never changes, so pack once.
        self._header_cache: dict[Any, bytes] = {}

    @property
    def worker_id(self) -> int:
        return self._worker_id

    @property
    def slots(self) -> int:
        return self._slots

    def serves(self, fn: "str | int") -> bool:
        """Can this connection's package execute *fn*?"""
        if isinstance(fn, int):
            return True
        if self.package is None:
            return False
        try:
            self.package.index_of(fn)
            return True
        except KeyError:
            return False

    def submit(self, future: RemoteFuture) -> None:
        """Enqueue; dispatches immediately while input slots are free."""
        self.inflight += 1
        if self._active >= self.slots:
            self._queue.append(future)
        else:
            self._dispatch(future)

    def _dispatch(self, future: RemoteFuture) -> None:
        self._active += 1
        fn_index = (
            future.fn if isinstance(future.fn, int) else self.package.index_of(future.fn)
        )
        invocation_id = next(self._inv_ids) % 65_536
        self.futures[invocation_id] = future
        future.tried_workers.append(self._worker_id)
        # The target slot rotates with the invocation id (the worker
        # derives the same slot from the request immediate).
        slot_offset = (invocation_id % self._slots) * self._slot_stride
        # Header: where the worker should write the result.
        out_mr = future.out_buf.mr
        header = self._header_cache.get(out_mr)
        if header is None:
            header = protocol.pack_header(out_mr.addr, out_mr.rkey)
            self._header_cache[out_mr] = header
        future.in_buf.mr.write(0, header)
        total = protocol.HEADER_BYTES + future.size
        # Land the response: one receive per outstanding invocation.
        self.qp.post_recv(self._recv_wr)
        # Reuse a recycled request descriptor when one is available;
        # safe because a response implies (RC ordering) the request WR
        # is fully delivered, and these WRs are unsignaled so nothing
        # downstream reads their fields afterwards.
        pool = self._send_pool
        if pool:
            wr = pool.pop()
            wr.local.mr = future.in_buf.mr
            wr.local.length = total
            wr.remote_addr = self._input_addr + slot_offset
            wr.imm_data = protocol.pack_request_imm(invocation_id, fn_index)
            wr.inline = total <= self.qp.max_inline_data
        else:
            wr = SendWR(
                opcode=Opcode.RDMA_WRITE_WITH_IMM,
                local=sge(future.in_buf.mr, 0, total),
                remote_addr=self._input_addr + slot_offset,
                rkey=self._input_rkey,
                imm_data=protocol.pack_request_imm(invocation_id, fn_index),
                inline=total <= self.qp.max_inline_data,
                signaled=False,
            )
        future._send_wr = wr
        self.qp.post_send(wr)

    def _completed_one(self) -> None:
        """Response consumed: dispatch the next queued request, if any."""
        self._active -= 1
        if self._queue and self.alive:
            self._dispatch(self._queue.pop(0))


class _ManagerClient:
    """Demuxed RPC client: responses by id, notifications to the invoker."""

    def __init__(self, invoker: "Invoker", conn: RpcConnection) -> None:
        self.invoker = invoker
        self.conn = conn
        self._pending: dict[int, Any] = {}
        invoker.env.process(self._demux(), name=f"{invoker.name}-mgr-demux")

    def request(self, message: dict):
        """Generator: RPC call routed through the demux loop."""
        rpc_id = next(_rpc_ids)
        message = dict(message)
        message["_rpc_id"] = rpc_id
        event = self.invoker.env.event()
        self._pending[rpc_id] = event
        self.conn.notify(message)
        response = yield event
        return response

    def _demux(self):
        while self.conn.alive:
            message = yield from self.conn._receive(blocking=True)
            if message is None:
                return
            rpc_id = message.get("_rpc_id") if isinstance(message, dict) else None
            event = self._pending.pop(rpc_id, None) if rpc_id is not None else None
            if event is not None:
                event.succeed(message)
            else:
                self.invoker._on_notification(message)


class Invoker:
    """The client endpoint of rFaaS."""

    def __init__(
        self,
        nic: "NIC",
        managers: list[tuple[str, int]],
        config: Optional[RFaaSConfig] = None,
        name: Optional[str] = None,
        package_registry: Optional[dict[str, CodePackage]] = None,
        completion_mode: str = "polling",
    ) -> None:
        if completion_mode not in ("polling", "blocking"):
            raise ValueError(f"unknown completion mode {completion_mode!r}")
        self.nic = nic
        self.env: "Environment" = nic.env
        self.managers = list(managers)
        self.config = config or RFaaSConfig()
        self.name = name or f"client-{nic.name}"
        self.package_registry = package_registry if package_registry is not None else {}
        self.completion_mode = completion_mode
        self.connections: list[WorkerConnection] = []
        self.leases: dict[int, Lease] = {}
        self._manager_clients: dict[tuple[str, int], _ManagerClient] = {}
        self._manager_rr = 0
        self._package: Optional[CodePackage] = None
        self.terminated_leases: list[int] = []
        install_cm(nic)

    # -- buffers -------------------------------------------------------------

    def alloc_input(self, payload_capacity: int, *, virtual: bool = False) -> ClientBuffer:
        """An input buffer with room for the 12-byte header."""
        block = self.nic.alloc(protocol.HEADER_BYTES + payload_capacity, virtual=virtual)
        mr = self.nic.create_pd().register(block, Access.LOCAL_WRITE)
        return ClientBuffer(mr, is_input=True)

    def alloc_output(self, capacity: int, *, virtual: bool = False) -> ClientBuffer:
        """An output buffer the remote worker writes results into."""
        block = self.nic.alloc(max(capacity, 1), virtual=virtual)
        mr = self.nic.create_pd().register(block, Access.LOCAL_WRITE | Access.REMOTE_WRITE)
        return ClientBuffer(mr, is_input=False)

    # -- allocation (cold path) --------------------------------------------------

    def allocate(
        self,
        package: CodePackage,
        workers: int = 1,
        memory_bytes: int = 1 << 30,
        sandbox: str = "bare-metal",
        hot_timeout_ns: Optional[int] = "default",  # type: ignore[assignment]
        timeout_ns: Optional[int] = None,
        worker_buffer_bytes: Optional[int] = None,
        virtual_buffers: Optional[bool] = None,
    ):
        """Process generator: acquire a lease and spin up *workers*.

        Returns a :class:`ColdStartBreakdown`; the new worker
        connections are appended to :attr:`connections`.
        """
        env = self.env
        breakdown = ColdStartBreakdown()
        self._package = package
        self.package_registry[package.name] = package
        if hot_timeout_ns == "default":
            hot_timeout_ns = self.config.hot_timeout_ns

        # 1. Manager connection (cached across allocations).
        t0 = env.now
        manager_client, lease_response = yield from self._acquire_lease(
            workers, memory_bytes, timeout_ns, breakdown
        )
        if lease_response.get("type") != "lease_granted":
            raise AllocationError(lease_response.get("error", "lease denied"))

        lease = Lease(
            client=self.name,
            executor_host=lease_response["executor_host"],
            executor_port=lease_response["executor_port"],
            cores=workers,
            memory_bytes=memory_bytes,
            issued_ns=env.now,
            timeout_ns=lease_response["timeout_ns"],
            billing_addr=lease_response["billing_addr"],
            billing_rkey=lease_response["billing_rkey"],
            manager_host=lease_response.get("executor_name", ""),
        )
        # Adopt the manager-assigned id so both sides agree.
        lease.lease_id = lease_response["lease_id"]
        lease_token = lease_response.get("token", "")
        self.leases[lease.lease_id] = lease

        # 2. Connect to the executor's lightweight allocator.
        t2 = env.now
        allocator_conn = yield from rpc_connect(self.nic, lease.executor_host, lease.executor_port)
        breakdown.connect_allocator = env.now - t2

        # 3. Submit allocation + code; the executor creates the sandbox.
        t3 = env.now
        response = yield from allocator_conn.call(
            {
                "type": "allocate",
                "lease_id": lease.lease_id,
                "token": lease_token,
                "tenant": self.name,
                "workers": workers,
                "memory_bytes": memory_bytes,
                "sandbox": sandbox,
                "package": package.name,
                "code_padding": bytes(min(package.size_bytes, 48 * 1024)),
                "billing_addr": lease.billing_addr,
                "billing_rkey": lease.billing_rkey,
                "hot_timeout_ns": hot_timeout_ns,
                "buffer_bytes": worker_buffer_bytes,
                "virtual_buffers": virtual_buffers,
            }
        )
        if response is None or "error" in response:
            raise AllocationError((response or {}).get("error", "allocation failed"))
        wall = env.now - t3
        breakdown.spawn_workers = response["spawn_ns"]
        breakdown.submit_code = wall - response["spawn_ns"]

        # 4. Direct connections to every worker thread.
        t4 = env.now
        for worker_port in response["worker_ports"]:
            pd = self.nic.create_pd()
            cq = self.nic.create_cq(name=f"{self.name}.w{worker_port}")
            qp = self.nic.create_qp(pd, cq)
            result = yield from self.nic.cm.connect(
                lease.executor_host, worker_port, qp, private_data={"client": self.name}
            )
            scratch = pd.register(self.nic.alloc(64), Access.LOCAL_WRITE)
            connection = WorkerConnection(
                invoker=self,
                lease=lease,
                qp=qp,
                settings=result.private_data,
                scratch_mr=scratch,
                package=package,
            )
            self.connections.append(connection)
            env.process(self._completion_loop(connection), name=f"{self.name}-compl-w{worker_port}")
        breakdown.connect_workers = env.now - t4
        return breakdown

    def _acquire_lease(self, workers, memory_bytes, timeout_ns, breakdown):
        """Try managers round-robin until one grants a lease."""
        env = self.env
        if not self.managers:
            raise AllocationError("no resource managers configured")
        client = None
        last_error = "lease denied"
        for step in range(len(self.managers)):
            address = self.managers[(self._manager_rr + step) % len(self.managers)]
            t0 = env.now
            client = self._manager_clients.get(address)
            if client is None:
                try:
                    conn = yield from rpc_connect(self.nic, address[0], address[1])
                except ConnectionRefused:
                    # Dead/unreachable manager replica: fail over to the
                    # next one (Sec. III-D horizontal scaling).
                    last_error = f"manager {address[0]}:{address[1]} unreachable"
                    continue
                client = _ManagerClient(self, conn)
                self._manager_clients[address] = client
            breakdown.connect_manager += env.now - t0
            t1 = env.now
            response = yield from client.request(
                {
                    "type": "lease_request",
                    "client": self.name,
                    "cores": workers,
                    "memory_bytes": memory_bytes,
                    "timeout_ns": timeout_ns,
                }
            )
            breakdown.lease_grant += env.now - t1
            if response.get("type") == "lease_granted":
                self._manager_rr = (self._manager_rr + step + 1) % len(self.managers)
                return client, response
            last_error = response.get("error", "lease denied")
        return client, {"type": "lease_denied", "error": last_error}

    # -- invocation (hot path) ------------------------------------------------------

    def submit(
        self,
        fn: str | int,
        in_buf: ClientBuffer,
        size: int,
        out_buf: ClientBuffer,
        worker: Optional[int] = None,
    ) -> RemoteFuture:
        """Dispatch one invocation; returns a :class:`RemoteFuture`.

        ``worker`` selects a specific connection index; by default the
        connection with the fewest outstanding invocations among those
        whose package contains *fn* wins.
        """
        if self._package is None:
            raise RFaaSError("no package allocated; call allocate() first")
        future = RemoteFuture(self, fn, in_buf, size, out_buf)
        connection = self._pick_connection(worker, exclude=(), fn=fn)
        if connection is None:
            raise LeaseExpired("no live worker connections serve this function")
        connection.submit(future)
        return future

    def _pick_connection(
        self, worker: Optional[int], exclude, fn: "str | int | None" = None
    ) -> Optional[WorkerConnection]:
        if worker is not None:
            return self.connections[worker]
        live = [
            c
            for c in self.connections
            if c.alive and c.worker_id not in exclude and (fn is None or c.serves(fn))
        ]
        if not live:
            return None
        return min(live, key=lambda c: c.inflight)

    def _completion_loop(self, connection: WorkerConnection):
        """Per-connection consumer of response CQEs."""
        env = self.env
        cq = connection.qp.recv_cq
        timings = self.config.timings
        while connection.alive:
            if self.completion_mode == "polling":
                wcs = yield from cq.busy_poll(max_entries=16)
            else:
                wcs = yield from cq.blocking_wait(max_entries=16)
            for wc in wcs:
                if not wc.ok:
                    continue
                yield env.timeout(timings.client_complete_ns)
                invocation_id, status = protocol.unpack_response_imm(wc.imm_data or 0)
                future = connection.futures.pop(invocation_id, None)
                if future is None:
                    continue
                wr = future._send_wr
                if wr is not None:
                    future._send_wr = None
                    connection._send_pool.append(wr)
                connection.inflight -= 1
                connection._completed_one()
                if status == protocol.STATUS_REJECTED:
                    self._redirect(future)
                    continue
                result = InvocationResult(
                    status=status,
                    output_size=wc.byte_len,
                    output_buffer=future.out_buf,
                    submitted_ns=future.submitted_ns,
                    completed_ns=env.now,
                )
                if status == protocol.STATUS_OK:
                    future.event.succeed(result)
                else:
                    error = (
                        InvocationRejected("function not found")
                        if status == protocol.STATUS_FUNCTION_NOT_FOUND
                        else RFaaSError(f"invocation failed with status {status}")
                    )
                    future.event.defuse()
                    future.event.fail(error)

    def _redirect(self, future: RemoteFuture) -> None:
        """Fig. 6: resubmit a rejected invocation to another executor."""
        if future.abandoned:
            return  # deadline already passed; don't waste a worker
        future.redirects += 1
        connection = self._pick_connection(
            None, exclude=tuple(future.tried_workers), fn=future.fn
        )
        if connection is None:
            future.event.defuse()
            future.event.fail(InvocationRejected("all executors rejected the invocation"))
            return
        connection.submit(future)

    def invoke(self, fn: str | int, payload: bytes, out_capacity: Optional[int] = None):
        """Generator convenience: allocate buffers, submit, wait, return bytes."""
        in_buf = self.alloc_input(len(payload))
        in_buf.write(payload)
        out_buf = self.alloc_output(out_capacity or max(len(payload), 64))
        future = self.submit(fn, in_buf, len(payload), out_buf)
        result = yield future.wait()
        return result.output()

    def map(self, fn: str | int, payloads: list[bytes], out_capacity: Optional[int] = None):
        """Generator: invoke *fn* once per payload, in parallel.

        The paper's parallel-invocation model (Sec. III-D): requests are
        dispatched simultaneously across the cached worker connections
        (least-loaded first) and the results return in payload order.
        """
        futures: list[RemoteFuture] = []
        for payload in payloads:
            in_buf = self.alloc_input(len(payload))
            in_buf.write(payload)
            out_buf = self.alloc_output(out_capacity or max(len(payload), 64))
            futures.append(self.submit(fn, in_buf, len(payload), out_buf))
        outputs: list[bytes] = []
        for future in futures:
            result = yield future.wait()
            outputs.append(result.output())
        return outputs

    def scale_to(
        self,
        package: CodePackage,
        workers: int,
        *,
        memory_bytes: int = 1 << 30,
        sandbox: str = "bare-metal",
        **allocate_kwargs,
    ):
        """Generator: grow the worker pool to (at least) *workers*.

        "The user requests how many function instances should be used,
        and the client library manages lease allocations to reach the
        desired scale" (Sec. III-D) -- missing capacity is leased in
        chunks that the managers can place, spilling across executors.
        """
        current = sum(
            1 for c in self.connections if c.alive and c.package is package
        ) or sum(1 for c in self.connections if c.alive and c.package and c.package.name == package.name)
        deficit = workers - current
        chunk = deficit
        while deficit > 0:
            try:
                yield from self.allocate(
                    package,
                    workers=chunk,
                    memory_bytes=memory_bytes,
                    sandbox=sandbox,
                    **allocate_kwargs,
                )
                deficit -= chunk
                chunk = deficit
            except AllocationError:
                if chunk == 1:
                    raise
                chunk = max(1, chunk // 2)  # no single executor fits: split
        return self.live_workers

    def renew_lease(self, lease_id: int, timeout_ns: Optional[int] = None):
        """Generator: extend an active lease before it expires.

        Keeps warmed-up executors across long sessions (the lease clock
        restarts from now).  Raises :class:`LeaseExpired` if the manager
        no longer considers the lease active.
        """
        lease = self.leases.get(lease_id)
        if lease is None:
            raise LeaseExpired(f"unknown lease {lease_id}")
        for client in self._manager_clients.values():
            response = yield from client.request(
                {"type": "lease_renew", "lease_id": lease_id, "timeout_ns": timeout_ns}
            )
            if response.get("type") == "lease_renewed":
                lease.renew(self.env.now, timeout_ns)
                return response["expiry_ns"]
        raise LeaseExpired(f"no manager renewed lease {lease_id}")

    # -- teardown & notifications --------------------------------------------------

    def deallocate(self):
        """Process generator: release every lease and connection."""
        for lease in list(self.leases.values()):
            if lease.state is not LeaseState.ACTIVE:
                continue
            conn = yield from rpc_connect(self.nic, lease.executor_host, lease.executor_port)
            yield from conn.call({"type": "deallocate", "lease_id": lease.lease_id})
            for address, client in self._manager_clients.items():
                response = yield from client.request(
                    {"type": "lease_release", "lease_id": lease.lease_id}
                )
                if response.get("type") == "lease_released":
                    break
            lease.release()
        for connection in self.connections:
            connection.alive = False
        self.connections.clear()

    def _on_notification(self, message: dict) -> None:
        if message.get("type") == "lease_terminated":
            lease_id = message["lease_id"]
            self.terminated_leases.append(lease_id)
            lease = self.leases.get(lease_id)
            if lease is not None:
                lease.terminate()
            for connection in self.connections:
                if connection.lease.lease_id == lease_id:
                    connection.alive = False
                    doomed = list(connection.futures.values()) + connection._queue
                    for future in doomed:
                        if not future.event.triggered:
                            future.event.defuse()
                            future.event.fail(LeaseExpired(message.get("reason", "terminated")))
                    connection.futures.clear()
                    connection._queue.clear()

    @property
    def live_workers(self) -> int:
        return sum(1 for connection in self.connections if connection.alive)
