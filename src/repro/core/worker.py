"""User-code executor workers: where invocations actually run.

Each worker is one function instance (Sec. III-C): a thread pinned to a
core, with its own QP, input buffer and completion queue.  The loop
implements the paper's invocation modes:

* **hot** -- busy-poll the receive CQ; noticing a request costs 45 ns
  but the core burns the whole time (billed as hot-polling time).
* **warm** -- sleep on the completion channel; +4.3 us latency, no CPU.
* the worker enters hot mode right after every execution and rolls back
  to warm after ``hot_timeout_ns`` without a new request.

An invocation arrives as one RDMA WRITE_WITH_IMM carrying
``[12-byte result header | payload]``; the worker runs the *real*
function handler, charges the cost model's virtual time, and answers
with a single WRITE_WITH_IMM into the client's result buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core import protocol
from repro.core.config import RFaaSConfig
from repro.core.functions import CodePackage
from repro.core.sandbox import SandboxProfile
from repro.rdma.constants import Access, Opcode
from repro.rdma.verbs import RecvWR, SendWR, sge
from repro.sim.events import AnyOf
from repro.sim.process import Interrupt

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.executor import Allocation, SpotExecutor
    from repro.rdma.device import NIC


@dataclass
class WorkerStats:
    """Per-worker accounting, feeding the billing counters."""

    invocations: int = 0
    rejections: int = 0
    busy_ns: int = 0
    hotpoll_ns: int = 0
    hot_to_warm_rollbacks: int = 0
    last_activity_ns: int = 0
    mode_history: list[str] = field(default_factory=list)


class Worker:
    """One worker thread of a user-code executor process."""

    def __init__(
        self,
        executor: "SpotExecutor",
        allocation: "Allocation",
        worker_id: int,
        package: CodePackage,
        sandbox: SandboxProfile,
        config: RFaaSConfig,
        hot_timeout_ns: Optional[int],
        buffer_bytes: Optional[int] = None,
        virtual_buffers: Optional[bool] = None,
    ) -> None:
        self.executor = executor
        self.allocation = allocation
        self.env = executor.env
        self.nic: "NIC" = executor.node.nic
        self.worker_id = worker_id
        self.package = package
        self.sandbox = sandbox
        self.config = config
        self.hot_timeout_ns = hot_timeout_ns
        self.stats = WorkerStats()
        self.alive = True
        self.mode = "hot" if hot_timeout_ns != 0 else "warm"

        pd = self.nic.create_pd()
        self.pd = pd
        size = buffer_bytes or config.worker_buffer_bytes
        # Buffers beyond this threshold go virtual: the hundred-MB
        # offload sweeps track sizes only (DESIGN.md substitution).
        # Clients using virtual payload buffers say so explicitly.
        virtual = virtual_buffers if virtual_buffers is not None else size > 16 * 1024 * 1024
        # Pipelining slices the input buffer into slots; virtual
        # buffers keep only a single shadowed header region, so they
        # are limited to one outstanding invocation.
        self.pipeline_depth = 1 if virtual else max(1, config.worker_pipeline_depth)
        # Input buffer the client writes [header | payload] into.
        self._input_block = self.nic.alloc(size, virtual=virtual)
        self.input_mr = pd.register(
            self._input_block, Access.LOCAL_WRITE | Access.REMOTE_WRITE
        )
        # Staging buffer for function output before the response write.
        self._output_block = self.nic.alloc(size, virtual=virtual)
        self.output_mr = pd.register(self._output_block, Access.LOCAL_WRITE)
        # Tiny landing zone for the zero-byte parts of WRITE_WITH_IMM.
        self._scratch_mr = pd.register(self.nic.alloc(64), Access.LOCAL_WRITE)
        # Stateless zero-byte landing WR, re-posted for every receive.
        self._recv_wr = RecvWR(local=sge(self._scratch_mr, 0, 0))
        self.recv_cq = self.nic.create_cq(name=f"{executor.name}.w{worker_id}.recv")
        self.send_cq = self.nic.create_cq(name=f"{executor.name}.w{worker_id}.send")
        self.qp = self.nic.create_qp(pd, self.send_cq, self.recv_cq)
        self._process = None

    # -- connection metadata exposed to the client ------------------------

    def connection_settings(self) -> dict:
        """What the client needs to invoke this worker remotely."""
        depth = self.pipeline_depth
        return {
            "worker_id": self.worker_id,
            "input_addr": self.input_mr.addr,
            "input_rkey": self.input_mr.rkey,
            "input_capacity": self.input_mr.length,
            # Pipelining: the input buffer is sliced into `slots`
            # independent regions; slot = invocation_id % slots.
            "slots": depth,
            "slot_stride": self.input_mr.length // depth,
        }

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        for _ in range(self.config.recv_ring_depth):
            self.qp.post_recv(self._recv_wr)
        self.stats.last_activity_ns = self.env.now
        self._process = self.env.process(
            self._loop(), name=f"{self.executor.name}-worker{self.worker_id}"
        )

    def kill(self) -> None:
        """Hard stop (executor teardown or failure injection)."""
        self.alive = False
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("killed")

    # -- the invocation loop ---------------------------------------------------

    def _loop(self):
        env = self.env
        model = self.nic.model
        try:
            while self.alive:
                if self.mode == "hot":
                    entered_hot = env.now
                    arrival = self.recv_cq.arrival_event()
                    if self.hot_timeout_ns is None:
                        yield arrival
                    else:
                        rollback = env.timeout(self.hot_timeout_ns)
                        yield AnyOf(env, [arrival, rollback])
                        if not arrival.processed and len(self.recv_cq) == 0:
                            # Rolled back: the whole window was polling.
                            self.stats.hotpoll_ns += env.now - entered_hot
                            self.stats.hot_to_warm_rollbacks += 1
                            self.mode = "warm"
                            self.stats.mode_history.append("warm")
                            continue
                    # Request arrived; everything since entering hot mode
                    # except this detection was polling.
                    self.stats.hotpoll_ns += env.now - entered_hot
                    yield env.timeout(model.poll_detect_ns)
                    wcs = self.recv_cq.poll(max_entries=1)
                    if not wcs:
                        continue
                    yield from self._handle(wcs[0], hot=True)
                else:
                    wcs = yield from self.recv_cq.blocking_wait(max_entries=1)
                    yield from self._handle(wcs[0], hot=False)
                    if self.hot_timeout_ns != 0:
                        # Sec. III-C: enter hot mode right after execution.
                        self.mode = "hot"
                        self.stats.mode_history.append("hot")
        except Interrupt:
            return

    def _handle(self, wc, hot: bool):
        env = self.env
        timings = self.config.timings
        if not wc.ok:
            return
        self.stats.last_activity_ns = env.now
        invocation_id, fn_index = protocol.unpack_request_imm(wc.imm_data or 0)

        # SR-IOV virtual-function data-path penalty (Fig. 8, Docker).
        penalty = self.sandbox.hot_penalty_ns if hot else self.sandbox.warm_penalty_ns
        if penalty:
            yield env.timeout(penalty)

        # Locate this invocation's input slot (slot 0 when unpipelined)
        # and parse its 12-byte header: where the result goes.
        depth = self.pipeline_depth
        slot_offset = (invocation_id % depth) * (self.input_mr.length // depth)
        header = self.input_mr.read(slot_offset, protocol.HEADER_BYTES)
        result_addr, result_rkey = protocol.unpack_header(header)
        payload_size = max(0, wc.byte_len - protocol.HEADER_BYTES)

        # Warm invocations on oversubscribed executors verify resource
        # availability with the allocator first (Sec. III-D); rejection
        # is immediate and cheap.
        core_claim = None
        if not hot and self.executor.oversubscribed:
            yield env.timeout(timings.warm_resource_check_ns)
            core_claim = self.executor.try_claim_core()
            if core_claim is None:
                self.stats.rejections += 1
                yield env.timeout(timings.rejection_ns)
                self._respond(invocation_id, protocol.STATUS_REJECTED, None, 0, result_addr, result_rkey)
                self._repost()
                return

        yield env.timeout(timings.worker_dispatch_ns)
        spec = self.package.by_index(fn_index)
        if spec is None:
            self._respond(
                invocation_id, protocol.STATUS_FUNCTION_NOT_FOUND, None, 0, result_addr, result_rkey
            )
            self._repost()
            if core_claim is not None:
                core_claim.release()
            return

        payload: Optional[bytes]
        if self._input_block.is_virtual:
            payload = None
        else:
            payload = self.input_mr.read(slot_offset + protocol.HEADER_BYTES, payload_size)

        started = env.now
        try:
            output, out_size = spec.execute(payload, payload_size)
        except Exception:
            yield env.timeout(timings.rejection_ns)
            self._respond(invocation_id, protocol.STATUS_FAILED, None, 0, result_addr, result_rkey)
            self._repost()
            if core_claim is not None:
                core_claim.release()
            return
        cost = spec.cost_ns(payload_size)
        if cost:
            yield env.timeout(cost)
        self.stats.busy_ns += env.now - started
        self.stats.invocations += 1

        self._respond(invocation_id, protocol.STATUS_OK, output, out_size, result_addr, result_rkey)
        self._repost()
        self.stats.last_activity_ns = env.now
        if core_claim is not None:
            core_claim.release()

    def _respond(
        self,
        invocation_id: int,
        status: int,
        output: Optional[bytes],
        out_size: int,
        result_addr: int,
        result_rkey: int,
    ) -> None:
        """One WRITE_WITH_IMM straight into the client's result buffer.

        The staging buffer rotates slots with the invocation id, exactly
        like the input buffer: the response payload is captured by
        reference (zero-copy), so with pipelining a later invocation's
        output must not land on top of an in-flight response.  Outputs
        too large for a slot fall back to offset 0 (a depth-1 layout).
        """
        depth = self.pipeline_depth
        offset = 0
        if depth > 1:
            stride = self.output_mr.length // depth
            if out_size <= stride:
                offset = (invocation_id % depth) * stride
        if output is not None:
            self.output_mr.write(offset, output)
        inline = out_size <= self.qp.max_inline_data
        self.qp.post_send(
            SendWR(
                opcode=Opcode.RDMA_WRITE_WITH_IMM,
                local=sge(self.output_mr, offset, out_size),
                remote_addr=result_addr,
                rkey=result_rkey,
                imm_data=protocol.pack_response_imm(invocation_id, status),
                inline=inline,
                signaled=False,
            )
        )

    def _repost(self) -> None:
        self.qp.post_recv(self._recv_wr)

    @property
    def idle_ns(self) -> int:
        return self.env.now - self.stats.last_activity_ns
