"""One-call deployment builder: fabric + managers + executors + clients.

Benchmarks, examples and integration tests all start from here::

    dep = Deployment.build(executors=2, clients=1)
    invoker = dep.new_invoker()
    ...
    dep.run()          # drive the simulation

The builder mirrors the paper's testbed: every node has 36 cores,
377 GB of memory and one 100 Gb/s NIC behind a single switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.node import Node, NodeSpec
from repro.core.config import RFaaSConfig
from repro.core.executor import SpotExecutor
from repro.core.functions import CodePackage
from repro.core.invoker import Invoker
from repro.core.resource_manager import ResourceManager
from repro.rdma.fabric import Fabric, FaultModel
from repro.rdma.latency import LatencyModel
from repro.sim.core import Environment
from repro.sim.wheel import new_environment, validate_granularity_bits


@dataclass
class Deployment:
    """A wired rFaaS cluster inside one simulation environment."""

    env: Environment
    fabric: Fabric
    config: RFaaSConfig
    managers: list[ResourceManager] = field(default_factory=list)
    executors: list[SpotExecutor] = field(default_factory=list)
    invokers: list[Invoker] = field(default_factory=list)
    client_nodes: list[Node] = field(default_factory=list)
    #: The shared "Docker registry" of code packages.
    package_registry: dict[str, CodePackage] = field(default_factory=dict)
    _client_count: int = 0

    @classmethod
    def build(
        cls,
        executors: int = 1,
        managers: int = 1,
        clients: int = 1,
        config: Optional[RFaaSConfig] = None,
        node_spec: Optional[NodeSpec] = None,
        latency_model: Optional[LatencyModel] = None,
        env: Optional[Environment] = None,
        faults: Optional[FaultModel] = None,
    ) -> "Deployment":
        """Construct and register the whole cluster.

        The manager registration handshakes run inside the simulation;
        call :meth:`settle` (or just start using invokers) afterwards.
        """
        config = config or RFaaSConfig()
        if env is None:
            env_kwargs = {}
            if config.scheduler == "wheel" and config.granularity_bits is not None:
                env_kwargs["granularity_bits"] = validate_granularity_bits(
                    config.granularity_bits
                )
            env = new_environment(config.scheduler, **env_kwargs)
        fabric = Fabric(env, latency_model, faults=faults)
        spec = node_spec or NodeSpec()
        deployment = cls(env=env, fabric=fabric, config=config)

        for index in range(managers):
            nic = fabric.attach(f"manager{index}")
            # Disjoint lease-id namespaces keep ids unique across the
            # replica set while each manager stays deterministic.
            deployment.managers.append(ResourceManager(nic, config, lease_namespace=index))

        for index in range(executors):
            nic = fabric.attach(f"executor{index}")
            node = Node(env, f"executor{index}", spec, nic=nic)
            executor = SpotExecutor(node, config)
            executor.package_registry = deployment.package_registry
            deployment.executors.append(executor)
            manager = deployment.managers[index % managers]
            env.process(
                executor.register_with(manager.nic.name, manager.port),
                name=f"register-{executor.name}",
            )

        for index in range(clients):
            deployment._add_client_node(spec)

        return deployment

    def _add_client_node(self, spec: Optional[NodeSpec] = None) -> Node:
        index = self._client_count
        self._client_count += 1
        nic = self.fabric.attach(f"client{index}")
        node = Node(self.env, f"client{index}", spec or NodeSpec(), nic=nic)
        self.client_nodes.append(node)
        return node

    def new_invoker(
        self,
        client_index: int = 0,
        completion_mode: str = "polling",
        name: Optional[str] = None,
    ) -> Invoker:
        """An invoker bound to an existing client node."""
        node = self.client_nodes[client_index]
        invoker = Invoker(
            node.nic,
            managers=[(m.nic.name, m.port) for m in self.managers],
            config=self.config,
            name=name or f"client{client_index}",
            package_registry=self.package_registry,
            completion_mode=completion_mode,
        )
        self.invokers.append(invoker)
        return invoker

    def add_client_node(self) -> Node:
        """Attach one more client node (e.g. one per MPI rank)."""
        return self._add_client_node()

    def settle(self, horizon_ns: int = 50_000_000) -> None:
        """Run the simulation briefly so registrations complete."""
        self.env.run(until=self.env.now + horizon_ns)

    def run(self, process=None):
        """Run a driver process to completion (or drain the queue)."""
        if process is None:
            return self.env.run()
        return self.env.run(until=self.env.process(process))
