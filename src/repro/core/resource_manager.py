"""The resource manager: leases, heartbeats, billing, replication.

The manager is involved **only at cold start** (Sec. III-B): it grants
leases over its pool of spot executors and gets out of the invocation
path.  It heartbeats its executors (Sec. III-A) and, when one dies,
terminates its leases and announces the termination to the affected
clients for fast reclamation.  Deployments replicate managers by giving
each a disjoint slice of executors (Sec. III-D, horizontal scaling);
the client library round-robins across them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import TYPE_CHECKING, Any, Optional

from repro.core.billing import BillingDatabase
from repro.core.config import RFaaSConfig
from repro.core.leases import Lease, LeaseState
from repro.core.placement import RoundRobinFirstFit
from repro.core.rpc import RpcConnection, rpc_connect, rpc_listen
from repro.sim.events import AnyOf

#: Lease-id namespaces of replicated managers are spaced this far
#: apart, so ids stay unique across a deployment without any shared
#: counter (managers are independent by design, Sec. III-D).
LEASE_NAMESPACE_STRIDE = 1 << 40

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rdma.device import NIC
    from repro.sim.core import Environment


@dataclass
class ExecutorRecord:
    """Manager-side view of one registered spot executor."""

    name: str
    host: str
    port: int
    cores: int
    memory_bytes: int
    free_cores: int
    free_memory: int
    alive: bool = True
    missed_heartbeats: int = 0
    conn: Optional[RpcConnection] = None
    leases: list[Lease] = field(default_factory=list)


class ResourceManager:
    """One resource-manager instance."""

    MANAGER_PORT = 9_000

    def __init__(
        self,
        nic: "NIC",
        config: Optional[RFaaSConfig] = None,
        port: int = MANAGER_PORT,
        name: Optional[str] = None,
        lease_namespace: int = 0,
    ) -> None:
        self.nic = nic
        self.env: "Environment" = nic.env
        self.config = config or RFaaSConfig()
        self.port = port
        self.name = name or f"manager-{nic.name}"
        self.billing = BillingDatabase(nic)
        self.executors: dict[str, ExecutorRecord] = {}
        self.placement = RoundRobinFirstFit()
        #: Manager-local lease ids: deterministic across repeated runs
        #: in one process (the module-global counter they replace made
        #: back-to-back runs fingerprint differently), unique across
        #: replicated managers via disjoint namespaces.
        self._lease_ids = count(lease_namespace * LEASE_NAMESPACE_STRIDE + 1)
        self.leases: dict[int, Lease] = {}
        #: lease id -> hosting record, so release is O(1) instead of a
        #: scan over every executor's lease list.
        self._lease_records: dict[int, ExecutorRecord] = {}
        #: client name -> RpcConnection, for termination announcements.
        self._client_conns: dict[str, RpcConnection] = {}
        self.alive = True
        self._listener = rpc_listen(nic, port, self._handle_rpc, name=f"{self.name}-rpc")
        self._heartbeater = self.env.process(self._heartbeat_loop(), name=f"{self.name}-hb")

    # -- RPC dispatch -------------------------------------------------------

    def _handle_rpc(self, message: Any, connection: RpcConnection):
        kind = message.get("type")
        if kind == "register_executor":
            return self._do_register(message, connection)
        if kind == "lease_request":
            return self._do_lease(message, connection)
        if kind == "lease_release":
            return self._do_release(message)
        if kind == "lease_renew":
            return self._do_renew(message)
        if kind == "resources_freed":
            self._on_resources_freed(message)
            return None  # one-way
        if kind == "deregister_executor":
            record = self.executors.get(message.get("name", ""))
            if record is not None:
                self._declare_dead(record, reason="retired")
            return None  # one-way
        if kind == "billing_query":
            return {"account": self.billing.read_account(message["tenant"]).__dict__}
        return {"error": f"unknown message type {kind!r}"}

    # -- executor registration & heartbeats ------------------------------------

    @property
    def _rr_index(self) -> int:
        return self.placement.rr_index

    @_rr_index.setter
    def _rr_index(self, value: int) -> None:
        self.placement.rr_index = value

    def _do_register(self, message: Any, connection: RpcConnection):
        record = self.register_record(
            name=message["name"],
            host=message["host"],
            port=message["port"],
            cores=message["cores"],
            memory_bytes=message["memory_bytes"],
        )
        # Connect back for heartbeats (manager -> executor pings).
        yield from self._connect_executor(record)
        return {"type": "registered", "manager": self.name}

    def register_record(
        self, name: str, host: str, port: int, cores: int, memory_bytes: int
    ) -> ExecutorRecord:
        """Adopt an executor without the RPC handshake.

        Scale harnesses (``repro.experiments.control``) register
        thousands of executors this way; ``conn`` stays ``None`` so the
        heartbeat loop skips them and churn is driven explicitly.
        """
        record = ExecutorRecord(
            name=name,
            host=host,
            port=port,
            cores=cores,
            memory_bytes=memory_bytes,
            free_cores=cores,
            free_memory=memory_bytes,
        )
        self.executors[name] = record
        self.placement.invalidate()
        return record

    def revive_executor(self, name: str) -> ExecutorRecord:
        """A previously dead executor is back, at full capacity.

        Its leases were all terminated at death (``_declare_dead``
        cleared them without returning capacity), so the free counters
        reset to the full envelope.
        """
        record = self.executors[name]
        if record.alive:
            raise ValueError(f"executor {name} is already alive")
        record.alive = True
        record.missed_heartbeats = 0
        record.free_cores = record.cores
        record.free_memory = record.memory_bytes
        return record

    def _connect_executor(self, record: ExecutorRecord):
        record.conn = yield from rpc_connect(self.nic, record.host, record.port)

    def _heartbeat_loop(self):
        from repro.sim.process import Interrupt

        try:
            yield from self._heartbeat_loop_inner()
        except Interrupt:
            return

    def _heartbeat_loop_inner(self):
        env = self.env
        cfg = self.config
        while self.alive:
            yield env.timeout(cfg.heartbeat_interval_ns)
            for record in list(self.executors.values()):
                if not record.alive or record.conn is None:
                    continue
                response = yield from self._ping(record)
                if response is None:
                    record.missed_heartbeats += 1
                    if record.missed_heartbeats >= cfg.heartbeat_misses:
                        self._declare_dead(record)
                else:
                    record.missed_heartbeats = 0

    def _ping(self, record: ExecutorRecord):
        """One ping with timeout; returns the pong or None."""
        env = self.env
        record.conn.notify({"type": "ping"})
        arrival = record.conn.qp.recv_cq.arrival_event()
        deadline = env.timeout(self.config.heartbeat_interval_ns)
        yield AnyOf(env, [arrival, deadline])
        if not arrival.processed and len(record.conn.qp.recv_cq) == 0:
            return None
        response = yield from record.conn._receive(blocking=False)
        return response

    def _declare_dead(self, record: ExecutorRecord, reason: str = "failed") -> None:
        """Executor gone (failure or retirement): reclaim, terminate
        leases, announce to the affected clients."""
        record.alive = False
        for lease in record.leases:
            if lease.state is LeaseState.ACTIVE:
                lease.terminate()
                self.leases.pop(lease.lease_id, None)
                self._lease_records.pop(lease.lease_id, None)
                client_conn = self._client_conns.get(lease.client)
                if client_conn is not None and client_conn.alive:
                    client_conn.notify(
                        {
                            "type": "lease_terminated",
                            "lease_id": lease.lease_id,
                            "reason": f"executor {record.name} {reason}",
                        }
                    )
        record.leases.clear()

    # -- leases ------------------------------------------------------------------

    def _do_lease(self, message: Any, connection: RpcConnection):
        """Grant a lease: the only centralized step in rFaaS."""
        yield self.env.timeout(self.config.timings.manager_decision_ns)
        return self.grant_lease(message, connection)

    def grant_lease(self, message: Any, connection: RpcConnection):
        """The decision itself, after the manager's processing delay.

        Synchronous so harnesses that model the decision delay
        themselves (the control-plane reference driver) can call the
        real placement/billing/lease path directly.
        """
        env = self.env
        cfg = self.config
        client = message["client"]
        self._client_conns[client] = connection
        cores = int(message["cores"])
        memory_bytes = int(message["memory_bytes"])
        timeout_ns = int(message.get("timeout_ns") or cfg.lease_timeout_ns)

        record = self._pick_executor(cores, memory_bytes)
        if record is None:
            return {"type": "lease_denied", "error": "no executor with sufficient capacity"}

        billing_addr, billing_rkey = self.billing.open_account(client)
        lease = Lease(
            lease_id=next(self._lease_ids),
            client=client,
            executor_host=record.host,
            executor_port=record.port,
            cores=cores,
            memory_bytes=memory_bytes,
            issued_ns=env.now,
            timeout_ns=timeout_ns,
            billing_addr=billing_addr,
            billing_rkey=billing_rkey,
            manager_host=self.nic.name,
        )
        record.free_cores -= cores
        record.free_memory -= memory_bytes
        record.leases.append(lease)
        self.leases[lease.lease_id] = lease
        self._lease_records[lease.lease_id] = record
        env.process(self._expire_later(lease, record), name=f"lease{lease.lease_id}-expiry")
        from repro.core.leases import sign_lease

        return {
            "type": "lease_granted",
            "token": sign_lease(
                cfg.cluster_secret, lease.lease_id, client, cores, memory_bytes
            ),
            "lease_id": lease.lease_id,
            "executor_host": record.host,
            "executor_port": record.port,
            "executor_name": record.name,
            "cores": cores,
            "memory_bytes": memory_bytes,
            "timeout_ns": timeout_ns,
            "billing_addr": billing_addr,
            "billing_rkey": billing_rkey,
        }

    def _pick_executor(self, cores: int, memory_bytes: int) -> Optional[ExecutorRecord]:
        """Round-robin over executors with capacity (Sec. III-D).

        Delegates to the pluggable policy; pick order and cursor
        movement are pinned by ``tests/core/test_placement.py`` so the
        vectorized control-plane kernel has an exact contract to match.
        """
        return self.placement.pick(
            self.executors, cores, memory_bytes, self.config.allow_oversubscription
        )

    def _expire_later(self, lease: Lease, record: ExecutorRecord):
        # Renewals push expiry_ns forward; keep sleeping until a check
        # finds the lease actually past its (possibly renewed) expiry.
        while True:
            remaining = lease.expiry_ns - self.env.now
            if remaining > 0:
                yield self.env.timeout(remaining)
            if lease.state is not LeaseState.ACTIVE:
                return
            if self.env.now >= lease.expiry_ns:
                break
        lease.expire()
        self._return_capacity(record, lease)
        client_conn = self._client_conns.get(lease.client)
        if client_conn is not None and client_conn.alive:
            client_conn.notify(
                {"type": "lease_terminated", "lease_id": lease.lease_id, "reason": "expired"}
            )
        # Fast resource reclamation: tell the executor to tear down too.
        if record.conn is not None and record.conn.alive and record.alive:
            record.conn.notify({"type": "lease_expired", "lease_id": lease.lease_id})

    def _do_renew(self, message: Any):
        """Extend an active lease (restarts its clock from now)."""
        lease = self.leases.get(int(message["lease_id"]))
        if lease is None or lease.state is not LeaseState.ACTIVE:
            return {"type": "renew_denied", "error": "lease not active"}
        timeout_ns = message.get("timeout_ns")
        lease.renew(self.env.now, int(timeout_ns) if timeout_ns else None)
        return {
            "type": "lease_renewed",
            "lease_id": lease.lease_id,
            "expiry_ns": lease.expiry_ns,
        }

    def _do_release(self, message: Any):
        lease = self.leases.get(int(message["lease_id"]))
        if lease is None:
            return {"error": "unknown lease"}
        lease.release()
        record = self._lease_records.get(lease.lease_id)
        if record is not None:
            self._return_capacity(record, lease)
        return {"type": "lease_released", "lease_id": lease.lease_id}

    def _return_capacity(self, record: ExecutorRecord, lease: Lease) -> None:
        if lease in record.leases:
            record.leases.remove(lease)
            self._lease_records.pop(lease.lease_id, None)
            record.free_cores += lease.cores
            record.free_memory += lease.memory_bytes

    def _on_resources_freed(self, message: Any) -> None:
        # Executor-side teardown finished; capacity is already returned
        # on release/expiry, so this is informational bookkeeping.
        record = self.executors.get(message.get("name", ""))
        if record is not None:
            record.missed_heartbeats = 0

    # -- introspection ----------------------------------------------------------

    def active_leases(self) -> list[Lease]:
        return [lease for lease in self.leases.values() if lease.state is LeaseState.ACTIVE]

    def kill(self) -> None:
        self.alive = False
        if self._heartbeater.is_alive:
            self._heartbeater.interrupt("manager killed")
        self._listener.close()
