"""Function registry and code packages.

A :class:`FunctionSpec` is the reproduction's version of Listing 1's
``uint32_t f(void* in, uint32_t size, void* out)``: a real Python
callable from input bytes to output bytes, plus a *cost model* giving
the virtual-time duration of the computation on the paper's hardware.
The callable runs for real (correctness is checked in tests); the cost
model is what the simulated clock charges.

A :class:`CodePackage` bundles functions the way rFaaS ships a shared
library inside the container image: functions are addressed by index
(the low 16 bits of the request immediate) and the package has a
transfer size -- the paper's no-op library is 7.88 kB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

#: Real computation: input payload -> output payload.
Handler = Callable[[bytes], bytes]
#: Virtual-time cost model: input size in bytes -> compute ns.
CostModel = Callable[[int], int]


def _zero_cost(_size: int) -> int:
    return 0


@dataclass(frozen=True)
class FunctionSpec:
    """One deployable function."""

    name: str
    handler: Handler
    #: Simulated compute time as a function of the input size.
    cost_ns: CostModel = _zero_cost
    #: Output size for *virtual* payloads (no real bytes to run the
    #: handler on).  Defaults to echo semantics (output size == input).
    output_size: Callable[[int], int] = lambda size: size

    def execute(self, payload: Optional[bytes], payload_size: int) -> tuple[Optional[bytes], int]:
        """Run the function; returns (output payload or None, output size).

        ``payload is None`` means the invocation used virtual buffers;
        only sizes flow then.
        """
        if payload is None:
            return None, self.output_size(payload_size)
        output = self.handler(payload)
        return output, len(output)


def echo_function(name: str = "echo") -> FunctionSpec:
    """The paper's no-op benchmark function: returns its input."""
    return FunctionSpec(name=name, handler=lambda data: data)


@dataclass
class CodePackage:
    """A deployable bundle of functions (the 'shared library')."""

    functions: list[FunctionSpec] = field(default_factory=list)
    #: Size of the code artifact shipped during cold start.  The
    #: paper's benchmark library is 7.88 kB.
    size_bytes: int = 7_880
    name: str = "package"
    #: Rebuilds the package from scratch.  Packages with *stateful*
    #: functions (e.g. the Jacobi matrix cache) must set this so every
    #: allocation gets its own sandbox state -- exactly like starting a
    #: fresh container.  Stateless packages may leave it None.
    factory: Optional[Callable[[], "CodePackage"]] = None

    def fresh(self) -> "CodePackage":
        """A per-allocation instance (self when stateless)."""
        return self.factory() if self.factory is not None else self

    def add(self, spec: FunctionSpec) -> int:
        """Register *spec*; returns its function index."""
        if any(existing.name == spec.name for existing in self.functions):
            raise ValueError(f"duplicate function name {spec.name!r}")
        self.functions.append(spec)
        return len(self.functions) - 1

    def index_of(self, name: str) -> int:
        for index, spec in enumerate(self.functions):
            if spec.name == name:
                return index
        raise KeyError(f"no function named {name!r} in package {self.name!r}")

    def by_index(self, index: int) -> Optional[FunctionSpec]:
        if 0 <= index < len(self.functions):
            return self.functions[index]
        return None

    def __len__(self) -> int:
        return len(self.functions)
