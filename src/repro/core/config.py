"""Platform configuration: timings and policies.

``RFaaSTimings`` holds the platform-side processing constants.  Their
defaults are derived from the paper's measured overheads:

* hot invocation overhead over raw RDMA = ``worker_dispatch_ns +
  client_complete_ns`` = 180 + 146 = **326 ns** (Sec. V-A),
* warm adds the blocking-notify-vs-poll gap from the latency model
  (4389 - 45 = 4344 ns), totalling **4.67 us**,
* Docker data-path penalties (+50 ns hot / +650 ns warm) live in the
  sandbox profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.sim.clock import ms, secs, us


@dataclass(frozen=True)
class RFaaSTimings:
    """Processing constants of the rFaaS implementation itself (ns)."""

    #: Worker: parse the 12-byte header, look up the function pointer in
    #: the code package, set up arguments.
    worker_dispatch_ns: int = 180
    #: Client library: match the response CQE to its future and fulfil it.
    client_complete_ns: int = 146
    #: Resource manager: validate a lease request and pick an executor.
    manager_decision_ns: int = us(15)
    #: Lightweight allocator: validate an allocation request.
    allocator_decision_ns: int = us(10)
    #: Executor-side local resource-status check before a warm
    #: execution on possibly-oversubscribed resources (one local RDMA
    #: message between executor process and allocator, Sec. III-D).
    warm_resource_check_ns: int = us(1)
    #: Cost of producing a rejection response ("short and I/O-intensive").
    rejection_ns: int = us(1)
    #: Installing a submitted code package into the executor process
    #: (write to tmpfs + dlopen + symbol resolution); Fig. 9 shows this
    #: step in the single-digit-millisecond range.
    code_install_base_ns: int = ms(1)
    #: Per-byte cost of installing larger packages.
    code_install_bytes_per_sec: float = 2e9


@dataclass(frozen=True)
class RFaaSConfig:
    """Deployment-wide policy knobs."""

    timings: RFaaSTimings = field(default_factory=RFaaSTimings)
    #: Workers stay hot (busy-polling) this long after the last
    #: invocation before rolling back to warm (blocking).  None = never
    #: roll back; 0 = always warm.
    hot_timeout_ns: Optional[int] = ms(500)
    #: Default lease lifetime granted by the resource manager.
    lease_timeout_ns: int = secs(60)
    #: Executor processes idle longer than this are reclaimed.
    executor_idle_timeout_ns: int = secs(30)
    #: Manager -> executor heartbeat period and tolerated misses.
    heartbeat_interval_ns: int = secs(1)
    heartbeat_misses: int = 3
    #: Per-worker input buffer size (header + payload must fit).
    worker_buffer_bytes: int = 8 * 1024 * 1024
    #: Receive WRs pre-posted per worker QP.
    recv_ring_depth: int = 16
    #: Outstanding invocations per worker connection.  1 = the paper's
    #: design (one request in the worker's input buffer at a time);
    #: >1 slices the input buffer into slots so transfers of queued
    #: requests overlap with the current execution (throughput
    #: extension, see the pipelining ablation benchmark).
    worker_pipeline_depth: int = 1
    #: Allow more workers than free cores (oversubscription, Sec. III-D).
    allow_oversubscription: bool = False
    #: Generic pre-booted sandboxes each executor keeps ready
    #: (Sec. V-B warm pool; 0 disables).  Allocations matching
    #: ``warm_pool_sandbox`` skip the container boot.
    warm_pool_size: int = 0
    warm_pool_sandbox: str = "docker"
    #: Operator-provisioned secret shared by managers and executors;
    #: leases are MAC-signed with it (Sec. III-E authentication).
    cluster_secret: bytes = b"rfaas-cluster-secret"
    #: Event-loop scheduler for environments the deployment creates
    #: itself: ``None``/"heap" = binary heap (best at small scale),
    #: "wheel" = hierarchical timer wheel (O(1) scheduling; the choice
    #: for 10^5+ concurrently pending timeouts -- lease renewals, poll
    #: intervals, in-flight invocations).  Simulated results are
    #: bit-identical either way; see ``repro.sim.wheel``.
    scheduler: Optional[str] = None
    #: Timer-wheel slot width as a power of two of nanoseconds, for
    #: environments the deployment creates with ``scheduler="wheel"``:
    #: ``None`` keeps the wheel's built-in default, ``"auto"`` adapts
    #: the granularity to observed occupancy at runtime, an int in
    #: [1, 40] pins it.  Ignored under the heap scheduler.  Simulated
    #: results are bit-identical for every setting.
    granularity_bits: Union[int, str, None] = None


@dataclass
class ColdStartBreakdown:
    """Per-step timings of one cold start (Fig. 9's stacked bars), ns."""

    connect_manager: int = 0
    lease_grant: int = 0
    connect_allocator: int = 0
    submit_code: int = 0
    spawn_workers: int = 0
    connect_workers: int = 0
    first_invocation: int = 0

    @property
    def total(self) -> int:
        return (
            self.connect_manager
            + self.lease_grant
            + self.connect_allocator
            + self.submit_code
            + self.spawn_workers
            + self.connect_workers
            + self.first_invocation
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "connect_manager": self.connect_manager,
            "lease_grant": self.lease_grant,
            "connect_allocator": self.connect_allocator,
            "submit_code": self.submit_code,
            "spawn_workers": self.spawn_workers,
            "connect_workers": self.connect_workers,
            "first_invocation": self.first_invocation,
        }
