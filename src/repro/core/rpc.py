"""A small request/response layer over RDMA SEND/RECV.

The rFaaS *control plane* (lease requests, allocation + code
submission, heartbeats, lease-termination notices) is not latency
critical -- the whole point of the design is that it runs only at cold
start.  It still travels over the simulated fabric as real SEND/RECV
traffic so its costs show up in Fig. 9's cold-start breakdown.

One RPC connection = one QP pair + a ring of pre-posted receive
buffers on each side.  Requests and responses are pickled control
objects; sends are unsignaled (errors surface as QP state changes).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.protocol import decode_control, encode_control
from repro.rdma.cm import install_cm
from repro.rdma.constants import Access, Opcode
from repro.rdma.device import NIC
from repro.rdma.errors import RdmaError
from repro.rdma.verbs import RecvWR, SendWR, sge

RPC_BUFFER_BYTES = 64 * 1024
RPC_RING_DEPTH = 8


class RpcConnection:
    """One side of an established RPC connection."""

    def __init__(self, nic: NIC, qp, *, ring_depth: int = RPC_RING_DEPTH) -> None:
        self.nic = nic
        self.env = nic.env
        self.qp = qp
        pd = qp.pd
        # A ring of send buffers: the NIC DMA-reads the payload only
        # after its processing delay, so reusing one buffer for two
        # back-to-back messages would corrupt the first (classic verbs
        # bug -- the buffer must stay stable until send completion).
        self._send_mrs = [
            pd.register(nic.alloc(RPC_BUFFER_BYTES), Access.LOCAL_WRITE)
            for _ in range(ring_depth)
        ]
        self._send_index = 0
        self._recv_mrs = []
        for _ in range(ring_depth):
            block = nic.alloc(RPC_BUFFER_BYTES)
            mr = pd.register(block, Access.LOCAL_WRITE)
            self._recv_mrs.append(mr)
            qp.post_recv(RecvWR(local=sge(mr)))
        self._recv_index = {mr.lkey: mr for mr in self._recv_mrs}
        self._wr_to_mr: dict[int, Any] = {}
        self._repost_order: list = list(self._recv_mrs)

    @property
    def alive(self) -> bool:
        return self.qp.connected

    def _post_message(self, message: Any) -> None:
        data = encode_control(message)
        if len(data) > RPC_BUFFER_BYTES:
            raise RdmaError(f"control message of {len(data)} B exceeds RPC buffer")
        send_mr = self._send_mrs[self._send_index]
        self._send_index = (self._send_index + 1) % len(self._send_mrs)
        send_mr.write(0, data)
        self.qp.post_send(
            SendWR(opcode=Opcode.SEND, local=sge(send_mr, 0, len(data)), signaled=False)
        )

    def _receive(self, blocking: bool = True):
        """Generator: next decoded message (None on flush/teardown)."""
        cq = self.qp.recv_cq
        if blocking:
            wcs = yield from cq.blocking_wait(max_entries=1)
        else:
            wcs = yield from cq.busy_poll(max_entries=1)
        wc = wcs[0]
        if not wc.ok:
            return None
        mr = self._repost_order.pop(0)
        message = decode_control(mr.read(0, wc.byte_len))
        self.qp.post_recv(RecvWR(local=sge(mr)))
        self._repost_order.append(mr)
        return message

    def call(self, request: Any, blocking: bool = True):
        """Generator: send *request*, return the peer's response."""
        self._post_message(request)
        response = yield from self._receive(blocking=blocking)
        return response

    def notify(self, message: Any) -> None:
        """One-way message, no response expected."""
        self._post_message(message)


#: A server handler: (request, connection) -> generator returning response.
RpcHandler = Callable[[Any, RpcConnection], Any]


def rpc_listen(nic: NIC, port: int, handler: RpcHandler, *, name: Optional[str] = None):
    """Start an RPC server on *nic:port*; returns the listener.

    For every accepted connection a serving process runs *handler* on
    each incoming request (the handler is a generator so it may perform
    further simulated work) and sends back its return value.  A handler
    returning ``None`` sends no response (one-way messages).
    """
    cm = install_cm(nic)
    listener = cm.listen(port)
    env = nic.env

    def acceptor():
        while not listener.closed:
            request = yield listener.get_request()
            pd = nic.create_pd()
            cq = nic.create_cq(name=f"{nic.name}.rpc{port}")
            qp = nic.create_qp(pd, cq)
            listener.accept(request, qp, private_data={"rpc": True})
            connection = RpcConnection(nic, qp)
            env.process(server_loop(connection), name=f"rpc-serve-{nic.name}:{port}")

    def server_loop(connection: RpcConnection):
        while connection.alive:
            message = yield from connection._receive(blocking=True)
            if message is None:
                return
            result = handler(message, connection)
            if hasattr(result, "send"):  # generator handler
                result = yield from result
            if result is not None:
                # Echo the request id so demuxing clients can match
                # responses to calls among async notifications.
                if isinstance(message, dict) and isinstance(result, dict) and "_rpc_id" in message:
                    result = {**result, "_rpc_id": message["_rpc_id"]}
                connection._post_message(result)

    env.process(acceptor(), name=name or f"rpc-accept-{nic.name}:{port}")
    return listener


def rpc_connect(nic: NIC, host: str, port: int):
    """Generator: connect to an RPC server, returns an RpcConnection."""
    cm = install_cm(nic)
    pd = nic.create_pd()
    cq = nic.create_cq(name=f"{nic.name}.rpc-client")
    qp = nic.create_qp(pd, cq)
    yield from cm.connect(host, port, qp, private_data={"rpc": True})
    return RpcConnection(nic, qp)
