"""rFaaS core: the paper's primary contribution.

The pieces map one-to-one onto Fig. 4 of the paper:

* :mod:`repro.core.resource_manager` -- grants **leases** on spot
  executors, replicates round-robin, verifies executors via heartbeats,
  and hosts the **billing database** updated with RDMA fetch-and-add.
* :mod:`repro.core.executor` -- the **spot executor**: a lightweight
  allocator on an idle node that creates sandboxes, spawns user-code
  executor processes, polices idle timeouts, and accounts resources.
* :mod:`repro.core.worker` -- executor **worker threads**: each one is
  a function instance with its own QP, switching between *hot*
  (busy-polling) and *warm* (blocking-wait) invocation modes.
* :mod:`repro.core.invoker` -- the client library (`rfaas::invoker`):
  lease acquisition and caching, RDMA buffer management with the
  12-byte result header, future-based submission, rejection/redirect.
* :mod:`repro.core.deployment` -- wiring helper that builds a whole
  cluster (fabric + managers + spot executors + clients) in one call.
"""

from repro.core.config import ColdStartBreakdown, RFaaSConfig, RFaaSTimings
from repro.core.functions import CodePackage, FunctionSpec
from repro.core.leases import Lease, LeaseState
from repro.core.billing import BillingAccount, BillingDatabase, BillingRates
from repro.core.sandbox import BARE_METAL, DOCKER, SANDBOX_PROFILES, SandboxProfile
from repro.core.protocol import (
    HEADER_BYTES,
    pack_request_imm,
    pack_response_imm,
    unpack_request_imm,
    unpack_response_imm,
)
from repro.core.errors import (
    AllocationError,
    InvocationRejected,
    InvocationTimeout,
    LeaseExpired,
    RFaaSError,
)
from repro.core.executor import SpotExecutor
from repro.core.resource_manager import ResourceManager
from repro.core.invoker import InvocationResult, Invoker, RemoteFuture
from repro.core.deployment import Deployment
from repro.core.workflows import Stage, Workflow, WorkflowError, WorkflowRun, WorkflowRunner, chain

__all__ = [
    "AllocationError",
    "BARE_METAL",
    "BillingAccount",
    "BillingDatabase",
    "BillingRates",
    "CodePackage",
    "ColdStartBreakdown",
    "DOCKER",
    "Deployment",
    "FunctionSpec",
    "HEADER_BYTES",
    "InvocationRejected",
    "InvocationTimeout",
    "InvocationResult",
    "Invoker",
    "Lease",
    "LeaseState",
    "RFaaSConfig",
    "RFaaSError",
    "RFaaSTimings",
    "LeaseExpired",
    "RemoteFuture",
    "ResourceManager",
    "SANDBOX_PROFILES",
    "SandboxProfile",
    "SpotExecutor",
    "Stage",
    "Workflow",
    "WorkflowError",
    "WorkflowRun",
    "WorkflowRunner",
    "chain",
    "pack_request_imm",
    "pack_response_imm",
    "unpack_request_imm",
    "unpack_response_imm",
]
