"""Allocation leases (Sec. III-B).

A lease is the paper's replacement for per-invocation central
scheduling: the resource manager grants a time-limited right to a slice
of one spot executor (cores, memory), and from then on the client talks
to the executor directly.  The lease carries everything the client
needs -- the executor's address and the billing slot for RDMA
fetch-and-add accounting.

Authentication (Sec. III-E): "Leases are time-limited and include user
authentication."  The manager signs each lease with a keyed MAC over
(lease id, client, resources); executors share the cluster secret and
refuse allocations whose token does not verify, so a client cannot
forge or inflate a lease.
"""

from __future__ import annotations

import enum
import hashlib
import hmac
from dataclasses import dataclass
from itertools import count
from typing import Optional

#: Fallback id source for ad-hoc :class:`Lease` constructions (tests,
#: interactive use) only.  Platform paths never draw from it: the
#: resource manager allocates ids from its own per-instance counter
#: (``ResourceManager._lease_ids``), because a process-global stream
#: leaks across runs -- back-to-back simulations would see different
#: ids, a determinism/fingerprint hazard (the same class of bug
#: ``Environment.reserve_eids`` solved for event ids).
_fallback_lease_ids = count(1)


def sign_lease(
    secret: bytes, lease_id: int, client: str, cores: int, memory_bytes: int
) -> str:
    """The lease authentication token (keyed MAC, hex)."""
    message = f"{lease_id}|{client}|{cores}|{memory_bytes}".encode()
    return hmac.new(secret, message, hashlib.sha256).hexdigest()


def verify_lease_token(
    secret: bytes, token: str, lease_id: int, client: str, cores: int, memory_bytes: int
) -> bool:
    expected = sign_lease(secret, lease_id, client, cores, memory_bytes)
    return hmac.compare_digest(expected, token or "")


class LeaseState(enum.Enum):
    ACTIVE = "active"
    RELEASED = "released"  # client deallocated before expiry
    EXPIRED = "expired"  # timeout reached
    TERMINATED = "terminated"  # manager reclaimed (executor died / drain)


@dataclass
class Lease:
    """A granted allocation on one spot executor."""

    client: str
    executor_host: str
    executor_port: int
    cores: int
    memory_bytes: int
    issued_ns: int
    timeout_ns: int
    #: Billing slot in the manager's database (addr of 3 u64 counters).
    billing_addr: int = 0
    billing_rkey: int = 0
    manager_host: str = ""
    #: Assigned by the granting manager (deterministic per manager);
    #: ``None`` falls back to a process-global stream for ad-hoc
    #: constructions outside any manager.
    lease_id: Optional[int] = None
    state: LeaseState = LeaseState.ACTIVE

    def __post_init__(self) -> None:
        if self.lease_id is None:
            self.lease_id = next(_fallback_lease_ids)

    @property
    def expiry_ns(self) -> int:
        return self.issued_ns + self.timeout_ns

    def is_active(self, now_ns: int) -> bool:
        return self.state is LeaseState.ACTIVE and now_ns < self.expiry_ns

    def remaining_ns(self, now_ns: int) -> int:
        return max(0, self.expiry_ns - now_ns)

    def renew(self, now_ns: int, timeout_ns: Optional[int] = None) -> None:
        """Restart the lease clock from *now_ns* (keeps the old timeout
        unless a new one is given).  Only active leases renew."""
        if self.state is not LeaseState.ACTIVE:
            raise ValueError(f"cannot renew a lease in state {self.state}")
        self.issued_ns = now_ns
        if timeout_ns is not None:
            self.timeout_ns = timeout_ns

    def release(self) -> None:
        if self.state is LeaseState.ACTIVE:
            self.state = LeaseState.RELEASED

    def expire(self) -> None:
        if self.state is LeaseState.ACTIVE:
            self.state = LeaseState.EXPIRED

    def terminate(self) -> None:
        if self.state is LeaseState.ACTIVE:
            self.state = LeaseState.TERMINATED


@dataclass
class LeaseRequest:
    """What a client asks the resource manager for (Sec. III-C, cold)."""

    client: str
    cores: int
    memory_bytes: int
    timeout_ns: Optional[int] = None


@dataclass
class LeaseGrant:
    """Manager -> client response."""

    lease: Optional[Lease]
    error: Optional[str] = None
