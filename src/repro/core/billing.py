"""Billing (Sec. IV-C): ``C = Ca*ta + Cc*tc + Ch*th``.

The billing database is a memory region on the resource manager's node;
each account is three u64 counters that lightweight allocators bump with
RDMA **atomic fetch-and-add** -- accounting without involving the
manager's CPU, exactly as the paper describes.

Counter layout per account (8 bytes each):

====  ==========================  =====================================
slot  meaning                     unit stored
====  ==========================  =====================================
0     allocation ``ta * memory``  byte-seconds (scaled by the executor)
1     active computation ``tc``   nanoseconds
2     hot polling ``th``          nanoseconds
====  ==========================  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.rdma.constants import Access
from repro.sim.clock import GiB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rdma.device import NIC
    from repro.rdma.memory import MemoryRegion

SLOT_ALLOCATION = 0
SLOT_COMPUTE = 1
SLOT_HOTPOLL = 2
SLOTS_PER_ACCOUNT = 3
ACCOUNT_BYTES = 8 * SLOTS_PER_ACCOUNT


@dataclass(frozen=True)
class BillingRates:
    """Prices per unit.  Hot polling is priced like computation but at
    a premium-adjustable rate; allocation is cheap (memory parking)."""

    #: USD per GiB-second of allocated (reserved) memory.
    allocation_per_gib_s: float = 1e-5
    #: USD per second of active computation.
    compute_per_s: float = 1e-3
    #: USD per second of hot polling (the premium for sub-us latency).
    hotpoll_per_s: float = 1e-3


@dataclass
class BillingAccount:
    """A read-out of one account's counters."""

    tenant: str
    allocation_byte_seconds: int
    compute_ns: int
    hotpoll_ns: int

    @property
    def allocation_gib_s(self) -> float:
        return self.allocation_byte_seconds / GiB

    @property
    def compute_s(self) -> float:
        return self.compute_ns / 1e9

    @property
    def hotpoll_s(self) -> float:
        return self.hotpoll_ns / 1e9

    def cost(self, rates: BillingRates) -> float:
        """The paper's ``C = Ca*ta + Cc*tc + Ch*th``."""
        return (
            rates.allocation_per_gib_s * self.allocation_gib_s
            + rates.compute_per_s * self.compute_s
            + rates.hotpoll_per_s * self.hotpoll_s
        )


class BillingDatabase:
    """The manager-side global database of accounts."""

    def __init__(self, nic: "NIC", capacity_accounts: int = 1024) -> None:
        self.nic = nic
        pd = nic.create_pd()
        self._block = nic.alloc(capacity_accounts * ACCOUNT_BYTES)
        self.mr: "MemoryRegion" = pd.register(
            self._block, Access.LOCAL_WRITE | Access.REMOTE_ATOMIC | Access.REMOTE_READ
        )
        self.capacity = capacity_accounts
        self._accounts: dict[str, int] = {}  # tenant -> account index

    def open_account(self, tenant: str) -> tuple[int, int]:
        """Returns (addr, rkey) of the tenant's counters (idempotent)."""
        index = self._accounts.get(tenant)
        if index is None:
            if len(self._accounts) >= self.capacity:
                raise RuntimeError("billing database full")
            index = len(self._accounts)
            self._accounts[tenant] = index
        return self.mr.addr + index * ACCOUNT_BYTES, self.mr.rkey

    def slot_addr(self, tenant: str, slot: int) -> int:
        base, _ = self.open_account(tenant)
        return base + 8 * slot

    def read_account(self, tenant: str) -> BillingAccount:
        """Manager-local read of a tenant's counters."""
        base, _ = self.open_account(tenant)
        return BillingAccount(
            tenant=tenant,
            allocation_byte_seconds=self._block.read_u64(base + 8 * SLOT_ALLOCATION),
            compute_ns=self._block.read_u64(base + 8 * SLOT_COMPUTE),
            hotpoll_ns=self._block.read_u64(base + 8 * SLOT_HOTPOLL),
        )

    def tenants(self) -> list[str]:
        return sorted(self._accounts)
