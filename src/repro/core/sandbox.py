"""Sandbox profiles: isolation contexts for user-code executors.

rFaaS ships two executor types (Sec. III-E): bare-metal processes and
Docker containers with SR-IOV virtual functions.  The profile captures
both the *cold-start* costs (Fig. 9: worker creation dominates, ~25 ms
bare-metal vs ~2.7 s Docker) and the *data-path* penalties of the
virtualized NIC (Fig. 8: +50 ns hot, +650 ns warm per invocation).

Profiles are data, so adding Singularity/gVisor/Firecracker variants
(Sec. III-F) is a one-liner; a Firecracker-like entry is included to
model the 125 ms fast-microVM path the paper cites from [30].
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import ms, us


@dataclass(frozen=True)
class SandboxProfile:
    """Cost profile of one isolation technology."""

    name: str
    #: Creating the execution context (process fork / container start).
    spawn_base_ns: int
    #: Per worker thread: start, pin to core, register memory, create QP.
    spawn_per_worker_ns: int
    #: Added to every hot invocation (SR-IOV VF data path).
    hot_penalty_ns: int
    #: Added to every warm invocation (interrupt through the VF).
    warm_penalty_ns: int
    #: Tearing the sandbox down at deallocation / idle reclaim.
    teardown_ns: int
    #: Claiming a pre-booted *generic* sandbox from the warm pool
    #: (Sec. V-B: "keep a pool of generic and ready containers and
    #: bypass the container startup latency"): re-initialize
    #: namespaces/cgroups and attach, instead of booting.
    pool_attach_ns: int = ms(3)
    #: Per worker thread when starting inside an existing sandbox.
    pool_per_worker_ns: int = ms(2)

    def spawn_ns(self, workers: int) -> int:
        return self.spawn_base_ns + workers * self.spawn_per_worker_ns

    def pool_spawn_ns(self, workers: int) -> int:
        return self.pool_attach_ns + workers * self.pool_per_worker_ns


#: Bare-metal executor process: Fig. 9a measures ~25 ms cold starts
#: with worker creation as the longest step.
BARE_METAL = SandboxProfile(
    name="bare-metal",
    spawn_base_ns=ms(7),
    spawn_per_worker_ns=ms(13),
    hot_penalty_ns=0,
    warm_penalty_ns=0,
    teardown_ns=ms(2),
)

#: Docker + SR-IOV plugin: Fig. 9b measures ~2.7 s to spawn workers;
#: Fig. 8 shows ~50 ns (hot) / ~650 ns (warm) data-path overheads.
DOCKER = SandboxProfile(
    name="docker",
    spawn_base_ns=ms(2_550),
    spawn_per_worker_ns=ms(150),
    hot_penalty_ns=50,
    warm_penalty_ns=650,
    teardown_ns=ms(300),
    # Pool path: reinitialization of a ready container lands near the
    # 125 ms figure the paper cites from Firecracker [30].
    pool_attach_ns=ms(100),
    pool_per_worker_ns=ms(8),
)

#: A Firecracker-like microVM: the paper cites 125 ms boot times [30]
#: as the low-latency containerization alternative.
MICROVM = SandboxProfile(
    name="microvm",
    spawn_base_ns=ms(110),
    spawn_per_worker_ns=ms(15),
    hot_penalty_ns=60,
    warm_penalty_ns=700,
    teardown_ns=ms(20),
)

#: A MITOSIS-style RDMA remote fork ("No Provisioned Concurrency"):
#: the parent's address space is mapped over one-sided RDMA reads, so
#: a new executor materializes in ~1 ms with a small per-worker cost
#: (queue-pair setup + page-table registration), collapsing the
#: warm-vs-cold tradeoff the heavier profiles above embody.
REMOTE_FORK = SandboxProfile(
    name="remote-fork",
    spawn_base_ns=us(900),
    spawn_per_worker_ns=us(100),
    hot_penalty_ns=0,
    warm_penalty_ns=100,
    teardown_ns=us(200),
    # Pool path: re-attaching to an already-forked generic executor is
    # cheaper still -- a lease grant plus QP re-registration.
    pool_attach_ns=us(500),
    pool_per_worker_ns=us(50),
)

SANDBOX_PROFILES: dict[str, SandboxProfile] = {
    profile.name: profile for profile in (BARE_METAL, DOCKER, MICROVM, REMOTE_FORK)
}
