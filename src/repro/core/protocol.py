"""The rFaaS wire protocol.

Invocation request (client -> worker, one RDMA WRITE_WITH_IMM):

* payload layout in the worker's input buffer::

      [ 12-byte header | function payload ]

  The header is the client's *result destination*: an 8-byte address
  and a 4-byte rkey of a buffer the worker may WRITE into.  This is the
  twelve-byte header of Sec. IV-A -- it is what makes the response a
  single zero-copy RDMA write, and what pushes a 128-byte payload past
  the inline threshold in the request direction only (the 630 ns bump
  in Fig. 8).

* the 32-bit immediate value carries ``(invocation_id << 16) | fn_index``.

Invocation response (worker -> client, one RDMA WRITE_WITH_IMM into the
buffer named by the header): the CQE's ``byte_len`` is the output size,
and the immediate carries ``(invocation_id << 16) | status``.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any

#: Result-destination header: u64 address + u32 rkey.
HEADER_BYTES = 12
_HEADER_STRUCT = struct.Struct("<QI")

#: Response status codes (low 16 bits of the response immediate).
STATUS_OK = 0
STATUS_REJECTED = 1
STATUS_FUNCTION_NOT_FOUND = 2
STATUS_FAILED = 3

_U16 = 0xFFFF


def pack_header(result_addr: int, result_rkey: int) -> bytes:
    """The 12-byte result header prepended to every invocation payload."""
    return _HEADER_STRUCT.pack(result_addr, result_rkey)


def unpack_header(data: bytes) -> tuple[int, int]:
    if len(data) < HEADER_BYTES:
        raise ValueError(f"header needs {HEADER_BYTES} bytes, got {len(data)}")
    return _HEADER_STRUCT.unpack_from(data)


def pack_request_imm(invocation_id: int, fn_index: int) -> int:
    if not 0 <= invocation_id <= _U16:
        raise ValueError(f"invocation_id {invocation_id} out of u16 range")
    if not 0 <= fn_index <= _U16:
        raise ValueError(f"fn_index {fn_index} out of u16 range")
    return (invocation_id << 16) | fn_index


def unpack_request_imm(imm: int) -> tuple[int, int]:
    return (imm >> 16) & _U16, imm & _U16


def pack_response_imm(invocation_id: int, status: int = STATUS_OK) -> int:
    if not 0 <= invocation_id <= _U16:
        raise ValueError(f"invocation_id {invocation_id} out of u16 range")
    if not 0 <= status <= _U16:
        raise ValueError(f"status {status} out of u16 range")
    return (invocation_id << 16) | status


def unpack_response_imm(imm: int) -> tuple[int, int]:
    return (imm >> 16) & _U16, imm & _U16


# -- control-plane message serialization --------------------------------------
#
# Control messages (lease requests, allocation submissions, heartbeats)
# travel as SEND payloads; they are ordinary Python dataclasses/dicts
# serialized with pickle.  Only sizes matter for timing.


def encode_control(message: Any) -> bytes:
    return pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)


def decode_control(data: bytes) -> Any:
    return pickle.loads(data)
