"""Content fingerprints: what makes two runs "the same run".

A cached result is reusable only when re-running would provably produce
the same bytes.  Two ingredients guarantee that for this codebase:

* **spec identity** -- the factory import path, its effective kwargs
  (seed already injected), canonically encoded so dict ordering and
  equivalent literals cannot produce different keys; and
* **code identity** -- a hash of the *transitive* ``repro.*`` module
  sources the factory's module imports (statically, including imports
  inside function bodies, which the fast paths use deliberately).
  Editing any source file on that closure changes the fingerprint and
  therefore invalidates exactly the entries that depend on it.

Code fingerprints are computed once per (module, roots) pair and
memoized for the life of the process: sources cannot change under a
running evaluation, and a fresh CLI invocation recomputes from disk.

The simulation itself is deterministic by construction (explicit seeds,
no wall clock, no global RNG -- see docs/architecture.md), which is
what makes (spec identity x code identity) a sufficient cache key.
``experiments cache verify`` re-runs sampled entries to prove it.
"""

from __future__ import annotations

import ast
import hashlib
import importlib.util
from typing import Any, Iterable, Optional

#: Bump when the key derivation itself changes: old entries become
#: unreachable (plain misses) instead of wrongly matching.
KEY_SCHEMA = "rfaas-repro-cache-key-v1"

#: Default package roots whose sources participate in the fingerprint.
DEFAULT_ROOTS = ("repro",)

#: Process-lifetime memo: (module, roots) -> hex digest.
_code_fingerprints: dict[tuple[str, tuple[str, ...]], str] = {}


class Uncacheable(TypeError):
    """Raised when a spec cannot be given a canonical identity."""


def clear_memo() -> None:
    """Drop memoized code fingerprints (tests only; see module docs)."""
    _code_fingerprints.clear()


def _module_source(module_name: str) -> Optional[tuple[str, bytes]]:
    """(origin path, source bytes) for *module_name*, or None.

    Namespace packages, builtins, and extension modules have no Python
    source to hash; they are stable per interpreter and excluded.
    """
    try:
        spec = importlib.util.find_spec(module_name)
    except (ImportError, ValueError):
        return None
    if spec is None or spec.origin is None or not spec.origin.endswith(".py"):
        return None
    try:
        with open(spec.origin, "rb") as handle:
            return spec.origin, handle.read()
    except OSError:
        return None


def _imported_modules(module_name: str, source: bytes) -> set[str]:
    """Absolute module names statically imported anywhere in *source*."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return set()
    package = module_name.rpartition(".")[0]
    found: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                found.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: resolve against the package
                base_parts = module_name.split(".")[: -node.level] or [package]
                base = ".".join(part for part in base_parts if part)
                target = f"{base}.{node.module}" if node.module else base
            else:
                target = node.module or ""
            if target:
                found.add(target)
                # ``from pkg import name`` may name a submodule.
                for alias in node.names:
                    found.add(f"{target}.{alias.name}")
    return found


def _in_roots(module_name: str, roots: tuple[str, ...]) -> bool:
    return any(
        module_name == root or module_name.startswith(root + ".") for root in roots
    )


def source_closure(
    module_name: str, roots: Iterable[str] = DEFAULT_ROOTS
) -> dict[str, bytes]:
    """The transitive source set hashed by :func:`code_fingerprint`.

    Starts from *module_name* itself (hashed even when outside *roots*,
    so a test factory's own edits invalidate its entries too) and
    follows static imports into modules under *roots* -- and their
    ancestor packages -- until the closure is complete.
    """
    roots = tuple(roots)
    sources: dict[str, bytes] = {}
    queue = [module_name]
    seen: set[str] = set()
    while queue:
        current = queue.pop()
        if current in seen:
            continue
        seen.add(current)
        located = _module_source(current)
        if located is None:
            continue
        _, source = located
        sources[current] = source
        for imported in _imported_modules(current, source):
            if imported not in seen and _in_roots(imported, roots):
                queue.append(imported)
            # ``import repro.rdma.fabric`` also executes the ancestor
            # packages; their __init__ sources are part of the closure.
            parts = imported.split(".")
            for depth in range(1, len(parts)):
                ancestor = ".".join(parts[:depth])
                if ancestor not in seen and _in_roots(ancestor, roots):
                    queue.append(ancestor)
    return sources


def code_fingerprint(
    module_name: str, roots: Iterable[str] = DEFAULT_ROOTS
) -> str:
    """Hex digest of the transitive source closure of *module_name*.

    Deterministic: folds the :func:`source_closure` ``(name, source)``
    pairs in sorted module-name order.  Memoized for the life of the
    process (sources cannot change under a running evaluation).
    """
    roots = tuple(roots)
    memo_key = (module_name, roots)
    cached = _code_fingerprints.get(memo_key)
    if cached is not None:
        return cached

    sources = source_closure(module_name, roots)
    digest = hashlib.sha256()
    digest.update(KEY_SCHEMA.encode())
    for name in sorted(sources):
        digest.update(b"\x00")
        digest.update(name.encode())
        digest.update(b"\x01")
        digest.update(hashlib.sha256(sources[name]).digest())
    fingerprint = digest.hexdigest()
    _code_fingerprints[memo_key] = fingerprint
    return fingerprint


def canonical(value: Any) -> str:
    """Deterministic text encoding of a kwargs value.

    Collection types are tagged (a tuple is not a list), dict items are
    sorted by their encoded key, and floats round-trip through ``repr``
    (exact for IEEE doubles).  Values without a canonical form --
    arbitrary objects, open handles -- raise :class:`Uncacheable`,
    which callers treat as "run it, don't cache it".
    """
    if value is None or value is True or value is False:
        return repr(value)
    if isinstance(value, int) and not isinstance(value, bool):
        return f"i{value}"
    if isinstance(value, float):
        return f"f{value!r}"
    if isinstance(value, str):
        return f"s{value!r}"
    if isinstance(value, bytes):
        return f"b{value.hex()}"
    if isinstance(value, (list, tuple)):
        tag = "l" if isinstance(value, list) else "t"
        return f"{tag}[" + ",".join(canonical(item) for item in value) + "]"
    if isinstance(value, (set, frozenset)):
        return "S{" + ",".join(sorted(canonical(item) for item in value)) + "}"
    if isinstance(value, dict):
        items = sorted(
            (canonical(key), canonical(item)) for key, item in value.items()
        )
        return "d{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    raise Uncacheable(f"no canonical form for {type(value).__name__}: {value!r}")


def spec_key(spec: Any, roots: Iterable[str] = DEFAULT_ROOTS) -> str:
    """Content-addressed cache key for a :class:`repro.parallel.RunSpec`.

    Combines the factory path, its *effective* kwargs (explicit seed
    already injected under ``seed_arg``), and the code fingerprint of
    the factory's module closure.  ``index`` and ``label`` are
    presentation metadata and deliberately excluded.  Raises
    :class:`Uncacheable` for kwargs without a canonical form.
    """
    module_name, _, qualname = spec.factory.partition(":")
    if not module_name or not qualname:
        raise Uncacheable(f"factory must be 'module:qualname', got {spec.factory!r}")
    effective = dict(spec.kwargs)
    if spec.seed_arg is not None and spec.seed is not None:
        effective[spec.seed_arg] = spec.seed
    material = "\x1f".join(
        (
            KEY_SCHEMA,
            spec.factory,
            canonical(effective),
            code_fingerprint(module_name, roots),
        )
    )
    return hashlib.sha256(material.encode()).hexdigest()
