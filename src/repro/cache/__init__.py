"""Content-addressed result cache: re-evaluation in O(changed points).

Every figure, sweep point, and ablation in this repo is a deterministic
function of (factory import path, kwargs, explicit seed) and of the
``repro.*`` sources that run imports -- so its result can be cached by
content and reused until either the inputs or the code change, the same
way rFaaS leases keep executors warm instead of paying cold starts
twice.  See docs/architecture.md, "Result cache & incremental
evaluation".

* :mod:`repro.cache.fingerprint` -- canonical spec keys + transitive
  source-closure code fingerprints (memoized per process);
* :mod:`repro.cache.store` -- atomic, versioned, corruption-tolerant
  on-disk artifacts with a JSON index and an LRU size cap;
* :mod:`repro.cache.verify` -- re-run sampled entries and diff against
  the store to prove bit-identical determinism.

The engine integration lives in :func:`repro.parallel.run_specs`
(``cache=`` parameter) and :class:`repro.analysis.sweep.Sweep`
(``cache`` field); the CLI surface is ``python -m repro.experiments
... --cache`` and the ``cache stats|clear|verify`` subcommands.
"""

from repro.cache.fingerprint import (
    KEY_SCHEMA,
    Uncacheable,
    canonical,
    clear_memo,
    code_fingerprint,
    source_closure,
    spec_key,
)
from repro.cache.store import (
    CACHE_DIR_ENV,
    DEFAULT_MAX_BYTES,
    STORE_SCHEMA,
    ResultCache,
    default_cache_dir,
)
from repro.cache.verify import VerifyReport, semantic_projection, verify_cache

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_MAX_BYTES",
    "KEY_SCHEMA",
    "STORE_SCHEMA",
    "ResultCache",
    "Uncacheable",
    "VerifyReport",
    "canonical",
    "clear_memo",
    "code_fingerprint",
    "default_cache_dir",
    "semantic_projection",
    "source_closure",
    "spec_key",
    "verify_cache",
]
