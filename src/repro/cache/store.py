"""On-disk result store: atomic, versioned, corruption-tolerant, LRU.

Layout under the cache root (default ``.repro-cache/``)::

    index.json              # metadata + counters, rewritten atomically
    objects/ab/abcd....pkl  # one artifact per key, written atomically

Artifacts are pickles of a versioned envelope ``{"schema", "key",
"result", "perf"}`` -- pickle because experiment results are arbitrary
dataclass trees (with numpy payloads) that must round-trip *exactly*
for warm runs to be bit-identical to cold runs.  The JSON index holds
everything a human or the ``cache`` CLI needs without unpickling:
the originating spec, sizes, and LRU bookkeeping.

Failure semantics: the cache must never turn a working evaluation into
a broken one.  Every load path degrades to a **miss** -- a truncated or
tampered artifact, an unreadable index, an artifact whose classes no
longer import -- and ``put`` failures (unpicklable results, full disk)
degrade to "not cached".  Only genuine API misuse raises.

Single-writer by design: only the parent (dispatching) process touches
the store; workers never see it.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Iterable, Optional

from repro import perf
from repro.cache.fingerprint import DEFAULT_ROOTS, Uncacheable, spec_key

#: Artifact + index schema; bump on incompatible layout changes.
STORE_SCHEMA = "rfaas-repro-cache-v1"

#: Default size cap: evaluation artifacts are small (KBs of numbers),
#: so 1 GiB is effectively "never evict" unless something leaks.
DEFAULT_MAX_BYTES = 1 << 30

#: Environment override for the cache root (CLI flag wins over it).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    return Path(os.environ.get(CACHE_DIR_ENV, ".repro-cache"))


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write-then-rename so readers never observe a partial file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        mode="wb", dir=path.parent, prefix=path.name + ".", suffix=".tmp", delete=False
    )
    try:
        with handle:
            handle.write(data)
        os.replace(handle.name, path)
    except OSError:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


class ResultCache:
    """Content-addressed result cache for :class:`repro.parallel.RunSpec` runs.

    ``lookup``/``store`` are keyed by :func:`repro.cache.fingerprint.spec_key`;
    ``key_for`` maps a spec to its key (``None`` when uncacheable).
    Metadata mutations accumulate in memory; ``flush()`` persists the
    index (``store`` flushes eagerly so an interrupted sweep keeps every
    completed point -- that is what makes resume-after-interrupt work).
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
        roots: Iterable[str] = DEFAULT_ROOTS,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.max_bytes = int(max_bytes)
        self.code_roots = tuple(roots)
        self.hits = 0
        self.misses = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.evictions = 0
        self.put_failures = 0
        self._index = self._load_index()
        stats = self._index.get("stats", {})
        self._lifetime_base = {
            name: int(stats.get(name, 0)) for name in ("hits", "misses", "evictions")
        }

    # ------------------------------------------------------------------ index

    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    def _load_index(self) -> dict[str, Any]:
        empty = {"schema": STORE_SCHEMA, "clock": 0, "stats": {}, "entries": {}}
        try:
            loaded = json.loads(self.index_path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return empty
        if not isinstance(loaded, dict) or loaded.get("schema") != STORE_SCHEMA:
            return empty
        loaded.setdefault("clock", 0)
        loaded.setdefault("stats", {})
        entries = loaded.get("entries")
        loaded["entries"] = entries if isinstance(entries, dict) else {}
        return loaded

    def flush(self) -> None:
        """Persist the index; lifetime hit/miss totals survive restarts."""
        self._index["stats"] = {
            "hits": self._lifetime_base.get("hits", 0) + self.hits,
            "misses": self._lifetime_base.get("misses", 0) + self.misses,
            "evictions": self._lifetime_base.get("evictions", 0) + self.evictions,
        }
        try:
            _atomic_write_bytes(
                self.index_path,
                json.dumps(self._index, indent=2, sort_keys=True).encode() + b"\n",
            )
        except OSError:
            pass  # a cache that cannot persist is merely cold next time

    # --------------------------------------------------------------- keys/paths

    def key_for(self, spec: Any) -> Optional[str]:
        """The spec's content key, or ``None`` when it cannot be cached."""
        try:
            return spec_key(spec, self.code_roots)
        except Uncacheable:
            return None

    def _artifact_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.pkl"

    def _drop(self, key: str) -> None:
        self._index["entries"].pop(key, None)
        try:
            self._artifact_path(key).unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------- reads

    def lookup(self, key: str) -> tuple[bool, Any, Optional[dict]]:
        """(hit, result, perf snapshot) for *key*; any failure is a miss."""
        hit, envelope = self.lookup_envelope(key)
        if not hit:
            return False, None, None
        snapshot = envelope.get("perf")
        return True, envelope.get("result"), snapshot if isinstance(snapshot, dict) else None

    def lookup_envelope(self, key: str) -> tuple[bool, dict]:
        """(hit, full artifact envelope); any load failure is a miss."""
        meta = self._index["entries"].get(key)
        path = self._artifact_path(key)
        try:
            data = path.read_bytes()
            envelope = pickle.loads(data)
            if (
                not isinstance(envelope, dict)
                or envelope.get("schema") != STORE_SCHEMA
                or envelope.get("key") != key
            ):
                raise ValueError("bad envelope")
        except (OSError, ValueError, EOFError, pickle.UnpicklingError, AttributeError,
                ImportError, IndexError, MemoryError):
            # Missing, truncated, tampered, or no-longer-importable:
            # drop the remains and report a clean miss.
            if meta is not None or path.exists():
                self._drop(key)
            self._miss()
            return False, {}
        self.hits += 1
        self.bytes_read += len(data)
        if perf.enabled:
            perf.counters.cache_hits += 1
            perf.counters.cache_bytes_read += len(data)
        self._index["clock"] += 1
        if meta is None:  # artifact survived an index loss: re-adopt it
            meta = self._index["entries"].setdefault(key, {"bytes": len(data)})
        meta["last_used"] = self._index["clock"]
        return True, envelope

    def _miss(self) -> None:
        self.misses += 1
        if perf.enabled:
            perf.counters.cache_misses += 1

    # ------------------------------------------------------------------ writes

    def store(
        self,
        key: str,
        result: Any,
        *,
        spec: Any = None,
        perf_snapshot: Optional[dict] = None,
    ) -> bool:
        """Persist *result* under *key*; returns False when not cacheable.

        The envelope carries the run's perf-counter delta so later hits
        can merge the counters the run *would* have contributed.
        """
        envelope = {
            "schema": STORE_SCHEMA,
            "key": key,
            "result": result,
            "perf": perf_snapshot,
            # The exact picklable spec, so ``cache verify`` re-runs with
            # identical kwargs (the JSON index keeps a lossy projection
            # for humans only).
            "spec": spec,
        }
        try:
            data = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
            _atomic_write_bytes(self._artifact_path(key), data)
        except (OSError, pickle.PicklingError, TypeError, AttributeError, RecursionError):
            self.put_failures += 1
            return False
        self.bytes_written += len(data)
        if perf.enabled:
            perf.counters.cache_bytes_written += len(data)
        self._index["clock"] += 1
        meta: dict[str, Any] = {
            "bytes": len(data),
            "last_used": self._index["clock"],
        }
        if spec is not None:
            meta["spec"] = {
                "factory": spec.factory,
                "kwargs": _jsonable_kwargs(spec.kwargs),
                "seed": spec.seed,
                "seed_arg": spec.seed_arg,
                "label": spec.label,
            }
        self._index["entries"][key] = meta
        self._evict_over_cap()
        self.flush()
        return True

    def _evict_over_cap(self) -> None:
        entries = self._index["entries"]
        total = sum(int(meta.get("bytes", 0)) for meta in entries.values())
        if total <= self.max_bytes:
            return
        for key in sorted(entries, key=lambda k: entries[k].get("last_used", 0)):
            if total <= self.max_bytes:
                break
            total -= int(entries[key].get("bytes", 0))
            self._drop(key)
            self.evictions += 1

    # -------------------------------------------------------------- management

    def entries(self) -> dict[str, dict[str, Any]]:
        return dict(self._index["entries"])

    def total_bytes(self) -> int:
        return sum(int(meta.get("bytes", 0)) for meta in self._index["entries"].values())

    def clear(self) -> int:
        """Delete every artifact and reset the index; returns entries removed."""
        removed = len(self._index["entries"])
        for key in list(self._index["entries"]):
            self._drop(key)
        objects = self.root / "objects"
        if objects.is_dir():
            for bucket in objects.iterdir():
                try:
                    for stray in bucket.iterdir():
                        stray.unlink()
                    bucket.rmdir()
                except OSError:
                    pass
        self._index = {"schema": STORE_SCHEMA, "clock": 0, "stats": {}, "entries": {}}
        self._lifetime_base = {"hits": 0, "misses": 0, "evictions": 0}
        self.hits = self.misses = self.evictions = 0
        self.bytes_read = self.bytes_written = self.put_failures = 0
        self.flush()
        return removed

    def stats(self) -> dict[str, Any]:
        """Session counters + persisted lifetime totals, JSON-ready."""
        lifetime = self._index.get("stats", {})
        return {
            "root": str(self.root),
            "entries": len(self._index["entries"]),
            "total_bytes": self.total_bytes(),
            "max_bytes": self.max_bytes,
            "session": {
                "hits": self.hits,
                "misses": self.misses,
                "bytes_read": self.bytes_read,
                "bytes_written": self.bytes_written,
                "evictions": self.evictions,
                "put_failures": self.put_failures,
            },
            "lifetime": {
                "hits": self._lifetime_base["hits"] + self.hits,
                "misses": self._lifetime_base["misses"] + self.misses,
                "evictions": self._lifetime_base["evictions"] + self.evictions,
            },
        }

    def __repr__(self) -> str:
        return (
            f"<ResultCache {self.root} entries={len(self._index['entries'])} "
            f"hits={self.hits} misses={self.misses}>"
        )


def _jsonable_kwargs(kwargs: dict[str, Any]) -> dict[str, Any]:
    """Best-effort JSON projection of spec kwargs for the index."""
    from repro.experiments.io import to_jsonable

    try:
        return {str(k): to_jsonable(v) for k, v in kwargs.items()}
    except Exception:  # pragma: no cover - to_jsonable is already total
        return {str(k): repr(v) for k, v in kwargs.items()}
