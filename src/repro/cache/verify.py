"""``experiments cache verify``: prove cached results are still true.

The cache's correctness argument is "deterministic simulation x content
keys".  ``verify`` closes the loop empirically: it re-runs a sample of
cached entries from their recorded specs and diffs the fresh result
against the stored artifact through the same JSON projection the
experiment archive uses.  Any mismatch means either nondeterminism or a
fingerprint gap -- both are bugs worth failing loudly over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.experiments.io import to_jsonable
from repro.parallel.runspec import RunSpec


@dataclass
class VerifyReport:
    """Outcome of a verification pass over sampled cache entries."""

    checked: int = 0
    matched: int = 0
    mismatched: list[str] = field(default_factory=list)
    errored: list[str] = field(default_factory=list)
    skipped: int = 0  # entries without a recorded spec (or lost artifacts)

    @property
    def ok(self) -> bool:
        return not self.mismatched and not self.errored

    def summary(self) -> str:
        verdict = "OK" if self.ok else "FAILED"
        return (
            f"verify {verdict}: {self.matched}/{self.checked} bit-identical, "
            f"{len(self.mismatched)} mismatched, {len(self.errored)} errored, "
            f"{self.skipped} skipped"
        )


def semantic_projection(value: Any) -> Any:
    """JSON projection with wall-clock measurement fields removed.

    Simulated results are deterministic; the wall seconds a run *took*
    (``wall_s`` on :class:`repro.experiments.registry.TimedRun`) are
    not, and are measurement metadata rather than output.  Comparing
    through this projection checks exactly the part the determinism
    contract promises to reproduce.
    """
    return _strip_timing(to_jsonable(value))


def _strip_timing(jsonable: Any) -> Any:
    if isinstance(jsonable, dict):
        return {
            key: _strip_timing(item)
            for key, item in jsonable.items()
            if key != "wall_s"
        }
    if isinstance(jsonable, list):
        return [_strip_timing(item) for item in jsonable]
    return jsonable


def _sample_keys(keys: list[str], sample: int) -> list[str]:
    """Deterministic, spread-out sample: every k-th key in sorted order."""
    keys = sorted(keys)
    if sample <= 0 or sample >= len(keys):
        return keys
    step = len(keys) / sample
    return [keys[int(i * step)] for i in range(sample)]


def verify_cache(cache: Any, sample: int = 5) -> VerifyReport:
    """Re-run up to *sample* cached entries and diff against the store."""
    report = VerifyReport()
    entries = cache.entries()
    with_spec = [key for key, meta in entries.items() if isinstance(meta.get("spec"), dict)]
    report.skipped = len(entries) - len(with_spec)
    for key in _sample_keys(with_spec, sample):
        hit, envelope = cache.lookup_envelope(key)
        if not hit:  # artifact rotted since listing: lookup already dropped it
            report.skipped += 1
            continue
        stored = envelope.get("result")
        spec = envelope.get("spec")
        if not isinstance(spec, RunSpec):
            # Fall back to the index's JSON projection of the spec.
            recorded = entries[key]["spec"]
            spec = RunSpec(
                factory=recorded["factory"],
                kwargs=dict(recorded.get("kwargs") or {}),
                seed=recorded.get("seed"),
                seed_arg=recorded.get("seed_arg"),
                label=recorded.get("label") or key[:12],
            )
        report.checked += 1
        try:
            fresh = spec.call()
        except Exception as exc:
            report.errored.append(f"{spec.name}: {type(exc).__name__}: {exc}")
            continue
        if semantic_projection(fresh) == semantic_projection(stored):
            report.matched += 1
        else:
            report.mismatched.append(spec.name)
    return report
