"""HPC substrate: mini-MPI, an OpenMP fork-join model, and the hybrid
MPI+rFaaS application drivers behind Figs. 12 and 13.

The mini-MPI runtime runs ranks as simulated processes communicating
over the same fabric as rFaaS -- which is the whole point of Fig. 13's
setup: MPI traffic and serverless offload traffic *share* the network,
and the reproduction shows (as the paper does) that acceleration
survives that sharing.
"""

from repro.hpc.mpi import ANY_SOURCE, ANY_TAG, MpiJob, RankContext
from repro.hpc.openmp import OpenMPModel, openmp_parallel_for_ns
from repro.hpc.apps import (
    BlackScholesScenario,
    GemmScenario,
    JacobiScenario,
    run_blackscholes,
    run_gemm,
    run_jacobi,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BlackScholesScenario",
    "GemmScenario",
    "JacobiScenario",
    "MpiJob",
    "OpenMPModel",
    "RankContext",
    "openmp_parallel_for_ns",
    "run_blackscholes",
    "run_gemm",
    "run_jacobi",
]
