"""A miniature MPI on the DES kernel.

Point-to-point messages move real payloads over the shared fabric with
eager/rendezvous semantics; collectives (barrier, bcast, reduce,
gather, allreduce) are built from point-to-point with the usual
logarithmic algorithms.  Ranks are simulated processes pinned to nodes
-- several ranks per node share that node's NIC, exactly like the
paper's two 36-core MPI nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.cluster.node import Node
from repro.rdma.fabric import Fabric
from repro.sim.clock import us
from repro.sim.resources import FilterStore

ANY_SOURCE = -1
ANY_TAG = -1

#: Library overhead per message (matching, descriptor handling).
MPI_OVERHEAD_NS = 500
#: Messages above this use rendezvous (extra handshake round-trip).
EAGER_THRESHOLD = 64 * 1024
#: Same-node (shared-memory) copy bandwidth.
SHM_BYTES_PER_SEC = 10e9
SHM_LATENCY_NS = 300


@dataclass
class _Message:
    source: int
    tag: int
    nbytes: int
    payload: Any


class RankContext:
    """What a rank's main function sees: its rank id and communication."""

    def __init__(self, job: "MpiJob", rank: int, node: Node) -> None:
        self.job = job
        self.rank = rank
        self.node = node
        self.env = job.env
        self._inbox: FilterStore = FilterStore(job.env)

    @property
    def size(self) -> int:
        return self.job.size

    # -- point to point ----------------------------------------------------

    def send(self, dest: int, payload: Any = None, nbytes: int = 64, tag: int = 0):
        """Generator: send to *dest*; returns when the send completes.

        ``nbytes`` sets the wire size; ``payload`` (any object, often
        real ``bytes``) is delivered intact for correctness checks.
        """
        if not 0 <= dest < self.job.size:
            raise ValueError(f"bad destination rank {dest}")
        env = self.env
        peer = self.job.ranks[dest]
        yield env.timeout(MPI_OVERHEAD_NS)
        if peer.node is self.node:
            yield env.timeout(SHM_LATENCY_NS + round(nbytes * 1e9 / SHM_BYTES_PER_SEC))
        else:
            fabric = self.job.fabric
            if nbytes > EAGER_THRESHOLD:
                # Rendezvous: RTS/CTS handshake before the bulk transfer.
                yield from fabric.transfer(self.node.name, peer.node.name, 64)
                yield from fabric.transfer(peer.node.name, self.node.name, 64)
            yield from fabric.transfer(self.node.name, peer.node.name, nbytes)
        yield peer._inbox.put(_Message(self.rank, tag, nbytes, payload))

    def isend(self, dest: int, payload: Any = None, nbytes: int = 64, tag: int = 0):
        """Non-blocking send: returns the in-flight process (yieldable)."""
        return self.env.process(
            self.send(dest, payload, nbytes, tag), name=f"isend-{self.rank}->{dest}"
        )

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Generator: returns the matching :class:`_Message`."""

        def matches(message: _Message) -> bool:
            return (source == ANY_SOURCE or message.source == source) and (
                tag == ANY_TAG or message.tag == tag
            )

        message = yield self._inbox.get(matches)
        return message

    # -- compute helper ------------------------------------------------------

    def compute(self, duration_ns: int):
        """Generator: charge *duration_ns* of local compute time."""
        if duration_ns > 0:
            yield self.env.timeout(int(duration_ns))

    # -- collectives ------------------------------------------------------------

    def barrier(self, tag: int = -101):
        """Dissemination barrier: ceil(log2(p)) rounds."""
        size = self.job.size
        if size == 1:
            return
            yield  # pragma: no cover
        distance = 1
        while distance < size:
            dest = (self.rank + distance) % size
            self.isend(dest, nbytes=16, tag=tag)
            yield from self.recv(source=(self.rank - distance) % size, tag=tag)
            distance *= 2

    def bcast(self, value: Any, root: int = 0, nbytes: int = 64, tag: int = -102):
        """Binomial-tree broadcast; returns the value on every rank."""
        size = self.job.size
        if size == 1:
            return value
        relative = (self.rank - root) % size
        # Receive phase: a non-root rank receives at its lowest set bit.
        mask = 1
        while mask < size:
            if relative & mask:
                source = (relative - mask + root) % size
                message = yield from self.recv(source=source, tag=tag)
                value = message.payload
                break
            mask *= 2
        # Send phase: forward to relative+m for m below the receive bit
        # (for the root, below the tree's top).
        mask //= 2
        while mask > 0:
            child = relative + mask
            if child < size:
                dest = (child + root) % size
                yield from self.send(dest, payload=value, nbytes=nbytes, tag=tag)
            mask //= 2
        return value

    def gather(self, value: Any, root: int = 0, nbytes: int = 64, tag: int = -103):
        """Returns the list of values at *root*, None elsewhere."""
        if self.rank == root:
            values: list[Any] = [None] * self.job.size
            values[root] = value
            for _ in range(self.job.size - 1):
                message = yield from self.recv(tag=tag)
                values[message.source] = message.payload
            return values
        yield from self.send(root, payload=value, nbytes=nbytes, tag=tag)
        return None

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any], nbytes: int = 64):
        """gather-to-0 + bcast (latency-equivalent for small values)."""
        accumulated = yield from self.reduce(value, op, root=0, nbytes=nbytes, tag=-104)
        result = yield from self.bcast(accumulated, root=0, nbytes=nbytes, tag=-105)
        return result

    def reduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any],
        root: int = 0,
        nbytes: int = 64,
        tag: int = -106,
    ):
        """Reduction to *root* in rank order; None elsewhere."""
        values = yield from self.gather(value, root=root, nbytes=nbytes, tag=tag)
        if self.rank != root:
            return None
        accumulated = values[0]
        for other in values[1:]:
            accumulated = op(accumulated, other)
        return accumulated

    def scatter(self, values: Any, root: int = 0, nbytes: int = 64, tag: int = -107):
        """Root distributes ``values[i]`` to rank i; returns own share."""
        if self.rank == root:
            if len(values) != self.job.size:
                raise ValueError(
                    f"scatter needs {self.job.size} values, got {len(values)}"
                )
            for dest in range(self.job.size):
                if dest != root:
                    yield from self.send(dest, payload=values[dest], nbytes=nbytes, tag=tag)
            return values[root]
        message = yield from self.recv(source=root, tag=tag)
        return message.payload

    def alltoall(self, values: Any, nbytes: int = 64, tag: int = -108):
        """Every rank sends ``values[j]`` to rank j; returns the list
        received (own slot kept in place)."""
        size = self.job.size
        if len(values) != size:
            raise ValueError(f"alltoall needs {size} values, got {len(values)}")
        received: list[Any] = [None] * size
        received[self.rank] = values[self.rank]
        for dest in range(size):
            if dest != self.rank:
                self.isend(dest, payload=values[dest], nbytes=nbytes, tag=tag)
        for _ in range(size - 1):
            message = yield from self.recv(tag=tag)
            received[message.source] = message.payload
        return received


class MpiJob:
    """Launches *size* ranks over a list of nodes (round-robin blocks)."""

    def __init__(self, fabric: Fabric, nodes: list[Node], size: int) -> None:
        if not nodes:
            raise ValueError("need at least one node")
        self.fabric = fabric
        self.env = fabric.env
        self.size = size
        per_node = -(-size // len(nodes))  # ceil: block distribution
        self.ranks = [
            RankContext(self, rank, nodes[min(rank // per_node, len(nodes) - 1)])
            for rank in range(size)
        ]

    def run(self, main: Callable[[RankContext], Any]):
        """Process generator: run ``main(ctx)`` on every rank, return
        the list of per-rank return values."""
        processes = [
            self.env.process(main(ctx), name=f"rank{ctx.rank}") for ctx in self.ranks
        ]
        results = []
        for process in processes:
            value = yield process
            results.append(value)
        return results
