"""An OpenMP fork-join model (the Fig. 12 local baseline).

A parallel-for over a perfectly divisible workload costs the slowest
thread's share plus fork/join overhead; the team holds real cores on
its node for the duration, so co-located work contends honestly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.node import Node
from repro.sim.clock import us

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment

#: Fork + join + barrier cost per parallel region.
FORK_JOIN_NS = us(5)


def openmp_parallel_for_ns(total_work_ns: int, threads: int, overhead_ns: int = FORK_JOIN_NS) -> int:
    """Analytic runtime of a balanced parallel-for (static schedule)."""
    if threads <= 0:
        raise ValueError("threads must be positive")
    per_thread = -(-int(total_work_ns) // threads)  # ceil
    return per_thread + (overhead_ns if threads > 1 else 0)


@dataclass
class OpenMPModel:
    """A thread team bound to one node."""

    env: "Environment"
    node: Node
    threads: int

    def __post_init__(self) -> None:
        if self.threads <= 0:
            raise ValueError("threads must be positive")
        if self.threads > self.node.spec.cores:
            raise ValueError(
                f"{self.threads} threads exceed the node's {self.node.spec.cores} cores"
            )

    def parallel_for(self, total_work_ns: int):
        """Process generator: run a balanced parallel region.

        Claims the team's cores for the duration (so an OpenMP half and
        other node activity contend for real cores).
        """
        claim = self.node.try_claim(self.threads, 0)
        duration = openmp_parallel_for_ns(total_work_ns, self.threads)
        yield self.env.timeout(duration)
        if claim is not None:
            claim.release()
        return duration
