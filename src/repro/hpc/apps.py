"""Application drivers for the paper's HPC use-cases (Figs. 12, 13).

Each scenario builds its own small cluster, runs the baseline and the
rFaaS-accelerated variant, and returns runtimes in virtual nanoseconds.
Payloads are *virtual* (size-only) at benchmark scale -- the cost
models and the shared fabric produce the timing -- while the same code
paths run with real bytes at small scale in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.deployment import Deployment
from repro.core.config import RFaaSConfig
from repro.hpc.mpi import MpiJob
from repro.hpc.openmp import openmp_parallel_for_ns
from repro.sim.clock import GiB
from repro.workloads import black_scholes as bs
from repro.workloads import gemm as gemm_mod
from repro.workloads import jacobi as jacobi_mod
from repro.workloads.black_scholes import bs_package
from repro.workloads.gemm import gemm_package
from repro.workloads.jacobi import jacobi_package
from repro.core import protocol


# ---------------------------------------------------------------------------
# Fig. 12: Black-Scholes offloading (OpenMP vs rFaaS vs OpenMP+rFaaS)
# ---------------------------------------------------------------------------


@dataclass
class BlackScholesScenario:
    """The PARSEC offload experiment: 229 MB in, 38 MB out."""

    n_options: int = bs.PAPER_NUM_OPTIONS
    config: Optional[RFaaSConfig] = None

    @property
    def total_compute_ns(self) -> int:
        return self.n_options * bs.COST_PER_OPTION_NS

    def openmp_ns(self, threads: int) -> int:
        """Local OpenMP baseline (analytic: balanced parallel-for)."""
        return openmp_parallel_for_ns(self.total_compute_ns, threads)

    def rfaas_ns(self, workers: int, fraction: float = 1.0) -> int:
        """Offload *fraction* of the options to *workers* functions."""
        options = int(self.n_options * fraction)
        if options == 0:
            return 0
        executors = -(-workers // 36)
        dep = Deployment.build(executors=executors, clients=1, config=self.config)
        dep.settle()
        invoker = dep.new_invoker()
        package = bs_package()

        def driver():
            chunk = -(-options // workers)
            buffer_bytes = chunk * bs.BYTES_PER_OPTION + 64
            remaining = workers
            while remaining > 0:
                batch = min(remaining, 36)
                yield from invoker.allocate(
                    package,
                    workers=batch,
                    memory_bytes=4 * GiB,
                    worker_buffer_bytes=buffer_bytes,
                    virtual_buffers=True,
                )
                remaining -= batch
            in_bufs = []
            out_bufs = []
            for _ in range(workers):
                in_bufs.append(invoker.alloc_input(chunk * bs.BYTES_PER_OPTION, virtual=True))
                out_bufs.append(invoker.alloc_output(chunk * bs.BYTES_PER_PRICE, virtual=True))
            start = dep.env.now
            futures = []
            dispatched = 0
            for index in range(workers):
                count = min(chunk, options - dispatched)
                if count <= 0:
                    break
                dispatched += count
                futures.append(
                    invoker.submit(
                        "black-scholes",
                        in_bufs[index],
                        count * bs.BYTES_PER_OPTION,
                        out_bufs[index],
                        worker=index,
                    )
                )
            for future in futures:
                yield future.wait()
            return dep.env.now - start

        return dep.run(driver())

    def hybrid_ns(self, threads: int) -> int:
        """OpenMP half + rFaaS half with equal parallelism (the paper's
        'OpenMP + rFaaS' series); runtime is the slower half."""
        local = openmp_parallel_for_ns(self.total_compute_ns // 2, threads)
        remote = self.rfaas_ns(threads, fraction=0.5)
        return max(local, remote)


def run_blackscholes(workers_list: list[int], n_options: int = bs.PAPER_NUM_OPTIONS):
    """The Fig. 12 sweep; returns {series: {workers: runtime_ns}}."""
    scenario = BlackScholesScenario(n_options=n_options)
    return {
        "openmp": {w: scenario.openmp_ns(w) for w in workers_list},
        "rfaas": {w: scenario.rfaas_ns(w) for w in workers_list},
        "openmp+rfaas": {w: scenario.hybrid_ns(w) for w in workers_list},
    }


# ---------------------------------------------------------------------------
# Fig. 13a: MPI matrix-matrix multiplication
# ---------------------------------------------------------------------------


@dataclass
class GemmScenario:
    """Per-rank n x n GEMM, half offloadable to one rFaaS function."""

    n: int = 4096
    repetitions: int = 5
    config: Optional[RFaaSConfig] = None

    def mpi_ns(self, ranks: int) -> int:
        """Baseline: every rank computes the full GEMM; median across
        ranks of the mean kernel time."""
        dep = Deployment.build(executors=0, managers=1, clients=2, config=self.config)
        job = MpiJob(dep.fabric, dep.client_nodes, ranks)

        def rank_main(ctx):
            times = []
            for _ in range(self.repetitions):
                start = ctx.env.now
                yield from ctx.compute(gemm_mod.gemm_cost_ns(self.n))
                times.append(ctx.env.now - start)
            return sum(times) / len(times)

        def driver():
            results = yield from job.run(rank_main)
            return results

        per_rank = dep.run(driver())
        return _median(per_rank)

    def mpi_rfaas_ns(self, ranks: int) -> int:
        """Each rank computes the top half locally while its function
        computes the bottom half (A, B shipped every repetition)."""
        executors = max(1, -(-ranks // 36))
        dep = Deployment.build(executors=executors, clients=2, config=self.config)
        dep.settle()
        job = MpiJob(dep.fabric, dep.client_nodes, ranks)
        payload_size = 16 * self.n * self.n + 16
        result_size = 8 * (self.n // 2) * self.n

        def rank_main(ctx):
            invoker = dep.new_invoker(
                client_index=dep.client_nodes.index(ctx.node),
                name=f"rank{ctx.rank}",
            )
            yield from invoker.allocate(
                gemm_package(),
                workers=1,
                memory_bytes=2 * GiB,
                worker_buffer_bytes=payload_size + 64,
                virtual_buffers=True,
            )
            in_buf = invoker.alloc_input(payload_size, virtual=True)
            out_buf = invoker.alloc_output(result_size, virtual=True)
            times = []
            for _ in range(self.repetitions):
                start = ctx.env.now
                future = invoker.submit("gemm", in_buf, payload_size, out_buf)
                yield from ctx.compute(gemm_mod.gemm_cost_ns(self.n, rows=self.n // 2))
                yield future.wait()
                times.append(ctx.env.now - start)
            return sum(times) / len(times)

        def driver():
            return (yield from job.run(rank_main))

        per_rank = dep.run(driver())
        return _median(per_rank)


def run_gemm(rank_counts: list[int], n: int = 4096, repetitions: int = 3):
    """The Fig. 13a sweep; returns {series: {ranks: runtime_ns}}."""
    scenario = GemmScenario(n=n, repetitions=repetitions)
    return {
        "mpi": {p: scenario.mpi_ns(p) for p in rank_counts},
        "mpi+rfaas": {p: scenario.mpi_rfaas_ns(p) for p in rank_counts},
    }


# ---------------------------------------------------------------------------
# Fig. 13b: MPI Jacobi solver with warm-sandbox caching
# ---------------------------------------------------------------------------


@dataclass
class JacobiScenario:
    """Iterative solve: matrix cached remotely, only x travels."""

    n: int = 2000
    iterations: int = 1000
    config: Optional[RFaaSConfig] = None

    def mpi_ns(self, ranks: int) -> int:
        dep = Deployment.build(executors=0, managers=1, clients=2, config=self.config)
        job = MpiJob(dep.fabric, dep.client_nodes, ranks)

        def rank_main(ctx):
            start = ctx.env.now
            for _ in range(self.iterations):
                yield from ctx.compute(jacobi_mod.jacobi_iteration_cost_ns(self.n))
            return ctx.env.now - start

        per_rank = dep.run(job.run(rank_main))
        return _median(per_rank)

    def mpi_rfaas_ns(self, ranks: int) -> int:
        executors = max(1, -(-ranks // 36))
        dep = Deployment.build(executors=executors, clients=2, config=self.config)
        dep.settle()
        job = MpiJob(dep.fabric, dep.client_nodes, ranks)
        setup_size = jacobi_mod.setup_bytes(self.n)
        iterate_size = jacobi_mod.iterate_bytes(self.n)
        half_result = 8 * (self.n // 2)

        def rank_main(ctx):
            invoker = dep.new_invoker(
                client_index=dep.client_nodes.index(ctx.node),
                name=f"rank{ctx.rank}",
            )
            yield from invoker.allocate(
                jacobi_package(),
                workers=1,
                memory_bytes=2 * GiB,
                worker_buffer_bytes=setup_size + 64,
                virtual_buffers=True,
            )
            in_setup = invoker.alloc_input(setup_size, virtual=True)
            in_iter = invoker.alloc_input(iterate_size, virtual=True)
            out_buf = invoker.alloc_output(half_result, virtual=True)
            start = ctx.env.now
            # First invocation ships the matrix; it is cached remotely.
            future = invoker.submit("jacobi", in_setup, setup_size, out_buf)
            yield from ctx.compute(jacobi_mod.jacobi_iteration_cost_ns(self.n, rows=self.n // 2))
            yield future.wait()
            for _ in range(self.iterations - 1):
                future = invoker.submit("jacobi", in_iter, iterate_size, out_buf)
                yield from ctx.compute(
                    jacobi_mod.jacobi_iteration_cost_ns(self.n, rows=self.n // 2)
                )
                yield future.wait()
            return ctx.env.now - start

        per_rank = dep.run(job.run(rank_main))
        return _median(per_rank)


def run_jacobi(rank_counts: list[int], n: int = 2000, iterations: int = 100):
    """The Fig. 13b sweep; returns {series: {ranks: runtime_ns}}."""
    scenario = JacobiScenario(n=n, iterations=iterations)
    return {
        "mpi": {p: scenario.mpi_ns(p) for p in rank_counts},
        "mpi+rfaas": {p: scenario.mpi_rfaas_ns(p) for p in rank_counts},
    }


def _median(values: list[float]) -> int:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return int(ordered[mid])
    return int((ordered[mid - 1] + ordered[mid]) / 2)
