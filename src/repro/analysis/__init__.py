"""Statistics and reporting shared by all benchmarks.

The paper reports medians with *nonparametric* confidence intervals
(99 % for latency microbenchmarks, 95 % for application runs); these are
implemented here from binomial order statistics, with no distributional
assumptions -- exactly the method the paper cites.
"""

from repro.analysis.stats import (
    SummaryStats,
    median,
    median_ci,
    median_ci_ranks,
    percentile,
    percentiles,
    summarize,
)
from repro.analysis.plotting import bar_chart, cdf_points, sparkline
from repro.analysis.reporting import Table, format_ns, format_bytes
from repro.analysis.streams import (
    LogHistogram,
    P2Quantile,
    StreamingSummary,
    Welford,
)
from repro.analysis.sweep import ParallelSweep, Sweep, SweepPoint

__all__ = [
    "LogHistogram",
    "P2Quantile",
    "ParallelSweep",
    "StreamingSummary",
    "SummaryStats",
    "Sweep",
    "SweepPoint",
    "Table",
    "Welford",
    "bar_chart",
    "cdf_points",
    "format_bytes",
    "format_ns",
    "median",
    "median_ci",
    "median_ci_ranks",
    "percentile",
    "percentiles",
    "sparkline",
    "summarize",
]
