"""Parameter-sweep harness: run a scenario factory over a grid.

Each benchmark is a sweep over one axis (payload size, worker count,
rank count, ...); this helper keeps the iteration and bookkeeping
uniform across all of them.

Sweeps can fan out across CPU cores (``parallel`` field, or the
:class:`ParallelSweep` mode) via :mod:`repro.parallel`: grid points are
shipped to worker processes as picklable :class:`~repro.parallel.RunSpec`
objects and reassembled in grid order, bit-identical to serial
execution.  Set ``seed_arg`` to give every point an explicit seed split
off ``root_seed`` with :func:`repro.sim.rng.derive_seed`; the seed
depends only on the point's parameters, never on execution order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Optional

from repro.sim.rng import derive_seed

DEFAULT_ROOT_SEED = 0xC0FFEE


@dataclass
class SweepPoint:
    """One grid point: the parameter values and whatever the run returned.

    ``index`` is the point's position in row-major axis order -- the
    explicit ordering key the parallel engine reassembles results by.
    """

    params: dict[str, Any]
    result: Any
    index: int = -1

    def __getitem__(self, key: str) -> Any:
        return self.params[key]

    @property
    def failed(self) -> bool:
        from repro.parallel.runspec import FailedPoint

        return isinstance(self.result, FailedPoint)


def _point_key(params: dict[str, Any]) -> str:
    """Stable identity of a grid point, independent of axis order."""
    return "&".join(f"{name}={params[name]!r}" for name in sorted(params))


@dataclass
class Sweep:
    """Runs ``fn(**params)`` for every combination of the given axes."""

    fn: Callable[..., Any]
    points: list[SweepPoint] = field(default_factory=list)
    #: Worker processes: 1 = serial (the default), 0 = one per CPU core.
    parallel: int = 1
    #: Per-chunk timeout when running in worker processes.
    timeout_s: Optional[float] = None
    #: Grid points shipped per worker round trip.
    chunksize: int = 1
    #: When set, each point receives ``{seed_arg: derive_seed(root_seed, key)}``.
    seed_arg: Optional[str] = None
    root_seed: int = DEFAULT_ROOT_SEED
    #: Result cache: a :class:`repro.cache.ResultCache` or a directory
    #: path to open one at.  Enabling it makes re-running a sweep (or
    #: resuming one after an interrupt) O(changed points): completed
    #: points come back from disk, only new/invalidated points run.
    #: Cached execution routes through the engine, so failures are
    #: captured as :class:`~repro.parallel.FailedPoint` data.
    cache: Any = None

    def grid(self, **axes: Iterable[Any]) -> list[dict[str, Any]]:
        """Row-major cartesian product over *axes*."""
        names = list(axes)
        values = [list(axis) for axis in axes.values()]
        return [dict(zip(names, combo)) for combo in itertools.product(*values)]

    def _call_kwargs(self, params: dict[str, Any]) -> dict[str, Any]:
        kwargs = dict(params)
        if self.seed_arg is not None:
            kwargs[self.seed_arg] = derive_seed(self.root_seed, _point_key(params))
        return kwargs

    def run(self, **axes: Iterable[Any]) -> "Sweep":
        """Cartesian product over *axes* (single values allowed as lists)."""
        combos = self.grid(**axes)
        base = len(self.points)
        outcomes = self._execute(combos)
        for offset, (params, outcome) in enumerate(zip(combos, outcomes)):
            self.points.append(SweepPoint(dict(params), outcome, index=base + offset))
        return self

    def _resolved_cache(self) -> Any:
        """The ResultCache to use (opening one from a path, once)."""
        if self.cache is None:
            return None
        if isinstance(self.cache, (str, Path)):
            from repro.cache import ResultCache

            self.cache = ResultCache(self.cache)
        return self.cache

    def _execute(self, combos: list[dict[str, Any]]) -> list[Any]:
        # 0/negative means "auto": the shared resolve_workers chain
        # inside run_specs picks the worker count, same as every path.
        workers = self.parallel
        cache = self._resolved_cache()
        if (workers == 1 and cache is None) or not combos:
            return [self.fn(**self._call_kwargs(params)) for params in combos]

        from repro.parallel import run_specs, spec_for_callable

        try:
            specs = [
                spec_for_callable(
                    self.fn,
                    self._call_kwargs(params),
                    index=index,
                    label=_point_key(params),
                )
                for index, params in enumerate(combos)
            ]
        except ValueError:
            # fn is a lambda/closure: not shippable (and not keyable by
            # content), so run in-process without the cache.
            return [self.fn(**self._call_kwargs(params)) for params in combos]
        return run_specs(
            specs,
            workers,
            timeout_s=self.timeout_s,
            chunksize=self.chunksize,
            cache=cache,
        )

    def column(self, extract: Callable[[SweepPoint], Any]) -> list[Any]:
        return [extract(point) for point in self.points]

    def failures(self) -> list[SweepPoint]:
        """Points whose run failed (parallel/engine modes only)."""
        return [point for point in self.points if point.failed]

    def where(self, **filters: Any) -> list[SweepPoint]:
        return [
            point
            for point in self.points
            if all(point.params.get(key) == value for key, value in filters.items())
        ]


@dataclass
class ParallelSweep(Sweep):
    """A :class:`Sweep` that defaults to one worker per CPU core."""

    parallel: int = 0
