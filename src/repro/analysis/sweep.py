"""Parameter-sweep harness: run a scenario factory over a grid.

Each benchmark is a sweep over one axis (payload size, worker count,
rank count, ...); this helper keeps the iteration and bookkeeping
uniform across all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable


@dataclass
class SweepPoint:
    """One grid point: the parameter values and whatever the run returned."""

    params: dict[str, Any]
    result: Any

    def __getitem__(self, key: str) -> Any:
        return self.params[key]


@dataclass
class Sweep:
    """Runs ``fn(**params)`` for every combination of the given axes."""

    fn: Callable[..., Any]
    points: list[SweepPoint] = field(default_factory=list)

    def run(self, **axes: Iterable[Any]) -> "Sweep":
        """Cartesian product over *axes* (single values allowed as lists)."""
        names = list(axes)
        grids: list[list[Any]] = [list(values) for values in axes.values()]

        def recurse(index: int, chosen: dict[str, Any]) -> None:
            if index == len(names):
                self.points.append(SweepPoint(dict(chosen), self.fn(**chosen)))
                return
            for value in grids[index]:
                chosen[names[index]] = value
                recurse(index + 1, chosen)
            chosen.pop(names[index], None)

        recurse(0, {})
        return self

    def column(self, extract: Callable[[SweepPoint], Any]) -> list[Any]:
        return [extract(point) for point in self.points]

    def where(self, **filters: Any) -> list[SweepPoint]:
        return [
            point
            for point in self.points
            if all(point.params.get(key) == value for key, value in filters.items())
        ]
