"""Terminal plots: sparklines and bar charts in plain text.

No plotting library is available offline, so experiment tables can
attach these compact text visuals -- enough to see a trend or a
crossover directly in CI logs.
"""

from __future__ import annotations

from typing import Optional, Sequence

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], log: bool = False) -> str:
    """A one-line trend for *values* (8 amplitude levels)."""
    if not values:
        return ""
    import math

    series = [math.log10(max(v, 1e-12)) for v in values] if log else list(values)
    lo, hi = min(series), max(series)
    if hi == lo:
        return _SPARK_LEVELS[0] * len(series)
    span = hi - lo
    out = []
    for value in series:
        index = int((value - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[index])
    return "".join(out)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    log: bool = False,
) -> str:
    """A horizontal text bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        return ""
    import math

    scaled = [math.log10(max(v, 1e-12)) for v in values] if log else list(values)
    lo = min(0.0, min(scaled)) if not log else min(scaled)
    hi = max(scaled)
    span = (hi - lo) or 1.0
    label_width = max(len(label) for label in labels)
    rows = []
    for label, value, mapped in zip(labels, values, scaled):
        bar = "█" * max(1, round((mapped - lo) / span * width))
        rows.append(f"{label:<{label_width}}  {bar} {value:,.3g}{unit}")
    return "\n".join(rows)


def cdf_points(values: Sequence[float], points: int = 11) -> list[tuple[float, float]]:
    """(quantile, value) pairs for a text CDF (0..1 inclusive)."""
    if not values:
        raise ValueError("cdf of empty sequence")
    ordered = sorted(values)
    out = []
    for index in range(points):
        q = index / (points - 1)
        rank = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
        out.append((q, float(ordered[rank])))
    return out
