"""Vectorized single-server FIFO replay for manager-side latencies.

The control-plane scenario models the resource manager's CPU as one
FIFO server: every RPC that reaches it (lease requests, renewals,
releases, re-acquisitions after a steal) queues behind the in-flight
one, so renewal storms and post-churn re-acquire bursts show up as
latency tails -- the effect the scenario exists to measure.

Both control drivers (the per-event RPC reference and the vectorized
kernel) produce the *same multiset* of manager events; this module is
the single shared post-pass that turns those logs into latencies, so
the two drivers' statistics agree bit for bit by construction: one
canonical sort, one exact vectorized recurrence, one
:class:`~repro.analysis.streams.StreamingSummary` observation order.

The recurrence for completion times is the classic Lindley unrolling::

    done_i = max(t_i, done_{i-1}) + s_i
           = C_i + max_{j <= i} (t_j - C_{j-1})      with C = cumsum(s)

which vectorizes to one ``cumsum`` plus one ``maximum.accumulate`` --
exact integer arithmetic, no approximation.
"""

from __future__ import annotations

import numpy as np


def replay_fifo(
    times: np.ndarray, kinds: np.ndarray, keys: np.ndarray, service_ns: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Serve the logged events through one FIFO server.

    ``times``/``kinds``/``keys`` are parallel rows (arrival instant,
    event-kind code, disambiguating id); ``service_ns[kind]`` is the
    per-kind service cost.  Rows are first put into the canonical order
    ``(time, kind, key)`` -- the triple is unique for every control
    event class, so the order is total and identical for any two logs
    holding the same multiset of rows.

    Returns ``(order, done)``: the canonical-order permutation and the
    completion instant of each row *in that order*.
    """
    times = np.asarray(times, dtype=np.int64)
    kinds = np.asarray(kinds, dtype=np.int64)
    keys = np.asarray(keys, dtype=np.int64)
    if not (times.shape == kinds.shape == keys.shape) or times.ndim != 1:
        raise ValueError("times/kinds/keys must be equal-length 1-D arrays")
    if times.size == 0:
        return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.int64)
    order = np.lexsort((keys, kinds, times))
    t = times[order]
    s = np.asarray(service_ns, dtype=np.int64)[kinds[order]]
    c = np.cumsum(s)
    slack = t - (c - s)  # t_j - C_{j-1}
    done = c + np.maximum.accumulate(slack)
    return order, done


def sojourn_by_kind(
    times: np.ndarray,
    kinds: np.ndarray,
    keys: np.ndarray,
    service_ns: np.ndarray,
    kind_count: int,
) -> list[np.ndarray]:
    """FIFO sojourn times (done - arrival) split per kind.

    Each returned array is in canonical event order, so observing it
    into a :class:`~repro.analysis.streams.StreamingSummary` with one
    ``observe_many`` call is deterministic across drivers.
    """
    order, done = replay_fifo(times, kinds, keys, service_ns)
    sojourn = done - np.asarray(times, dtype=np.int64)[order]
    sorted_kinds = np.asarray(kinds, dtype=np.int64)[order]
    return [sojourn[sorted_kinds == kind] for kind in range(kind_count)]
