"""Order statistics: medians, percentiles, nonparametric CIs.

The median CI uses the classic binomial argument: if X(1) <= ... <= X(n)
are the order statistics, then P(X(l) <= m <= X(u)) = P(l <= B <= u-1)
where B ~ Binomial(n, 1/2) counts observations below the median.  We
pick the tightest symmetric (l, u) achieving the requested coverage.
No distributional assumptions -- this is what the paper computes
("non-parametric 99% confidence intervals of the median", Sec. V-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Sequence


def median(values: Sequence[float]) -> float:
    """Sample median (average of the two middle values for even n)."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2


def percentile(values: Sequence[float], q: float) -> float:
    """q-th percentile (0..100), linear interpolation between ranks."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * q / 100
    low = int(rank)
    frac = rank - low
    if low + 1 < len(ordered):
        return ordered[low] * (1 - frac) + ordered[low + 1] * frac
    return float(ordered[-1])


def _binomial_cdf(k: int, n: int) -> float:
    """P(B <= k) for B ~ Binomial(n, 1/2)."""
    if k < 0:
        return 0.0
    if k >= n:
        return 1.0
    total = sum(comb(n, i) for i in range(k + 1))
    return total / 2**n


def median_ci(values: Sequence[float], confidence: float = 0.99) -> tuple[float, float]:
    """Nonparametric CI for the median from binomial order statistics.

    Returns (low, high) sample values.  For very small samples where no
    interior interval achieves the coverage, the sample range is
    returned (the conservative choice).
    """
    if not values:
        raise ValueError("median_ci of empty sequence")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    ordered = sorted(values)
    n = len(ordered)
    if n == 1:
        return float(ordered[0]), float(ordered[0])
    # Walk symmetric ranks outward from the middle until coverage holds:
    # coverage of (l, u) [1-indexed] = P(l <= B <= u-1), B ~ Bin(n, 1/2).
    for half_width in range(1, n // 2 + 1):
        lo = n // 2 - half_width + 1  # 1-indexed lower rank
        hi = n - lo + 1  # symmetric upper rank
        if lo < 1:
            break
        coverage = _binomial_cdf(hi - 2, n) - _binomial_cdf(lo - 2, n)
        if coverage >= confidence:
            return float(ordered[lo - 1]), float(ordered[hi - 1])
    return float(ordered[0]), float(ordered[-1])


@dataclass
class SummaryStats:
    """The numbers the paper's figures report for one series."""

    count: int
    median: float
    p99: float
    mean: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def ci_tightness(self) -> float:
        """CI width relative to the median (paper: '<1%' for Fig. 8)."""
        if self.median == 0:
            return 0.0
        return (self.ci_high - self.ci_low) / self.median


def summarize(values: Sequence[float], confidence: float = 0.99) -> SummaryStats:
    """Median/p99/mean/CI bundle for a sample."""
    if not values:
        raise ValueError("summarize of empty sequence")
    low, high = median_ci(values, confidence)
    return SummaryStats(
        count=len(values),
        median=median(values),
        p99=percentile(values, 99),
        mean=sum(values) / len(values),
        minimum=float(min(values)),
        maximum=float(max(values)),
        ci_low=low,
        ci_high=high,
        confidence=confidence,
    )
