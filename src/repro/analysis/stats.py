"""Order statistics: medians, percentiles, nonparametric CIs.

The median CI uses the classic binomial argument: if X(1) <= ... <= X(n)
are the order statistics, then P(X(l) <= m <= X(u)) = P(l <= B <= u-1)
where B ~ Binomial(n, 1/2) counts observations below the median.  We
pick the tightest symmetric (l, u) achieving the requested coverage.
No distributional assumptions -- this is what the paper computes
("non-parametric 99% confidence intervals of the median", Sec. V-A).

For samples beyond a few thousand points the exact binomial walk is
replaced by the standard normal approximation of the binomial ranks
(l, u = n/2 -+ z*sqrt(n)/2), which is what makes million-sample CIs
affordable; :func:`median_ci_ranks` exposes the rank computation so
the streaming estimators in :mod:`repro.analysis.streams` can reuse it
without materializing the sample.

``summarize()`` sorts the sample **once** and derives median, p50, p95,
p99, min, max and the CI from the same ordered copy; before this it
re-sorted per statistic (five sorts per call), which dominated
summary cost for large series.  Use :func:`percentiles` for the same
one-sort derivation of an arbitrary percentile list.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, comb, floor, sqrt
from statistics import NormalDist
from typing import Sequence

#: Above this sample size, CI ranks switch from the exact binomial walk
#: (O(n^2) big-int work) to the normal approximation of the binomial.
_EXACT_CI_MAX_N = 2_000


def _percentile_sorted(ordered: Sequence[float], q: float) -> float:
    """q-th percentile of an already-sorted sample (linear interpolation)."""
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * q / 100
    low = int(rank)
    frac = rank - low
    if low + 1 < len(ordered):
        return ordered[low] * (1 - frac) + ordered[low + 1] * frac
    return float(ordered[-1])


def _median_sorted(ordered: Sequence[float]) -> float:
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2


def median(values: Sequence[float]) -> float:
    """Sample median (average of the two middle values for even n)."""
    if not values:
        raise ValueError("median of empty sequence")
    return _median_sorted(sorted(values))


def percentile(values: Sequence[float], q: float) -> float:
    """q-th percentile (0..100), linear interpolation between ranks."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    return _percentile_sorted(sorted(values), q)


def percentiles(values: Sequence[float], qs: Sequence[float]) -> list[float]:
    """Several percentiles from one sort of *values*.

    Equivalent to ``[percentile(values, q) for q in qs]`` but sorts the
    sample once instead of once per requested percentile.
    """
    if not values:
        raise ValueError("percentiles of empty sequence")
    for q in qs:
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    return [_percentile_sorted(ordered, q) for q in qs]


def _binomial_cdf(k: int, n: int) -> float:
    """P(B <= k) for B ~ Binomial(n, 1/2)."""
    if k < 0:
        return 0.0
    if k >= n:
        return 1.0
    total = sum(comb(n, i) for i in range(k + 1))
    return total / 2**n


def median_ci_ranks(n: int, confidence: float = 0.99) -> tuple[int, int]:
    """1-indexed order-statistic ranks (l, u) bracketing the median.

    Exact binomial walk for small n (identical to the historical
    behaviour); normal approximation of Binomial(n, 1/2) for large n,
    where the exact walk would grind through O(n) huge binomial
    coefficients per candidate interval.  Returns ``(1, n)`` when no
    interior interval achieves the coverage (the conservative choice).
    """
    if n < 1:
        raise ValueError("median_ci_ranks needs n >= 1")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n == 1:
        return 1, 1
    if n <= _EXACT_CI_MAX_N:
        for half_width in range(1, n // 2 + 1):
            lo = n // 2 - half_width + 1
            hi = n - lo + 1
            if lo < 1:
                break
            coverage = _binomial_cdf(hi - 2, n) - _binomial_cdf(lo - 2, n)
            if coverage >= confidence:
                return lo, hi
        return 1, n
    z = NormalDist().inv_cdf((1 + confidence) / 2)
    half = z * sqrt(n) / 2
    lo = max(1, floor(n / 2 - half))
    hi = min(n, ceil(n / 2 + 1 + half))
    return lo, hi


def _median_ci_sorted(
    ordered: Sequence[float], confidence: float
) -> tuple[float, float]:
    lo, hi = median_ci_ranks(len(ordered), confidence)
    return float(ordered[lo - 1]), float(ordered[hi - 1])


def median_ci(values: Sequence[float], confidence: float = 0.99) -> tuple[float, float]:
    """Nonparametric CI for the median from binomial order statistics.

    Returns (low, high) sample values.  For very small samples where no
    interior interval achieves the coverage, the sample range is
    returned (the conservative choice).
    """
    if not values:
        raise ValueError("median_ci of empty sequence")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return _median_ci_sorted(sorted(values), confidence)


@dataclass
class SummaryStats:
    """The numbers the paper's figures report for one series."""

    count: int
    median: float
    p99: float
    mean: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float
    confidence: float
    #: 95th percentile (added with the one-sort summary path; older
    #: archived results may carry the 0.0 default).
    p95: float = 0.0

    @property
    def p50(self) -> float:
        """Alias: the median is the 50th percentile."""
        return self.median

    @property
    def ci_tightness(self) -> float:
        """CI width relative to the median (paper: '<1%' for Fig. 8)."""
        if self.median == 0:
            return 0.0
        return (self.ci_high - self.ci_low) / self.median


def summarize(values: Sequence[float], confidence: float = 0.99) -> SummaryStats:
    """Median/p95/p99/mean/CI bundle for a sample, from a single sort."""
    if not values:
        raise ValueError("summarize of empty sequence")
    ordered = sorted(values)
    low, high = _median_ci_sorted(ordered, confidence)
    return SummaryStats(
        count=len(ordered),
        median=_median_sorted(ordered),
        p99=_percentile_sorted(ordered, 99),
        mean=sum(ordered) / len(ordered),
        minimum=float(ordered[0]),
        maximum=float(ordered[-1]),
        ci_low=low,
        ci_high=high,
        confidence=confidence,
        p95=_percentile_sorted(ordered, 95),
    )
