"""O(1)-memory streaming statistics for million-invocation runs.

The exact pipeline in :mod:`repro.analysis.stats` keeps every sample in
memory and sorts once per summary -- fine for the paper's figures
(10^3..10^5 points), hopeless for the scale harness where a single run
produces >=10^6 latencies.  This module computes the same summary shape
(:class:`repro.analysis.stats.SummaryStats`) from bounded state:

* :class:`Welford` -- numerically stable running mean/variance
  (Welford's online algorithm), with Chan's parallel-merge formulas so
  per-shard accumulators combine exactly.
* :class:`P2Quantile` -- the classic Jain & Chlamtac P-squared
  single-quantile estimator: five markers, piecewise-parabolic
  adjustment, O(1) state.  Kept for spot estimates of one quantile;
  it is *approximate with no hard error bound*, so the summary path
  below does not rely on it.
* :class:`LogHistogram` -- base-2 logarithmic histogram with
  ``2**subbits`` sub-buckets per octave.  Every recorded value lands in
  a bucket whose width is at most ``2**-subbits`` of its magnitude, so
  any quantile read back from the histogram has **relative error
  <= 2**-subbits** (default ``subbits=8``: <= 0.39%).  This bound is
  deterministic -- not probabilistic like a reservoir -- and the
  histogram merges exactly across shards.
* :class:`StreamingSummary` -- glue: Welford + LogHistogram + exact
  min/max, bridged to ``SummaryStats`` (median, p95, p99, mean, CI)
  through the same binomial CI ranks the exact path uses
  (:func:`repro.analysis.stats.median_ci_ranks`).
* :class:`KeyedStreamingSummary` -- a keyed map of the above (one
  accumulator per tenant/class), with the same exact keyed merge
  across shards: keys union, per-key accumulators fold with the exact
  histogram/min/max paths, so any grouping of shards produces the same
  per-key histograms whatever order keys first appeared in.

Memory is O(number of occupied buckets), bounded by
``subbits``-per-octave times the dynamic range of the data and
independent of sample count: nanosecond latencies spanning 1ns..100s
touch at most ~37 octaves, i.e. <10k buckets at the default resolution.
"""

from __future__ import annotations

from math import frexp, ldexp, sqrt
from typing import Any, Iterable, Optional

from repro.analysis.stats import SummaryStats, median_ci_ranks

try:  # pragma: no cover - exercised via observe_many when numpy exists
    import numpy as _np
except Exception:  # pragma: no cover - numpy is in the base image
    _np = None


class Welford:
    """Running count/mean/variance (Welford online, Chan merge)."""

    __slots__ = ("count", "mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    def add_batch(self, count: int, mean: float, m2: float) -> None:
        """Fold pre-aggregated moments in (Chan et al. pairwise update)."""
        if count <= 0:
            return
        total = self.count + count
        delta = mean - self.mean
        self.mean += delta * count / total
        self._m2 += m2 + delta * delta * self.count * count / total
        self.count = total

    def merge(self, other: "Welford") -> None:
        self.add_batch(other.count, other.mean, other._m2)

    @property
    def variance(self) -> float:
        """Population variance (0.0 until two samples arrive)."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def sample_variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return sqrt(self.variance)


class P2Quantile:
    """Jain & Chlamtac's P-squared estimator for a single quantile.

    Five markers track (min, q/2, q, (1+q)/2, max); marker heights move
    by piecewise-parabolic interpolation as observations arrive.  Exact
    while fewer than five samples have been seen.  Accuracy is good in
    practice but carries no worst-case bound -- use
    :class:`LogHistogram` when a guaranteed bound matters.
    """

    __slots__ = ("q", "_heights", "_positions", "_desired", "_increments")

    def __init__(self, q: float) -> None:
        if not 0 < q < 1:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._heights: list[float] = []
        self._positions = [1, 2, 3, 4, 5]
        self._desired = [1.0, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5.0]
        self._increments = [0.0, q / 2, q, (1 + q) / 2, 1.0]

    def add(self, value: float) -> None:
        heights = self._heights
        if len(heights) < 5:
            heights.append(value)
            heights.sort()
            return
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        positions = self._positions
        for i in range(cell + 1, 5):
            positions[i] += 1
        desired = self._desired
        for i in range(5):
            desired[i] += self._increments[i]
        # Adjust the three interior markers toward their desired ranks.
        for i in (1, 2, 3):
            gap = desired[i] - positions[i]
            if (gap >= 1 and positions[i + 1] - positions[i] > 1) or (
                gap <= -1 and positions[i - 1] - positions[i] < -1
            ):
                step = 1 if gap >= 1 else -1
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + step * (h[i + step] - h[i]) / (n[i + step] - n[i])

    @property
    def value(self) -> float:
        """Current estimate of the tracked quantile."""
        heights = self._heights
        if not heights:
            raise ValueError("P2Quantile.value before any sample")
        if len(heights) < 5:
            # Exact small-sample path: nearest-rank on the sorted buffer.
            rank = max(0, min(len(heights) - 1, round(self.q * (len(heights) - 1))))
            return heights[rank]
        return self._heights[2]


class LogHistogram:
    """Base-2 log histogram: relative quantile error <= 2**-subbits.

    A positive value ``v = m * 2**e`` (``frexp``, ``0.5 <= m < 1``)
    falls in octave ``e - 1`` and sub-bucket ``floor((2m - 1) *
    2**subbits)``; the bucket spans ``[lo, lo * (1 + 2**-subbits))``
    with ``lo = 2**octave * (1 + sub * 2**-subbits)``.  Reads report the
    bucket's lower edge, so a reported quantile ``r`` satisfies
    ``r <= true < r * (1 + 2**-subbits)`` -- the documented relative
    error bound (underestimates only, never overestimates).

    Zeros are counted exactly in a dedicated bucket; negative values are
    rejected (the harness records latencies and rates, both >= 0).
    """

    __slots__ = ("subbits", "count", "zero_count", "_scale", "_buckets")

    def __init__(self, subbits: int = 8) -> None:
        if not 1 <= subbits <= 16:
            raise ValueError(f"subbits must be in [1, 16], got {subbits}")
        self.subbits = subbits
        self._scale = 1 << subbits
        self.count = 0
        self.zero_count = 0
        #: bucket key -> occupancy; key = octave * 2**subbits + sub.
        self._buckets: dict[int, int] = {}

    def _key(self, value: float) -> int:
        mantissa, exponent = frexp(value)
        sub = int((2 * mantissa - 1) * self._scale)
        if sub == self._scale:  # guard against float round-up at m -> 1
            sub = self._scale - 1
        return (exponent - 1) * self._scale + sub

    def _edge(self, key: int) -> float:
        octave, sub = divmod(key, self._scale)
        return ldexp(1 + sub / self._scale, octave)

    def add(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"LogHistogram records non-negative values, got {value}")
        self.count += 1
        if value == 0:
            self.zero_count += 1
            return
        key = self._key(value)
        buckets = self._buckets
        buckets[key] = buckets.get(key, 0) + 1

    def add_many(self, values) -> None:
        """Bulk insert; vectorized with numpy when available."""
        if _np is not None:
            arr = _np.asarray(values, dtype=_np.float64)
            if arr.size == 0:
                return
            if bool((arr < 0).any()):
                raise ValueError("LogHistogram records non-negative values")
            self.count += int(arr.size)
            zeros = int((arr == 0).sum())
            self.zero_count += zeros
            positive = arr[arr > 0]
            if positive.size == 0:
                return
            mantissa, exponent = _np.frexp(positive)
            sub = ((2 * mantissa - 1) * self._scale).astype(_np.int64)
            _np.clip(sub, 0, self._scale - 1, out=sub)
            keys = (exponent.astype(_np.int64) - 1) * self._scale + sub
            uniq, counts = _np.unique(keys, return_counts=True)
            buckets = self._buckets
            for key, bump in zip(uniq.tolist(), counts.tolist()):
                buckets[key] = buckets.get(key, 0) + bump
            return
        for value in values:
            self.add(value)

    def merge(self, other: "LogHistogram") -> None:
        if other.subbits != self.subbits:
            raise ValueError("cannot merge histograms with different subbits")
        self.count += other.count
        self.zero_count += other.zero_count
        buckets = self._buckets
        for key, bump in other._buckets.items():
            buckets[key] = buckets.get(key, 0) + bump

    def __len__(self) -> int:
        """Occupied buckets -- the memory footprint, not the sample count."""
        return len(self._buckets) + (1 if self.zero_count else 0)

    def value_at_rank(self, rank: int) -> float:
        """Lower edge of the bucket holding the rank-th smallest sample.

        ``rank`` is 1-indexed (order-statistic convention, matching
        :func:`repro.analysis.stats.median_ci_ranks`).
        """
        if not 1 <= rank <= self.count:
            raise ValueError(f"rank {rank} outside [1, {self.count}]")
        if rank <= self.zero_count:
            return 0.0
        remaining = rank - self.zero_count
        for key in sorted(self._buckets):
            remaining -= self._buckets[key]
            if remaining <= 0:
                return self._edge(key)
        raise AssertionError("bucket counts inconsistent with self.count")

    def quantile(self, q: float) -> float:
        """q-th quantile (0..1), nearest-rank, within the error bound."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError("quantile of empty histogram")
        rank = max(1, min(self.count, round(q * (self.count - 1)) + 1))
        return self.value_at_rank(rank)


class StreamingSummary:
    """Bounded-memory replacement for ``stats.summarize`` at scale.

    Combines exact moments (:class:`Welford`), exact min/max, and
    bounded-error quantiles (:class:`LogHistogram`).  ``summarize()``
    returns the same :class:`~repro.analysis.stats.SummaryStats` shape
    as the exact path, with median/p95/p99/CI read from the histogram:
    each carries the histogram's relative error bound of
    ``2**-subbits``; count, mean, min and max are exact.
    """

    __slots__ = ("welford", "histogram", "minimum", "maximum")

    def __init__(self, subbits: int = 8) -> None:
        self.welford = Welford()
        self.histogram = LogHistogram(subbits)
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    @property
    def count(self) -> int:
        return self.histogram.count

    def observe(self, value: float) -> None:
        self.welford.add(value)
        self.histogram.add(value)
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def observe_many(self, values: Iterable[float]) -> None:
        """Bulk observe; numpy arrays take the vectorized path."""
        if _np is not None:
            arr = _np.asarray(values, dtype=_np.float64)
            if arr.size == 0:
                return
            self.histogram.add_many(arr)
            batch_mean = float(arr.mean())
            self.welford.add_batch(
                int(arr.size),
                batch_mean,
                float(((arr - batch_mean) ** 2).sum()),
            )
            low, high = float(arr.min()), float(arr.max())
            if self.minimum is None or low < self.minimum:
                self.minimum = low
            if self.maximum is None or high > self.maximum:
                self.maximum = high
            return
        for value in values:
            self.observe(value)

    @classmethod
    def merged(cls, parts: Iterable["StreamingSummary"]) -> "StreamingSummary":
        """Fold shard accumulators, in the given order, into a fresh summary.

        Histogram counts, min/max, and sample counts fold exactly in
        any order or grouping; the Welford moments use Chan's formulas,
        which are exact in real arithmetic and reassociate only within
        float rounding -- callers that need bit-stable output (the
        sharded scale engine) fold in a fixed order, which this helper
        guarantees by consuming *parts* sequentially.
        """
        parts = list(parts)
        if not parts:
            raise ValueError("merged() needs at least one summary")
        out = cls(parts[0].histogram.subbits)
        for part in parts:
            out.merge(part)
        return out

    def merge(self, other: "StreamingSummary") -> None:
        """Exact fold of a shard's accumulator (for parallel runs)."""
        self.welford.merge(other.welford)
        self.histogram.merge(other.histogram)
        if other.minimum is not None and (
            self.minimum is None or other.minimum < self.minimum
        ):
            self.minimum = other.minimum
        if other.maximum is not None and (
            self.maximum is None or other.maximum > self.maximum
        ):
            self.maximum = other.maximum

    def summarize(self, confidence: float = 0.99) -> SummaryStats:
        n = self.count
        if n == 0:
            raise ValueError("summarize of empty stream")
        hist = self.histogram
        lo, hi = median_ci_ranks(n, confidence)
        return SummaryStats(
            count=n,
            median=hist.quantile(0.5),
            p99=hist.quantile(0.99),
            mean=self.welford.mean,
            minimum=float(self.minimum),
            maximum=float(self.maximum),
            ci_low=hist.value_at_rank(lo),
            ci_high=hist.value_at_rank(hi),
            confidence=confidence,
            p95=hist.quantile(0.95),
        )


class KeyedStreamingSummary:
    """A map of :class:`StreamingSummary` accumulators, one per key.

    The multi-tenant scale engine records every tenant's sojourns into
    its own accumulator and folds per-shard maps back together.  The
    keyed merge keeps the component guarantees: histogram counts,
    min/max and sample counts fold exactly under any grouping of
    shards (keys union; a key absent from a shard contributes
    nothing), so per-key quantiles are bit-stable however the scenario
    was decomposed.  Only the Welford moments reassociate within float
    rounding -- callers that need bit-stable means divide exact integer
    totals instead, exactly like the unkeyed scale path.
    """

    __slots__ = ("subbits", "parts")

    def __init__(self, subbits: int = 8) -> None:
        self.subbits = subbits
        #: key -> accumulator; insertion order is first-observation
        #: order, but nothing below depends on it (``keys()`` sorts).
        self.parts: dict[Any, StreamingSummary] = {}

    def __len__(self) -> int:
        return len(self.parts)

    def __contains__(self, key: Any) -> bool:
        return key in self.parts

    def keys(self) -> list:
        """All keys observed so far, sorted for deterministic iteration."""
        return sorted(self.parts)

    def part(self, key: Any) -> StreamingSummary:
        """The accumulator for *key*, created empty on first use."""
        summary = self.parts.get(key)
        if summary is None:
            summary = self.parts[key] = StreamingSummary(self.subbits)
        return summary

    def observe(self, key: Any, value: float) -> None:
        self.part(key).observe(value)

    def observe_many(self, key: Any, values: Iterable[float]) -> None:
        self.part(key).observe_many(values)

    def count(self, key: Any) -> int:
        summary = self.parts.get(key)
        return 0 if summary is None else summary.count

    def total_count(self) -> int:
        return sum(summary.count for summary in self.parts.values())

    def buckets(self) -> int:
        """Total occupied histogram buckets across keys (memory gauge)."""
        return sum(len(summary.histogram) for summary in self.parts.values())

    def merge(self, other: "KeyedStreamingSummary") -> None:
        """Exact keyed fold of a shard's map (keys union)."""
        if other.subbits != self.subbits:
            raise ValueError("cannot merge keyed summaries with different subbits")
        for key, summary in other.parts.items():
            mine = self.parts.get(key)
            if mine is None:
                # Fold into a fresh accumulator rather than aliasing the
                # shard's: merges must never mutate their inputs.
                mine = self.parts[key] = StreamingSummary(self.subbits)
            mine.merge(summary)

    @classmethod
    def merged(cls, parts: Iterable["KeyedStreamingSummary"]) -> "KeyedStreamingSummary":
        """Fold shard maps, in the given order, into a fresh keyed map.

        Consuming *parts* sequentially pins the Welford fold order the
        same way :meth:`StreamingSummary.merged` does; every other
        component is order-independent.
        """
        parts = list(parts)
        if not parts:
            raise ValueError("merged() needs at least one keyed summary")
        out = cls(parts[0].subbits)
        for part in parts:
            out.merge(part)
        return out

    def summarize(self, key: Any, confidence: float = 0.99) -> SummaryStats:
        summary = self.parts.get(key)
        if summary is None:
            raise KeyError(f"no samples recorded under key {key!r}")
        return summary.summarize(confidence)
