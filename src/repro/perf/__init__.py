"""Opt-in performance counters for the simulator's own hot loops.

Disabled by default: the fast paths check a single module-level flag
(``perf.enabled``) before touching any counter, so the cost when off is
one dict lookup per instrumented site.  Enable around a measurement:

    from repro import perf

    perf.enable()
    ...  # run a scenario
    stats = perf.snapshot()
    perf.disable()

Counters capture *wall-clock efficiency* facts that simulated results
never show: how many allocations the Timeout pool avoided, and how many
payload bytes moved by reference (``memoryview``) instead of being
copied on the verbs data path.  ``events_per_sec`` is a rate, so it is
computed by the bench harness (events / wall seconds), not here.
"""

from __future__ import annotations

from typing import Any

#: Global gate checked by instrumented fast paths.
enabled = False


class Counters:
    """Accumulators updated by instrumented hot paths while enabled."""

    __slots__ = (
        "bytes_copied",
        "bytes_referenced",
        "alloc_avoided",
        "cache_hits",
        "cache_misses",
        "cache_bytes_read",
        "cache_bytes_written",
        "wheel_entries",
        "heap_entries",
        "wheel_cascades",
        "wheel_overflow_inserts",
        "wheel_reanchors",
        "shard_runs",
        "lane_entries",
        "lane_slabs",
        "lane_rearm_batches",
        "cold_lane_entries",
        "cold_lane_slabs",
        "cold_spinups",
        "cold_reclaims",
        "lease_grants",
        "lease_renewals",
        "lease_steals",
        "dead_nodes",
        "leases_active_peak",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        #: Payload bytes materialized (copied) on the RDMA data path.
        self.bytes_copied = 0
        #: Payload bytes passed as zero-copy memoryview references.
        self.bytes_referenced = 0
        #: Object allocations avoided (e.g. recycled pooled timeouts).
        self.alloc_avoided = 0
        #: Result-cache lookups answered from disk (runs not re-simulated).
        self.cache_hits = 0
        #: Result-cache lookups that had to run the simulation.
        self.cache_misses = 0
        #: Artifact bytes loaded on cache hits.
        self.cache_bytes_read = 0
        #: Artifact bytes persisted on cache fills.
        self.cache_bytes_written = 0
        #: Peak sampled timer-wheel residency (events owned by the O(1)
        #: wheel paths of a WheelEnvironment) -- a gauge, not a total.
        self.wheel_entries = 0
        #: Peak sampled overflow-heap residency alongside the wheel.
        self.heap_entries = 0
        #: Level-1 buckets cascaded into level-0 slots.
        self.wheel_cascades = 0
        #: Scheduled entries that bypassed the wheel (beyond horizon).
        self.wheel_overflow_inserts = 0
        #: Granularity re-anchors performed by adaptive wheels.
        self.wheel_reanchors = 0
        #: Shard simulations executed by the sharded scale engine.
        self.shard_runs = 0
        #: Peak sampled lease-lane residency (struct-of-arrays timers).
        self.lane_entries = 0
        #: Lease-lane drain calls that fired at least one entry.
        self.lane_slabs = 0
        #: Vectorized lease re-arm passes (one per masked slab).
        self.lane_rearm_batches = 0
        #: Peak sampled cold-lane residency (pending spin-ups + reclaims).
        self.cold_lane_entries = 0
        #: Cold-lane drain calls that fired at least one entry.
        self.cold_lane_slabs = 0
        #: Sandbox spin-ups fired (cold starts that reached ready).
        self.cold_spinups = 0
        #: Idle-reclaim expiries fired (successful teardowns only).
        self.cold_reclaims = 0
        #: Control-plane leases granted (primary + post-steal re-acquisitions).
        self.lease_grants = 0
        #: Control-plane lease renewals processed.
        self.lease_renewals = 0
        #: Leases terminated by executor death (steals).
        self.lease_steals = 0
        #: Executor deaths applied (churn no-ops excluded).
        self.dead_nodes = 0
        #: Peak concurrently active leases -- a gauge, not a total.
        self.leases_active_peak = 0


#: Counters that are sampled gauges (peaks): merged with max, not sum.
_GAUGES = frozenset(
    {
        "wheel_entries",
        "heap_entries",
        "lane_entries",
        "lane_slabs",
        "lane_rearm_batches",
        "cold_lane_entries",
        "cold_lane_slabs",
        "leases_active_peak",
    }
)


counters = Counters()


def enable() -> None:
    """Turn counting on (counters keep their current values)."""
    global enabled
    enabled = True


def disable() -> None:
    global enabled
    enabled = False


def reset() -> None:
    """Zero all counters."""
    counters.reset()


def merge(other: dict[str, Any]) -> None:
    """Fold a worker-process snapshot into this process's counters.

    The parallel engine runs instrumented code in worker processes whose
    module-level counters the parent never sees; workers therefore ship
    a :func:`snapshot` back with each result and the parent aggregates
    here, so ``perf`` totals are execution-mode independent.
    """
    for name in Counters.__slots__:
        if name in _GAUGES:
            setattr(counters, name, max(getattr(counters, name), int(other.get(name, 0))))
        else:
            setattr(counters, name, getattr(counters, name) + int(other.get(name, 0)))


def snapshot() -> dict[str, Any]:
    """Current counter values as a plain dict (JSON-friendly)."""
    return {name: getattr(counters, name) for name in Counters.__slots__}


def delta(before: dict[str, Any], after: dict[str, Any]) -> dict[str, Any]:
    """Counter movement between two :func:`snapshot` calls."""
    return {name: int(after.get(name, 0)) - int(before.get(name, 0)) for name in after}
