"""Opt-in performance counters for the simulator's own hot loops.

Disabled by default: the fast paths check a single module-level flag
(``perf.enabled``) before touching any counter, so the cost when off is
one dict lookup per instrumented site.  Enable around a measurement:

    from repro import perf

    perf.enable()
    ...  # run a scenario
    stats = perf.snapshot()
    perf.disable()

Counters capture *wall-clock efficiency* facts that simulated results
never show: how many allocations the Timeout pool avoided, and how many
payload bytes moved by reference (``memoryview``) instead of being
copied on the verbs data path.  ``events_per_sec`` is a rate, so it is
computed by the bench harness (events / wall seconds), not here.
"""

from __future__ import annotations

from typing import Any

#: Global gate checked by instrumented fast paths.
enabled = False


class Counters:
    """Accumulators updated by instrumented hot paths while enabled."""

    __slots__ = ("bytes_copied", "bytes_referenced", "alloc_avoided")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        #: Payload bytes materialized (copied) on the RDMA data path.
        self.bytes_copied = 0
        #: Payload bytes passed as zero-copy memoryview references.
        self.bytes_referenced = 0
        #: Object allocations avoided (e.g. recycled pooled timeouts).
        self.alloc_avoided = 0


counters = Counters()


def enable() -> None:
    """Turn counting on (counters keep their current values)."""
    global enabled
    enabled = True


def disable() -> None:
    global enabled
    enabled = False


def reset() -> None:
    """Zero all counters."""
    counters.reset()


def merge(other: dict[str, Any]) -> None:
    """Fold a worker-process snapshot into this process's counters.

    The parallel engine runs instrumented code in worker processes whose
    module-level counters the parent never sees; workers therefore ship
    a :func:`snapshot` back with each result and the parent aggregates
    here, so ``perf`` totals are execution-mode independent.
    """
    counters.bytes_copied += int(other.get("bytes_copied", 0))
    counters.bytes_referenced += int(other.get("bytes_referenced", 0))
    counters.alloc_avoided += int(other.get("alloc_avoided", 0))


def snapshot() -> dict[str, Any]:
    """Current counter values as a plain dict (JSON-friendly)."""
    return {
        "bytes_copied": counters.bytes_copied,
        "bytes_referenced": counters.bytes_referenced,
        "alloc_avoided": counters.alloc_avoided,
    }
