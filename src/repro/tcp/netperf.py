"""netperf-style TCP request/response measurement (TCP_RR).

The paper reports the *mean* of netperf with page-aligned buffers and
process pinning as its TCP baseline; this reproduces that measurement
pattern on the simulated stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.rdma.fabric import Fabric
from repro.sim.core import Environment
from repro.tcp.stack import TcpConfig, TcpNetwork


@dataclass
class NetperfResult:
    size: int
    iterations: int
    rtts_ns: list[int]

    @property
    def mean_ns(self) -> float:
        return sum(self.rtts_ns) / len(self.rtts_ns)


def netperf_rr(
    size: int,
    iterations: int = 100,
    config: Optional[TcpConfig] = None,
) -> NetperfResult:
    """Ping-pong *size*-byte requests/responses over TCP; returns RTTs."""
    env = Environment()
    fabric = Fabric(env)
    for host in ("np-a", "np-b"):
        fabric.attach(host)
    network = TcpNetwork(fabric, config)
    client = network.endpoint("np-a")
    server = network.endpoint("np-b")
    rtts: list[int] = []

    def server_proc():
        for _ in range(iterations):
            yield server.recv()
            yield from server.send(client, size)

    def client_proc():
        for _ in range(iterations):
            start = env.now
            yield from client.send(server, size)
            yield client.recv()
            rtts.append(env.now - start)

    env.process(server_proc())
    env.process(client_proc())
    env.run()
    return NetperfResult(size=size, iterations=iterations, rtts_ns=rtts)
