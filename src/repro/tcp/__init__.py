"""TCP/IP baseline transport on the same physical fabric.

Fig. 8 compares rFaaS and raw RDMA against an ``netperf`` TCP baseline;
this package provides that baseline: the same links, but every message
pays kernel-stack costs (syscalls, interrupts, copies) and a single
stream achieves only a fraction of the link bandwidth.
"""

from repro.tcp.stack import TcpConfig, TcpEndpoint, TcpNetwork
from repro.tcp.netperf import netperf_rr

__all__ = ["TcpConfig", "TcpEndpoint", "TcpNetwork", "netperf_rr"]
