"""A cost model of kernel TCP on the RDMA cluster's links.

The point of this model is the *contrast* the paper draws in Sec. II-C:
TCP transfers traverse the OS on both ends (syscall, protocol
processing, softirq, copy to/from user space), so even on the same
100 Gb/s links a request/response pair costs tens of microseconds where
RDMA costs 3.69 us, and a single stream does not reach link bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.rdma.fabric import Fabric
from repro.sim.clock import us
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment


@dataclass(frozen=True)
class TcpConfig:
    """Kernel-path latency components (ns) and stream throughput."""

    #: sendmsg syscall + TX protocol processing + qdisc.
    tx_stack_ns: int = us(6)
    #: RX interrupt, softirq protocol processing, socket wakeup.
    rx_stack_ns: int = us(8)
    #: Copy between user and kernel buffers, both directions.
    copy_bytes_per_sec: float = 10e9
    #: Effective single-stream goodput (window/congestion limited).
    stream_bytes_per_sec: float = 4.7e9

    def copy_ns(self, size: int) -> int:
        return round(size * 1e9 / self.copy_bytes_per_sec) if size > 0 else 0

    def stream_extra_ns(self, size: int, link_bytes_per_sec: float) -> int:
        """Extra serialization versus the raw link for a single stream."""
        if size <= 0 or self.stream_bytes_per_sec >= link_bytes_per_sec:
            return 0
        full = size * 1e9 / self.stream_bytes_per_sec
        raw = size * 1e9 / link_bytes_per_sec
        return round(full - raw)

    def one_way_ns(self, size: int, link_serialization_ns: int, propagation_ns: int) -> int:
        """Uncontended one-way latency of a *size*-byte message."""
        return (
            self.tx_stack_ns
            + self.copy_ns(size)
            + link_serialization_ns
            + propagation_ns
            + self.rx_stack_ns
            + self.copy_ns(size)
        )


class TcpEndpoint:
    """A socket-like endpoint: FIFO inbox of (payload_size, payload)."""

    def __init__(self, network: "TcpNetwork", host: str) -> None:
        self.network = network
        self.host = host
        self.inbox: Store = Store(network.env)

    def send(self, dst: "TcpEndpoint", size: int, payload=None):
        """Process generator: send and return once handed to the kernel.

        Delivery to the peer's inbox happens asynchronously after the
        full stack + wire time.
        """
        yield from self.network._send(self, dst, size, payload)

    def recv(self):
        """Event yielding (size, payload) of the next delivered message."""
        return self.inbox.get()


class TcpNetwork:
    """Creates endpoints and moves messages over the shared fabric."""

    def __init__(self, fabric: Fabric, config: Optional[TcpConfig] = None) -> None:
        self.fabric = fabric
        self.env: "Environment" = fabric.env
        self.config = config or TcpConfig()

    def endpoint(self, host: str) -> TcpEndpoint:
        if host not in self.fabric._attachments:
            raise ValueError(f"host {host!r} is not attached to the fabric")
        return TcpEndpoint(self, host)

    def _send(self, src: TcpEndpoint, dst: TcpEndpoint, size: int, payload):
        env = self.env
        cfg = self.config
        # TX: syscall, copy into kernel, protocol processing.
        yield env.timeout(cfg.tx_stack_ns + cfg.copy_ns(size))
        env.process(self._deliver(src, dst, size, payload))

    def _deliver(self, src: TcpEndpoint, dst: TcpEndpoint, size: int, payload):
        env = self.env
        cfg = self.config
        link_bps = self.fabric.model.bandwidth_bytes_per_sec
        yield from self.fabric.transfer(src.host, dst.host, size)
        yield env.timeout(cfg.stream_extra_ns(size, link_bps))
        # RX: interrupt, protocol processing, copy to user space.
        yield env.timeout(cfg.rx_stack_ns + cfg.copy_ns(size))
        yield dst.inbox.put((size, payload))
