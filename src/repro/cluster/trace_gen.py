"""Synthetic Piz Daint-style workload generation.

The paper measured the real machine over one week (31.03-7.04.2021) by
querying SLURM once a minute; we have no access to that trace, so this
generator produces a statistically similar job mix:

* Poisson arrivals tuned so offered load slightly exceeds capacity
  (competitive batch systems run with a standing queue),
* power-law-ish job widths (many small jobs, rare very wide ones --
  the wide jobs cause the drain periods that create idle windows),
* log-normal walltimes from minutes to hours,
* per-node memory footprints averaging ~25 % of node memory (Panwar et
  al. report three-quarters of HPC node memory unused).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.slurm import BatchJob
from repro.sim.clock import GiB, secs
from repro.sim.rng import RngStreams


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the synthetic trace."""

    total_nodes: int = 1_000
    node_memory_bytes: int = 377 * GiB
    duration_ns: int = secs(7 * 24 * 3600)  # one week
    #: Mean offered load as a fraction of capacity (>1 keeps a backlog).
    offered_load: float = 1.05
    #: Job width distribution: P(width = 2^k) ~ width_decay^k.
    max_width_log2: int = 8
    width_decay: float = 0.62
    #: Log-normal walltime parameters (log of seconds).
    walltime_log_mean: float = 7.8  # median ~ 2443 s ~ 40 min
    walltime_log_sigma: float = 1.1
    min_walltime_s: float = 120.0
    max_walltime_s: float = 24 * 3600.0
    #: Beta distribution of per-node memory fraction, mean ~ a/(a+b).
    memory_beta_a: float = 1.2
    memory_beta_b: float = 3.6  # mean 0.25 -> ~75% of memory idle
    seed: int = 2021


class PizDaintWorkload:
    """Draws a reproducible job list for :class:`BatchScheduler`."""

    def __init__(self, config: WorkloadConfig | None = None) -> None:
        self.config = config or WorkloadConfig()
        self._rng = RngStreams(self.config.seed)

    def _draw_width(self, rng: np.random.Generator) -> int:
        weights = np.array(
            [self.config.width_decay**k for k in range(self.config.max_width_log2 + 1)]
        )
        weights /= weights.sum()
        k = rng.choice(len(weights), p=weights)
        return min(2**k, self.config.total_nodes)

    def _draw_walltime_s(self, rng: np.random.Generator) -> float:
        value = rng.lognormal(self.config.walltime_log_mean, self.config.walltime_log_sigma)
        return float(np.clip(value, self.config.min_walltime_s, self.config.max_walltime_s))

    def generate(self) -> list[BatchJob]:
        """The full job list for the configured duration."""
        cfg = self.config
        rng = self._rng.stream("jobs")

        # Calibrate the arrival rate so that E[width * walltime] * rate
        # equals offered_load * capacity.
        mean_width = sum(
            min(2**k, cfg.total_nodes) * cfg.width_decay**k
            for k in range(cfg.max_width_log2 + 1)
        ) / sum(cfg.width_decay**k for k in range(cfg.max_width_log2 + 1))
        mean_walltime_s = float(
            np.clip(
                np.exp(cfg.walltime_log_mean + cfg.walltime_log_sigma**2 / 2),
                cfg.min_walltime_s,
                cfg.max_walltime_s,
            )
        )
        node_seconds = cfg.total_nodes * cfg.duration_ns / 1e9
        jobs_needed = cfg.offered_load * node_seconds / (mean_width * mean_walltime_s)
        arrival_rate_per_s = jobs_needed / (cfg.duration_ns / 1e9)

        jobs: list[BatchJob] = []
        t_s = 0.0
        while True:
            t_s += rng.exponential(1.0 / arrival_rate_per_s)
            arrival_ns = secs(t_s)
            if arrival_ns >= cfg.duration_ns:
                break
            width = self._draw_width(rng)
            walltime = self._draw_walltime_s(rng)
            mem_fraction = rng.beta(cfg.memory_beta_a, cfg.memory_beta_b)
            jobs.append(
                BatchJob(
                    arrival_ns=arrival_ns,
                    nodes=width,
                    walltime_ns=secs(walltime),
                    memory_per_node=int(mem_fraction * cfg.node_memory_bytes),
                )
            )
        return jobs
