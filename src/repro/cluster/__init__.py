"""Data-center substrate: nodes, a SLURM-like batch system, utilization.

This package backs two parts of the paper:

* Fig. 2's motivation -- a synthetic Piz Daint-style workload is run
  through the batch simulator and sampled at one-minute intervals,
  reproducing the two observations rFaaS is built on: node utilization
  in the 80-94 % band with only *short* idle windows, and ~75 % of node
  memory idle.
* The compute substrate for rFaaS itself -- spot executors pin worker
  threads to :class:`Node` cores and draw from node memory.
"""

from repro.cluster.node import Node, NodeSpec
from repro.cluster.slurm import BatchJob, BatchScheduler
from repro.cluster.trace_gen import PizDaintWorkload, WorkloadConfig
from repro.cluster.utilization import UtilizationSample, UtilizationSampler, idle_windows

__all__ = [
    "BatchJob",
    "BatchScheduler",
    "Node",
    "NodeSpec",
    "PizDaintWorkload",
    "UtilizationSample",
    "UtilizationSampler",
    "WorkloadConfig",
    "idle_windows",
]
