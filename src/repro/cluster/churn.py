"""Spot-executor churn streams for the control-plane scale engine.

rFaaS executors are *spot* resources (Sec. III-A): nodes borrowed from
a batch system can be reclaimed at any moment, taking every lease they
host with them.  This module draws the deterministic churn calendar the
control scenario (:mod:`repro.experiments.control`) replays against
both its drivers: death instants, victim indices, and the matching
revival instants.

Times are quantized onto the scenario's residue grid (see
``repro.experiments.control`` for the full scheme): all death times are
``== death_residue (mod quantum)`` and strictly increasing, so a death
can never share a timestamp with any other event class and the two
drivers never face an ordering ambiguity the fingerprint could see.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ChurnStream:
    """One deterministic churn calendar."""

    #: Strictly increasing death instants (ns), all on the death residue.
    death_times_ns: np.ndarray
    #: Victim executor index per death (a draw, not a guarantee: a draw
    #: that lands on an already-dead node is a no-op the drivers count).
    victims: np.ndarray
    #: Constant dead time before the node returns at full capacity.
    downtime_ns: int

    def __len__(self) -> int:
        return int(self.death_times_ns.size)


def churn_stream(
    rng: np.random.Generator,
    deaths: int,
    executors: int,
    horizon_ns: int,
    downtime_ns: int,
    quantum: int = 16,
    death_residue: int = 4,
) -> ChurnStream:
    """Draw *deaths* node failures uniformly over ``(0, horizon_ns)``.

    Death times are sorted, snapped to ``death_residue (mod quantum)``,
    and made strictly increasing with a minimum gap of one quantum (the
    ``maximum.accumulate`` shift trick keeps the residue intact), so
    ordering between deaths is total and residue collisions with other
    event classes are impossible by construction.
    """
    if deaths < 0:
        raise ValueError(f"deaths must be >= 0, got {deaths}")
    if executors < 1:
        raise ValueError(f"executors must be >= 1, got {executors}")
    if not 0 <= death_residue < quantum:
        raise ValueError(f"death_residue {death_residue} outside [0, {quantum})")
    if deaths == 0:
        empty = np.empty(0, dtype=np.int64)
        return ChurnStream(empty, empty.copy(), int(downtime_ns))
    raw = np.sort(rng.uniform(float(quantum), float(horizon_ns), size=deaths))
    times = (raw.astype(np.int64) // quantum) * quantum + death_residue
    # Strictly increasing with gap >= quantum, residue preserved.
    ramp = quantum * np.arange(deaths, dtype=np.int64)
    times = np.maximum.accumulate(times - ramp) + ramp
    victims = rng.integers(0, executors, size=deaths, dtype=np.int64)
    return ChurnStream(times, victims, int(downtime_ns))
