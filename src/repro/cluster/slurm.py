"""A SLURM-like whole-node batch scheduler.

FCFS with first-fit backfill: the head of the queue reserves capacity,
and smaller jobs may start out of order only if they fit in the nodes
the head job is not waiting for.  Whole-node allocation matches how
Piz Daint schedules (and is what creates the drain-induced idle windows
Fig. 2 shows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment

_job_ids = count(1)


@dataclass
class BatchJob:
    """One batch job: whole nodes for a fixed walltime."""

    arrival_ns: int
    nodes: int
    walltime_ns: int
    #: Memory the job actually touches, per node (bytes).
    memory_per_node: int
    job_id: int = field(default_factory=lambda: next(_job_ids))
    started_ns: Optional[int] = None
    finished_ns: Optional[int] = None

    @property
    def wait_ns(self) -> Optional[int]:
        return None if self.started_ns is None else self.started_ns - self.arrival_ns


class BatchScheduler:
    """Schedules :class:`BatchJob` onto a pool of identical nodes."""

    def __init__(self, env: "Environment", total_nodes: int, node_memory_bytes: int) -> None:
        if total_nodes <= 0:
            raise ValueError("total_nodes must be positive")
        self.env = env
        self.total_nodes = total_nodes
        self.node_memory_bytes = node_memory_bytes
        self.free_nodes = total_nodes
        self.queue: list[BatchJob] = []
        self.running: list[BatchJob] = []
        self.completed: list[BatchJob] = []
        #: Memory in active use across all running jobs.
        self.used_memory = 0
        #: Nodes temporarily lent out (e.g. to rFaaS spot executors).
        self.borrowed_nodes = 0

    # -- metrics ---------------------------------------------------------

    @property
    def busy_nodes(self) -> int:
        """Nodes unavailable to new jobs (running work or lent out)."""
        return self.total_nodes - self.free_nodes

    @property
    def batch_busy_nodes(self) -> int:
        """Nodes running batch jobs only."""
        return self.total_nodes - self.free_nodes - self.borrowed_nodes

    @property
    def node_utilization(self) -> float:
        return self.busy_nodes / self.total_nodes

    @property
    def queued_demand(self) -> int:
        """Nodes the waiting queue wants right now."""
        return sum(job.nodes for job in self.queue)

    # -- node lending (opportunistic harvesting, Sec. II-A) ----------------

    def borrow_node(self) -> bool:
        """Lend one idle node out (fails when none is free)."""
        if self.free_nodes <= 0:
            return False
        self.free_nodes -= 1
        self.borrowed_nodes += 1
        return True

    def return_node(self) -> None:
        """A lent node comes back and is immediately schedulable."""
        if self.borrowed_nodes <= 0:
            raise ValueError("no nodes are currently borrowed")
        self.borrowed_nodes -= 1
        self.free_nodes += 1
        self._schedule()

    @property
    def memory_utilization(self) -> float:
        return self.used_memory / (self.total_nodes * self.node_memory_bytes)

    # -- workload ----------------------------------------------------------

    def submit(self, job: BatchJob) -> None:
        """Called at the job's arrival time."""
        if job.nodes <= 0 or job.nodes > self.total_nodes:
            raise ValueError(f"job {job.job_id} requests {job.nodes} nodes")
        self.queue.append(job)
        self._schedule()

    def run_trace(self, jobs: list[BatchJob]):
        """Process generator: submit *jobs* at their arrival times."""
        env = self.env
        for job in sorted(jobs, key=lambda j: j.arrival_ns):
            if job.arrival_ns > env.now:
                yield env.timeout(job.arrival_ns - env.now)
            self.submit(job)

    # -- scheduling core -----------------------------------------------------

    def _schedule(self) -> None:
        """FCFS + first-fit backfill over the current queue."""
        started: list[BatchJob] = []
        head_blocked_nodes: Optional[int] = None
        for job in self.queue:
            if head_blocked_nodes is None:
                if job.nodes <= self.free_nodes:
                    self._start(job)
                    started.append(job)
                else:
                    # Head of queue waits; remember its reservation.
                    head_blocked_nodes = job.nodes
            else:
                # Backfill: start only if it leaves the head's claim alone.
                # (Conservative: no walltime-based reservations.)
                if job.nodes <= self.free_nodes:
                    self._start(job)
                    started.append(job)
        for job in started:
            self.queue.remove(job)

    def _start(self, job: BatchJob) -> None:
        job.started_ns = self.env.now
        self.free_nodes -= job.nodes
        self.used_memory += job.nodes * min(job.memory_per_node, self.node_memory_bytes)
        self.running.append(job)
        self.env.process(self._finish_after(job), name=f"job{job.job_id}")

    def _finish_after(self, job: BatchJob):
        yield self.env.timeout(job.walltime_ns)
        job.finished_ns = self.env.now
        self.running.remove(job)
        self.completed.append(job)
        self.free_nodes += job.nodes
        self.used_memory -= job.nodes * min(job.memory_per_node, self.node_memory_bytes)
        self._schedule()
