"""Utilization sampling and idle-window analysis (Fig. 2).

The paper's measurement method: query SLURM once a minute for a week.
``UtilizationSampler`` is that query loop; :func:`idle_windows`
extracts the durations of contiguous periods during which at least
*threshold* nodes sat idle -- the windows rFaaS wants to harvest, which
Fig. 2a shows are plentiful but short.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.slurm import BatchScheduler
from repro.sim.clock import secs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment


@dataclass
class UtilizationSample:
    time_ns: int
    busy_nodes: int
    total_nodes: int
    memory_utilization: float

    @property
    def node_utilization(self) -> float:
        return self.busy_nodes / self.total_nodes

    @property
    def idle_nodes(self) -> int:
        return self.total_nodes - self.busy_nodes


class UtilizationSampler:
    """Samples a :class:`BatchScheduler` at a fixed interval."""

    def __init__(
        self,
        env: "Environment",
        scheduler: BatchScheduler,
        interval_ns: int = secs(60),
        until_ns: int | None = None,
    ) -> None:
        self.env = env
        self.scheduler = scheduler
        self.interval_ns = interval_ns
        self.until_ns = until_ns
        self.samples: list[UtilizationSample] = []
        env.process(self._loop(), name="utilization-sampler")

    def _loop(self):
        while self.until_ns is None or self.env.now < self.until_ns:
            self.samples.append(
                UtilizationSample(
                    time_ns=self.env.now,
                    busy_nodes=self.scheduler.busy_nodes,
                    total_nodes=self.scheduler.total_nodes,
                    memory_utilization=self.scheduler.memory_utilization,
                )
            )
            yield self.env.timeout(self.interval_ns)

    # -- aggregates ------------------------------------------------------

    def mean_node_utilization(self) -> float:
        return sum(s.node_utilization for s in self.samples) / len(self.samples)

    def mean_memory_utilization(self) -> float:
        return sum(s.memory_utilization for s in self.samples) / len(self.samples)

    def mean_idle_nodes(self) -> float:
        return sum(s.idle_nodes for s in self.samples) / len(self.samples)


def idle_windows(samples: list[UtilizationSample], threshold_nodes: int = 1) -> list[int]:
    """Durations (ns) of runs of samples with >= *threshold_nodes* idle.

    This is the quantity behind the paper's observation that
    "idle nodes are available for a short time": harvesting windows
    exist in almost every sample but each one is brief.
    """
    if not samples:
        return []
    windows: list[int] = []
    run_start: int | None = None
    previous_time = samples[0].time_ns
    for sample in samples:
        if sample.idle_nodes >= threshold_nodes:
            if run_start is None:
                run_start = sample.time_ns
        else:
            if run_start is not None:
                windows.append(previous_time - run_start)
                run_start = None
        previous_time = sample.time_ns
    if run_start is not None:
        windows.append(samples[-1].time_ns - run_start)
    return windows
