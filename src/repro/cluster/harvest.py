"""The harvest controller: cluster operator automation for Sec. II-A.

"Cluster operators add and remove idle resources to the manager"
(Sec. III-A) -- this controller is that operator, automated.  It polls
the batch scheduler; when nodes sit idle beyond a reserve it *borrows*
them from the batch pool and spins up spot executors registered with a
resource manager; when the batch queue builds demand it *retires*
executors (gracefully: allocations torn down, billing flushed, leases
terminated with client announcements) and returns the nodes so the
batch system can schedule them immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import TYPE_CHECKING, Optional

from repro.cluster.node import Node, NodeSpec
from repro.cluster.slurm import BatchScheduler
from repro.core.config import RFaaSConfig
from repro.core.executor import SpotExecutor
from repro.sim.clock import secs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.resource_manager import ResourceManager
    from repro.rdma.fabric import Fabric
    from repro.sim.core import Environment

_harvest_ids = count(1)


@dataclass
class HarvestStats:
    donations: int = 0
    retirements: int = 0
    #: Integrated donated capacity.
    node_ns_donated: int = 0

    def node_hours(self) -> float:
        return self.node_ns_donated / secs(3600)


@dataclass
class _Donation:
    executor: SpotExecutor
    since_ns: int


class HarvestController:
    """Keeps the donated-executor pool sized to the cluster's slack."""

    def __init__(
        self,
        scheduler: BatchScheduler,
        fabric: "Fabric",
        manager: "ResourceManager",
        config: Optional[RFaaSConfig] = None,
        node_spec: Optional[NodeSpec] = None,
        *,
        reserve_nodes: int = 2,
        max_donated: int = 8,
        poll_interval_ns: int = secs(10),
    ) -> None:
        self.scheduler = scheduler
        self.fabric = fabric
        self.manager = manager
        self.config = config or RFaaSConfig()
        self.node_spec = node_spec or NodeSpec()
        self.reserve_nodes = reserve_nodes
        self.max_donated = max_donated
        self.poll_interval_ns = poll_interval_ns
        self.env: "Environment" = fabric.env
        self.donations: list[_Donation] = []
        self.stats = HarvestStats()
        self.running = True
        self._process = self.env.process(self._loop(), name="harvest-controller")

    @property
    def donated_count(self) -> int:
        return len(self.donations)

    def stop(self) -> None:
        self.running = False

    # -- the control loop --------------------------------------------------

    def _loop(self):
        env = self.env
        while self.running:
            yield env.timeout(self.poll_interval_ns)
            # 1. Demand pressure: give nodes back while jobs wait.
            while self.donations and self.scheduler.queue:
                yield from self._retire_one()
            if not self.running:
                break
            # 2. Slack: donate idle nodes beyond the reserve.
            while (
                self.running
                and self.scheduler.free_nodes > self.reserve_nodes
                and self.donated_count < self.max_donated
            ):
                if not self._donate_one():
                    break
        # Drain on stop.
        while self.donations:
            yield from self._retire_one()

    def _donate_one(self) -> bool:
        if not self.scheduler.borrow_node():
            return False
        name = f"harvest{next(_harvest_ids)}"
        nic = self.fabric.attach(name)
        node = Node(self.env, name, self.node_spec, nic=nic)
        executor = SpotExecutor(node, self.config, name=name)
        executor.package_registry = self._shared_registry()
        self.env.process(
            executor.register_with(self.manager.nic.name, self.manager.port),
            name=f"register-{name}",
        )
        self.donations.append(_Donation(executor=executor, since_ns=self.env.now))
        self.stats.donations += 1
        return True

    def _retire_one(self):
        """Retire the most recent donation (fewest warm tenants)."""
        donation = self.donations.pop()
        yield from donation.executor.retire()
        self.scheduler.return_node()
        self.stats.retirements += 1
        self.stats.node_ns_donated += self.env.now - donation.since_ns

    def _shared_registry(self) -> dict:
        """Donated executors share the deployment-wide package registry
        (taken from any existing executor, else the manager's side)."""
        for donation in self.donations:
            return donation.executor.package_registry
        registry = getattr(self.manager, "package_registry", None)
        if registry is None:
            registry = {}
            self.manager.package_registry = registry
        return registry
