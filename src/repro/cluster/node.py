"""Compute nodes: cores, memory, and pinning.

Matches the paper's testbed: two 18-core Xeon Gold 6154 sockets
(36 cores) and 377 GB of memory per node, one RDMA NIC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sim.clock import GiB
from repro.sim.resources import Container, Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rdma.device import NIC
    from repro.sim.core import Environment


@dataclass(frozen=True)
class NodeSpec:
    """Static node description."""

    cores: int = 36
    memory_bytes: int = 377 * GiB
    #: Sustained double-precision throughput of one pinned core.  Xeon
    #: Gold 6154 @ 3.0 GHz, AVX-512 FMA: ~48 GF/s peak; we use a
    #: realistic sustained fraction for compiled kernels.
    flops_per_core: float = 20e9
    #: Memory bandwidth per core for streaming kernels (bytes/s).
    mem_bw_per_core: float = 8e9


class Node:
    """A node at runtime: claimable cores and memory.

    Cores are a counting resource (pinned threads hold one slot each);
    memory is a container measured in bytes.
    """

    def __init__(
        self,
        env: "Environment",
        name: str,
        spec: Optional[NodeSpec] = None,
        nic: Optional["NIC"] = None,
    ) -> None:
        self.env = env
        self.name = name
        self.spec = spec or NodeSpec()
        self.nic = nic
        self.cores = Resource(env, capacity=self.spec.cores)
        self.memory = Container(env, capacity=self.spec.memory_bytes, init=self.spec.memory_bytes)

    @property
    def free_cores(self) -> int:
        return self.cores.capacity - self.cores.count

    @property
    def free_memory(self) -> int:
        return self.memory.level

    @property
    def used_memory(self) -> int:
        return self.spec.memory_bytes - self.memory.level

    def try_claim(self, cores: int, memory_bytes: int) -> Optional["NodeClaim"]:
        """Atomically claim cores+memory if immediately available."""
        if cores > self.free_cores or memory_bytes > self.free_memory:
            return None
        requests = [self.cores.request() for _ in range(cores)]
        assert all(req.triggered for req in requests)
        if memory_bytes > 0:
            get = self.memory.get(memory_bytes)
            assert get.triggered
        return NodeClaim(self, requests, memory_bytes)

    def compute_time_ns(self, flops: float, cores: int = 1, efficiency: float = 1.0) -> int:
        """Virtual time for *flops* of work on *cores* pinned cores."""
        if flops <= 0:
            return 0
        rate = self.spec.flops_per_core * cores * efficiency
        return max(1, round(flops * 1e9 / rate))

    def stream_time_ns(self, nbytes: float, cores: int = 1) -> int:
        """Virtual time for a memory-bandwidth-bound sweep of *nbytes*."""
        if nbytes <= 0:
            return 0
        return max(1, round(nbytes * 1e9 / (self.spec.mem_bw_per_core * cores)))

    def __repr__(self) -> str:
        return f"<Node {self.name} free_cores={self.free_cores}>"


class NodeClaim:
    """A held allocation of cores + memory on one node."""

    def __init__(self, node: Node, core_requests: list, memory_bytes: int) -> None:
        self.node = node
        self._core_requests = core_requests
        self.memory_bytes = memory_bytes
        self.released = False

    @property
    def cores(self) -> int:
        return len(self._core_requests)

    def release(self) -> None:
        """Return everything to the node (idempotent)."""
        if self.released:
            return
        self.released = True
        for request in self._core_requests:
            self.node.cores.release(request)
        if self.memory_bytes > 0:
            self.node.memory.put(self.memory_bytes)
