"""Fig. 10: parallel scalability, 1-32 worker threads.

One client dispatches simultaneously to N workers; payloads 1 kB and
1 MB; hot/warm x bare-metal/Docker.  Expected shape: 1 kB flat in N,
1 MB growing once N x 1 MB saturates the client's 100 Gb/s link --
"rFaaS scaling is limited only by the available bandwidth".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import Table, format_bytes, format_ns
from repro.analysis.stats import median
from repro.core.deployment import Deployment
from repro.sim.clock import KB, MB
from repro.workloads.noop import noop_package

DEFAULT_WORKERS = (1, 2, 4, 8, 16, 32)
DEFAULT_SIZES = (1 * KB, 1 * MB)


@dataclass
class Fig10Result:
    workers: tuple[int, ...]
    sizes: tuple[int, ...]
    #: (mode, sandbox, size) -> {workers: median per-invocation RTT}
    series: dict[tuple[str, str, int], dict[int, float]] = field(default_factory=dict)

    def flatness(self, mode: str, sandbox: str, size: int) -> float:
        """max/min median across worker counts (1.0 = perfectly flat)."""
        values = list(self.series[(mode, sandbox, size)].values())
        return max(values) / min(values)

    def table(self) -> Table:
        table = Table(
            "Fig. 10 -- parallel executors (median invocation RTT)",
            ["series"] + [f"w={w}" for w in self.workers],
        )
        for key, by_workers in sorted(self.series.items()):
            mode, sandbox, size = key
            table.add_row(
                f"{mode}/{sandbox}/{format_bytes(size)}",
                *[format_ns(by_workers[w]) for w in self.workers],
            )
        return table


def _measure(workers: int, size: int, mode: str, sandbox: str, repetitions: int) -> float:
    dep = Deployment.build(executors=max(1, -(-workers // 36)), clients=1)
    dep.settle()
    invoker = dep.new_invoker()
    package = noop_package()
    hot_timeout = None if mode == "hot" else 0

    def driver():
        yield from invoker.allocate(
            package,
            workers=workers,
            sandbox=sandbox,
            hot_timeout_ns=hot_timeout,
            worker_buffer_bytes=2 * size + 64,
        )
        in_bufs = [invoker.alloc_input(size) for _ in range(workers)]
        out_bufs = [invoker.alloc_output(size) for _ in range(workers)]
        payload = bytes(size)
        for buf in in_bufs:
            buf.write(payload)
        rtts: list[int] = []
        for _ in range(repetitions):
            futures = [
                invoker.submit("echo", in_bufs[i], size, out_bufs[i], worker=i)
                for i in range(workers)
            ]
            for future in futures:
                result = yield future.wait()
                rtts.append(result.rtt_ns)
        return rtts

    return median(dep.run(driver()))


def run_fig10(
    workers: tuple[int, ...] = DEFAULT_WORKERS,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    repetitions: int = 5,
    modes: tuple[str, ...] = ("hot", "warm"),
    sandboxes: tuple[str, ...] = ("bare-metal", "docker"),
) -> Fig10Result:
    result = Fig10Result(workers=tuple(workers), sizes=tuple(sizes))
    for mode in modes:
        for sandbox in sandboxes:
            for size in sizes:
                series: dict[int, float] = {}
                for n in workers:
                    series[n] = _measure(n, size, mode, sandbox, repetitions)
                result.series[(mode, sandbox, size)] = series
    return result
