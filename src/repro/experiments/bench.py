"""Wall-clock benchmarks of the simulator's own three hot loops.

This is the bench *trajectory*: each PR that touches a hot path appends
its numbers to a committed JSON (``BENCH_PR1.json`` seeded the file), so
regressions in the simulator's wall-clock cost are visible in review,
not just in pytest-benchmark runs that nobody diffs.

The three loops mirror ``benchmarks/test_simulator_performance.py``
exactly -- the DES kernel, the verbs data path, and a full rFaaS
invocation -- plus the opt-in :mod:`repro.perf` counters (allocations
avoided, bytes copied vs. referenced) that wall-clock numbers alone
cannot show.

Usage::

    python -m repro.experiments bench --json BENCH_PR1.json --label pr1

Merging semantics: ``--json`` loads the file if it exists and replaces
only the ``--label`` entry, so a baseline recorded by an older checkout
survives re-runs on the optimized one.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path
from typing import Any, Callable, Optional

from repro import perf


def _timed(fn: Callable[[], Any], repeats: int) -> tuple[list[float], Any]:
    """Run *fn* *repeats* times; return per-run wall seconds + last result."""
    runs: list[float] = []
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        runs.append(time.perf_counter() - t0)
    return runs, result


def _stats(runs: list[float]) -> dict[str, Any]:
    return {
        "median_s": statistics.median(runs),
        "min_s": min(runs),
        "runs_s": runs,
    }


def bench_kernel(repeats: int) -> dict[str, Any]:
    """Pure event-loop throughput: ping-pong timeouts (5000 events)."""
    from repro.sim import Environment

    def run():
        env = Environment()

        def ticker():
            for _ in range(5_000):
                yield env.timeout(10)

        env.process(ticker())
        env.run()
        return env

    runs, env = _timed(run, repeats)
    out = _stats(runs)
    out["events_processed"] = env.events_processed
    out["events_per_sec"] = round(env.events_processed / out["median_s"])
    pool_hits = getattr(env, "timeout_pool_hits", 0)
    out["timeout_pool_hits"] = pool_hits
    if perf.enabled:
        perf.counters.alloc_avoided += pool_hits
    return out


def bench_pingpong(repeats: int) -> dict[str, Any]:
    """Full verbs data path: 100 WRITE_WITH_IMM ping-pongs of 64 B."""
    from repro.rdma.microbench import ib_write_lat

    runs, result = _timed(lambda: ib_write_lat(64, iterations=100), repeats)
    out = _stats(runs)
    out["iterations"] = len(result.rtts_ns)
    out["median_rtt_ns"] = statistics.median(result.rtts_ns)
    return out


def bench_invocation(repeats: int) -> dict[str, Any]:
    """End-to-end rFaaS invocations incl. control-plane setup (50 calls)."""
    from repro.core.deployment import Deployment
    from repro.workloads.noop import noop_package

    def run():
        dep = Deployment.build(executors=1, clients=1)
        dep.settle()
        invoker = dep.new_invoker()
        package = noop_package()

        def driver():
            yield from invoker.allocate(package, workers=1)
            in_buf = invoker.alloc_input(1024)
            in_buf.write(bytes(1024))
            out_buf = invoker.alloc_output(1024)
            for _ in range(50):
                future = invoker.submit("echo", in_buf, 1024, out_buf)
                yield future.wait()
            return 50

        dep.run(driver())
        return dep

    runs, dep = _timed(run, repeats)
    out = _stats(runs)
    out["invocations"] = 50
    out["events_processed"] = dep.env.events_processed
    out["final_now_ns"] = dep.env.now
    return out


def run_bench(quick: bool = False) -> dict[str, Any]:
    """Run all three hot-loop benchmarks; returns a JSON-ready dict."""
    repeats = 3 if quick else 9
    perf.reset()
    perf.enable()
    try:
        results = {
            "kernel_event_throughput": bench_kernel(repeats),
            "rdma_pingpong": bench_pingpong(max(3, repeats - 2)),
            "invocation": bench_invocation(max(3, repeats - 4)),
        }
    finally:
        perf.disable()
    results["perf_counters"] = perf.snapshot()
    return results


def write_bench(path: str, results: dict[str, Any], label: Optional[str] = None) -> str:
    """Merge *results* under *label* into the bench-trajectory file."""
    target = Path(path)
    doc: dict[str, Any] = {"schema": "rfaas-repro-bench-v1", "entries": {}}
    if target.exists():
        try:
            existing = json.loads(target.read_text())
            if isinstance(existing, dict) and "entries" in existing:
                doc = existing
        except (OSError, json.JSONDecodeError):
            pass
    doc["entries"][label or "run"] = results
    target.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return str(target)


def show(results: dict[str, Any]) -> None:
    for name in ("kernel_event_throughput", "rdma_pingpong", "invocation"):
        r = results[name]
        line = f"{name:<28} median {r['median_s'] * 1e3:8.3f} ms  (min {r['min_s'] * 1e3:.3f})"
        if "events_per_sec" in r:
            line += f"  {r['events_per_sec']:,} events/s"
        print(line)
    counters = results.get("perf_counters", {})
    if counters:
        print(
            "perf: alloc_avoided={alloc_avoided:,} bytes_copied={bytes_copied:,} "
            "bytes_referenced={bytes_referenced:,}".format(**counters)
        )
