"""Wall-clock benchmarks of the simulator's own three hot loops.

This is the bench *trajectory*: each PR that touches a hot path appends
its numbers to a committed JSON (``BENCH_PR1.json`` seeded the file), so
regressions in the simulator's wall-clock cost are visible in review,
not just in pytest-benchmark runs that nobody diffs.

The three loops mirror ``benchmarks/test_simulator_performance.py``
exactly -- the DES kernel, the verbs data path, and a full rFaaS
invocation -- plus the opt-in :mod:`repro.perf` counters (allocations
avoided, bytes copied vs. referenced) that wall-clock numbers alone
cannot show.

Usage::

    python -m repro.experiments bench --json BENCH_PR1.json --label pr1
    python -m repro.experiments bench --quick --parallel 4

``--parallel N`` runs the repetitions of each loop concurrently via
:mod:`repro.parallel`.  Every repetition times *itself* inside its own
process, so the per-run wall-clock numbers (and their medians) remain
comparable with serial entries; only the batch finishes sooner.  It
also times a multi-experiment quick batch serial-vs-parallel
(``parallel_batch``) -- the headline fan-out speedup for
``python -m repro.experiments all``.

Merging semantics: ``--json`` loads the file if it exists and replaces
only the ``--label`` entry, so a baseline recorded by an older checkout
survives re-runs on the optimized one.
"""

from __future__ import annotations

import json
import resource
import statistics
import time
from pathlib import Path
from typing import Any, Optional

from repro import perf
from repro.parallel import FailedPoint, RunSpec, available_workers, resolve_workers, run_specs


def _rss_self() -> int:
    """Lifetime peak RSS of this process in bytes (Linux reports KiB).

    Inside a fanned-out repetition this is the forked worker's own
    peak; in a serial run it is the whole bench process, so serial
    numbers are an upper bound rather than per-loop attribution.
    """
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _rss_tree() -> int:
    """Peak RSS across this process and all reaped children, bytes."""
    children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss * 1024
    return max(_rss_self(), children)

#: The multi-experiment batch timed serial-vs-parallel (quick kwargs).
#: Deliberately the *heavier* quick experiments, so worker startup and
#: result pickling are amortized and the speedup reflects the engine.
BATCH_EXPERIMENTS = (
    "fig10",
    "fig11",
    "fig13",
    "suite",
    "fig8",
    "concurrency",
    "multitenant",
    "billing",
)


def _kernel_once() -> dict[str, Any]:
    """One self-timed run of the pure event loop (5000 ping-pong timeouts)."""
    from repro.sim import Environment

    t0 = time.perf_counter()
    env = Environment()

    def ticker():
        for _ in range(5_000):
            yield env.timeout(10)

    env.process(ticker())
    env.run()
    wall_s = time.perf_counter() - t0
    pool_hits = getattr(env, "timeout_pool_hits", 0)
    if perf.enabled:
        perf.counters.alloc_avoided += pool_hits
    return {
        "wall_s": wall_s,
        "events_processed": env.events_processed,
        "timeout_pool_hits": pool_hits,
        "peak_rss_bytes": _rss_self(),
    }


def _pingpong_once() -> dict[str, Any]:
    """One self-timed run of 100 WRITE_WITH_IMM ping-pongs of 64 B."""
    from repro.rdma.fabric import Fabric
    from repro.rdma.microbench import ib_write_lat
    from repro.sim import Environment

    t0 = time.perf_counter()
    env = Environment()
    result = ib_write_lat(64, iterations=100, fabric=Fabric(env))
    return {
        "wall_s": time.perf_counter() - t0,
        "iterations": len(result.rtts_ns),
        "median_rtt_ns": statistics.median(result.rtts_ns),
        "events_processed": env.events_processed,
        "peak_rss_bytes": _rss_self(),
    }


def _invocation_once() -> dict[str, Any]:
    """One self-timed end-to-end run: 50 rFaaS invocations incl. setup."""
    from repro.core.deployment import Deployment
    from repro.workloads.noop import noop_package

    t0 = time.perf_counter()
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    invoker = dep.new_invoker()
    package = noop_package()

    def driver():
        yield from invoker.allocate(package, workers=1)
        in_buf = invoker.alloc_input(1024)
        in_buf.write(bytes(1024))
        out_buf = invoker.alloc_output(1024)
        for _ in range(50):
            future = invoker.submit("echo", in_buf, 1024, out_buf)
            yield future.wait()
        return 50

    dep.run(driver())
    return {
        "wall_s": time.perf_counter() - t0,
        "invocations": 50,
        "events_processed": dep.env.events_processed,
        "final_now_ns": dep.env.now,
        "peak_rss_bytes": _rss_self(),
    }


def _scale_once(
    scheduler: str,
    quick: bool = False,
    admission: str = "batch",
    granularity_bits: Any = "auto",
    lease_lane: str = "on",
    overrides: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """One open-loop scale run (see :mod:`repro.experiments.scale`).

    Module-level so ``run_specs`` can ship it to a forked worker: each
    scheduler runs in a fresh process, which is what makes the
    ``peak_rss_bytes`` numbers attributable to that scheduler instead
    of to whatever ran earlier in the bench process.  *overrides*
    merges extra ``run_scale`` kwargs (the 10^7 stress scenario).
    """
    from repro.experiments.scale import QUICK_KWARGS, run_scale

    kwargs = dict(QUICK_KWARGS) if quick else {}
    if overrides:
        kwargs.update(overrides)
    result = run_scale(
        scheduler=scheduler,
        admission=admission,
        granularity_bits=granularity_bits,
        lease_lane=lease_lane,
        **kwargs,
    )
    return {
        "wall_s": result.wall_s,
        "invocations": result.invocations,
        "workers": result.workers,
        "events_processed": result.events_processed,
        "events_per_sec": round(result.events_per_sec),
        "peak_rss_bytes": result.peak_rss_bytes,
        "stream_buckets": result.stream_buckets,
        "occupancy": result.occupancy,
        "admission": admission,
        "granularity_bits": granularity_bits,
        "lease_lane": lease_lane,
        "fingerprint": result.fingerprint(),
    }


def _control_once(driver: str, quick: bool = False, overrides: Optional[dict[str, Any]] = None) -> dict[str, Any]:
    """One control-plane run (see :mod:`repro.experiments.control`).

    Module-level so ``run_specs`` can fork it: each driver runs in a
    fresh process, making ``peak_rss_bytes`` attributable to that
    driver.  The manager gauges (grants, renewals, steals, dead nodes,
    peak active leases) ride along via :mod:`repro.perf` so every
    control BENCH entry records them.
    """
    from repro.experiments.control import QUICK_KWARGS, run_control

    kwargs: dict[str, Any] = {}
    if quick:
        kwargs.update(QUICK_KWARGS)
        kwargs.pop("verify", None)  # bit-identity is asserted by the bench itself
    if overrides:
        kwargs.update(overrides)
    perf.reset()
    perf.enable()
    try:
        result = run_control(driver=driver, **kwargs)
    finally:
        perf.disable()
    counters = perf.snapshot()
    return {
        "wall_s": result.wall_s,
        "executors": result.executors,
        "requests": result.requests,
        "lease_events": result.lease_events,
        "lease_events_per_sec": round(result.lease_events_per_sec),
        "grants_per_sec": round(result.grants_per_sec),
        "events_processed": result.events_processed,
        "peak_rss_bytes": result.peak_rss_bytes,
        "gauges": {
            "leases_active_peak": counters["leases_active_peak"],
            "grants": counters["lease_grants"],
            "renewals": counters["lease_renewals"],
            "steals": counters["lease_steals"],
            "dead_nodes": counters["dead_nodes"],
        },
        "fingerprint": result.fingerprint(),
    }


def bench_control(
    quick: bool = False, overrides: Optional[dict[str, Any]] = None
) -> dict[str, Any]:
    """Both control-plane drivers on the same calendar, forked apart.

    The per-event ResourceManager replay is the referee; the
    struct-of-arrays kernel is the engine under test.  Fingerprints
    must agree (``bit_identical``, churn included unless overridden
    off); the headline is ``speedup`` (reference wall / kernel wall)
    and ``grants_per_sec``, with ``rss_ok`` guarding that the kernel's
    footprint stays at or below the referee's.
    """
    runs: dict[str, dict[str, Any]] = {}
    for driver in ("reference", "kernel"):
        spec = RunSpec(
            factory="repro.experiments.bench:_control_once",
            kwargs={"driver": driver, "quick": quick, "overrides": dict(overrides or {})},
            label=f"control[{driver}]",
        )
        (outcome,) = run_specs([spec], 2)
        if isinstance(outcome, FailedPoint):
            raise RuntimeError(f"control bench failed: {outcome.summary()}")
        runs[driver] = outcome
    reference, kernel = runs["reference"], runs["kernel"]
    return {
        "reference": reference,
        "kernel": kernel,
        "executors": kernel["executors"],
        "requests": kernel["requests"],
        "lease_events": kernel["lease_events"],
        "lease_events_per_sec": kernel["lease_events_per_sec"],
        "grants_per_sec": kernel["grants_per_sec"],
        "peak_rss_bytes": max(r["peak_rss_bytes"] for r in runs.values()),
        "gauges": kernel["gauges"],
        "speedup": (
            reference["wall_s"] / kernel["wall_s"] if kernel["wall_s"] else 0.0
        ),
        "rss_ok": kernel["peak_rss_bytes"] <= reference["peak_rss_bytes"],
        "bit_identical": reference["fingerprint"] == kernel["fingerprint"],
    }


def _occupancy_gauges(occupancy: dict[str, Any]) -> dict[str, int]:
    """The occupancy facts every scale BENCH entry must record."""
    return {
        "wheel_entries": int(occupancy.get("wheel", 0)),
        "heap_entries": int(occupancy.get("heap", 0)),
        "reanchors": int(occupancy.get("reanchors", 0)),
        "lane_entries_peak": int(occupancy.get("lane_entries_peak", 0)),
        "lane_slabs": int(occupancy.get("lane_slabs", 0)),
        "lane_max_slab": int(occupancy.get("lane_max_slab", 0)),
        "lane_rearm_batches": int(occupancy.get("lane_rearm_batches", 0)),
        "lane_scalar_fires": int(occupancy.get("lane_scalar_fires", 0)),
    }


def _repeated(factory: str, repeats: int, parallel: int) -> list[dict[str, Any]]:
    """Run a self-timed benchmark function *repeats* times, maybe fanned out."""
    specs = [
        RunSpec(factory=f"repro.experiments.bench:{factory}", index=i, label=f"{factory}[{i}]")
        for i in range(repeats)
    ]
    outcomes = run_specs(specs, parallel)
    failed = [o for o in outcomes if isinstance(o, FailedPoint)]
    if failed:
        raise RuntimeError(f"benchmark repetition failed: {failed[0].summary()}")
    return outcomes


def _stats(reps: list[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate self-timed repetitions.

    Every entry carries ``events_per_sec`` (from its event count and
    median wall clock) and ``peak_rss_bytes`` (max across repetitions)
    so the trajectory file tracks memory alongside throughput.
    """
    runs = [r["wall_s"] for r in reps]
    out: dict[str, Any] = {
        "median_s": statistics.median(runs),
        "min_s": min(runs),
        "runs_s": runs,
        "peak_rss_bytes": max(r["peak_rss_bytes"] for r in reps),
    }
    if "events_processed" in reps[-1]:
        out["events_processed"] = reps[-1]["events_processed"]
        out["events_per_sec"] = round(out["events_processed"] / out["median_s"])
    return out


def bench_kernel(repeats: int, parallel: int = 1) -> dict[str, Any]:
    """Pure event-loop throughput: ping-pong timeouts (5000 events)."""
    reps = _repeated("_kernel_once", repeats, parallel)
    out = _stats(reps)
    out["timeout_pool_hits"] = reps[-1]["timeout_pool_hits"]
    return out


def bench_pingpong(repeats: int, parallel: int = 1) -> dict[str, Any]:
    """Full verbs data path: 100 WRITE_WITH_IMM ping-pongs of 64 B."""
    reps = _repeated("_pingpong_once", repeats, parallel)
    out = _stats(reps)
    out["iterations"] = reps[-1]["iterations"]
    out["median_rtt_ns"] = reps[-1]["median_rtt_ns"]
    return out


def bench_invocation(repeats: int, parallel: int = 1) -> dict[str, Any]:
    """End-to-end rFaaS invocations incl. control-plane setup (50 calls)."""
    reps = _repeated("_invocation_once", repeats, parallel)
    out = _stats(reps)
    out["invocations"] = reps[-1]["invocations"]
    out["final_now_ns"] = reps[-1]["final_now_ns"]
    return out


#: The three scale engines every scale bench compares: the per-event
#: heap referee (PR 4/5), the PR 6 batch kernel with leases as wheel
#: events, and the lease-lane kernel (leases as struct-of-arrays slabs).
_SCALE_CONFIGS = (
    ("heap", "heap", "per-event", "off"),
    ("wheel_nolane", "wheel", "batch", "off"),
    ("wheel", "wheel", "batch", "on"),
)


def _scale_three_way(
    label: str, quick: bool = False, overrides: Optional[dict[str, Any]] = None
) -> dict[str, dict[str, Any]]:
    """Run the heap referee, lane-off and lane-on engines, each in its
    own forked process (peak RSS is a process-lifetime high-water mark,
    so sharing a process would let one run's footprint mask another's).
    """
    runs: dict[str, dict[str, Any]] = {}
    for key, scheduler, admission, lane in _SCALE_CONFIGS:
        kwargs: dict[str, Any] = {
            "scheduler": scheduler,
            "quick": quick,
            "admission": admission,
            "lease_lane": lane,
        }
        if overrides:
            kwargs["overrides"] = dict(overrides)
        spec = RunSpec(
            factory="repro.experiments.bench:_scale_once",
            kwargs=kwargs,
            label=f"{label}[{key}]",
        )
        (outcome,) = run_specs([spec], 2)
        if isinstance(outcome, FailedPoint):
            raise RuntimeError(f"{label} bench failed: {outcome.summary()}")
        runs[key] = outcome
    return runs


def bench_scale(quick: bool = False) -> dict[str, Any]:
    """Three engines on the open-loop scale scenario (the tentpole bench).

    The heap side runs the PR 4/5 engine verbatim (per-event
    ``timeout()`` admission); ``wheel_nolane`` is the PR 6 engine
    (vectorized batch admission, leases as wheel events); ``wheel`` is
    the PR 7 lease-lane engine.  The simulated outputs must be
    bit-identical across all three (``bit_identical``); the headline
    ``speedup`` is heap wall clock / lane-on wall clock, and
    ``lane_speedup`` isolates the lane itself (lane-off / lane-on).
    ``rss_ratio_vs_nolane`` guards the acceptance bound that the lane
    must not buy speed with footprint.
    """
    runs = _scale_three_way("scale", quick=quick)
    heap, nolane, wheel = runs["heap"], runs["wheel_nolane"], runs["wheel"]
    record = {
        "heap": heap,
        "wheel_nolane": nolane,
        "wheel": wheel,
        "invocations": wheel["invocations"],
        "events_processed": wheel["events_processed"],
        "events_per_sec": wheel["events_per_sec"],
        "peak_rss_bytes": max(r["peak_rss_bytes"] for r in runs.values()),
        "speedup": heap["wall_s"] / wheel["wall_s"] if wheel["wall_s"] else 0.0,
        "lane_speedup": nolane["wall_s"] / wheel["wall_s"] if wheel["wall_s"] else 0.0,
        "rss_ratio_vs_nolane": (
            wheel["peak_rss_bytes"] / nolane["peak_rss_bytes"]
            if nolane["peak_rss_bytes"]
            else 0.0
        ),
        "bit_identical": (
            heap["fingerprint"] == wheel["fingerprint"]
            and nolane["fingerprint"] == wheel["fingerprint"]
        ),
    }
    record.update(_occupancy_gauges(wheel["occupancy"]))
    return record


#: The policies the coldstart bench compares on one saturated scenario.
#: "queue" proves the default path stayed byte-identical with the cold
#: machinery compiled in; "cold" and "hybrid" exercise the dry-pool
#: spin-up path (and, with keepalive on, the idle-reclaim path).
_COLD_POLICIES = ("queue", "cold", "hybrid")

#: Shared cold scenario knobs: the MITOSIS-style remote-fork start
#: model (~1 ms spawn), idle-reclaim off -- the commuting regime where
#: the cold lane runs its whole-backlog slab kernel (the headline
#: speedup).  The reclaim path is covered by a secondary record at a
#: short keepalive (see ``bench_coldstart``).
_COLD_SCENARIO = {
    "start_model": "remote-fork",
    "keepalive_ns": 0,
    "hybrid_threshold": 64,
}

#: Secondary scenario: a short keepalive so reclaim expiries both
#: succeed and lose races -- exercises the strict-interleave kernel.
_COLD_RECLAIM_KEEPALIVE_NS = 5_000_000


def bench_coldstart(
    quick: bool = False,
    overrides: Optional[dict[str, Any]] = None,
    spectrum: bool = True,
) -> dict[str, Any]:
    """The cold-start engine: three engines x three pool policies.

    Per policy this is the same forked three-way as :func:`bench_scale`
    (per-event heap referee, batch lane-off, cold-lane wheel) with the
    dry-pool cold-start path enabled; fingerprints must agree across
    all nine runs (``bit_identical``).  The headline ``speedup`` is the
    heap referee over the cold-lane wheel *under the cold policy* --
    the engine the tentpole adds -- and ``rss_ratio_vs_heap`` guards
    that the cold lane does not buy speed with footprint.

    ``spectrum`` additionally folds in the :mod:`coldstart` experiment
    sweep (pool size x start model x arrival shape) so the trajectory
    file records cold fraction, p99 sojourn and executor-seconds per
    spectrum point, not just engine wall clocks.

    The headline scenario runs with keepalive 0 (the commuting slab
    kernel); a secondary ``reclaim`` record re-runs the cold policy at
    a short keepalive to cover the strict-interleave kernel -- its
    guard is bit-identity plus live reclaim traffic, not the 3x bound
    (reclaims force scalar interleaving by construction).
    """
    from repro.experiments.coldstart import QUICK_KWARGS as COLD_QUICK
    from repro.experiments.coldstart import executor_seconds, run_coldstart

    policies: dict[str, dict[str, Any]] = {}
    for policy in _COLD_POLICIES:
        scenario = dict(_COLD_SCENARIO)
        scenario["pool_policy"] = policy
        if not quick:
            # The paper-scale default pool (2^20 slots) exceeds the
            # 10^6 total arrivals, so it can never run dry; the cold
            # bench needs a pool that saturates (the mid spectrum
            # point), or all nine runs measure the queue path.
            scenario["workers"] = 1 << 14
        if overrides:
            scenario.update(overrides)
        runs = _scale_three_way(f"coldstart[{policy}]", quick=quick, overrides=scenario)
        heap, nolane, wheel = runs["heap"], runs["wheel_nolane"], runs["wheel"]
        fp = wheel["fingerprint"]
        policies[policy] = {
            "heap": heap,
            "wheel_nolane": nolane,
            "wheel": wheel,
            "speedup": heap["wall_s"] / wheel["wall_s"] if wheel["wall_s"] else 0.0,
            "lane_speedup": (
                nolane["wall_s"] / wheel["wall_s"] if wheel["wall_s"] else 0.0
            ),
            "rss_ratio_vs_heap": (
                wheel["peak_rss_bytes"] / heap["peak_rss_bytes"]
                if heap["peak_rss_bytes"]
                else 0.0
            ),
            "bit_identical": (
                heap["fingerprint"] == wheel["fingerprint"]
                and nolane["fingerprint"] == wheel["fingerprint"]
            ),
            "cold_starts": fp["cold_starts"],
            "cold_fraction": fp["cold_starts"] / max(1, fp["completed"]),
            "cold_reclaimed": fp["cold_reclaimed"],
            "cold_retained": fp["cold_retained"],
            "p99_ns": fp["latency_p99_ns"],
            "executor_seconds": executor_seconds(
                wheel["workers"],
                fp["final_now_ns"],
                fp["cold_busy_ns"],
                fp["cold_reclaimed"],
                scenario["keepalive_ns"],
            ),
        }
    cold = policies["cold"]
    record: dict[str, Any] = {
        "policies": policies,
        "start_model": _COLD_SCENARIO["start_model"],
        "keepalive_ns": _COLD_SCENARIO["keepalive_ns"],
        "invocations": cold["wheel"]["invocations"],
        "speedup": cold["speedup"],
        "lane_speedup": cold["lane_speedup"],
        "rss_ratio_vs_heap": cold["rss_ratio_vs_heap"],
        "cold_fraction": cold["cold_fraction"],
        "p99_ns": cold["p99_ns"],
        "executor_seconds": cold["executor_seconds"],
        "bit_identical": all(p["bit_identical"] for p in policies.values()),
        "peak_rss_bytes": max(
            r["peak_rss_bytes"]
            for p in policies.values()
            for r in (p["heap"], p["wheel_nolane"], p["wheel"])
        ),
    }
    occupancy = cold["wheel"]["occupancy"]
    record.update(
        {
            "cold_entries_peak": int(occupancy.get("cold_entries_peak", 0)),
            "cold_slabs": int(occupancy.get("cold_slabs", 0)),
            "cold_max_slab": int(occupancy.get("cold_max_slab", 0)),
            "cold_scalar_fires": int(occupancy.get("cold_scalar_fires", 0)),
            "cold_spinups": int(occupancy.get("cold_spinups", 0)),
            "cold_reclaim_fires": int(occupancy.get("cold_reclaim_fires", 0)),
        }
    )
    # Secondary record: idle-reclaim on (strict-interleave kernel).
    reclaim_scenario = dict(_COLD_SCENARIO)
    reclaim_scenario["pool_policy"] = "cold"
    reclaim_scenario["keepalive_ns"] = _COLD_RECLAIM_KEEPALIVE_NS
    if not quick:
        reclaim_scenario["workers"] = 1 << 14
    if overrides:
        reclaim_scenario.update(overrides)
        reclaim_scenario["keepalive_ns"] = _COLD_RECLAIM_KEEPALIVE_NS
    reruns = _scale_three_way(
        "coldstart[reclaim]", quick=quick, overrides=reclaim_scenario
    )
    rheap, rwheel = reruns["heap"], reruns["wheel"]
    rfp = rwheel["fingerprint"]
    record["reclaim"] = {
        "keepalive_ns": _COLD_RECLAIM_KEEPALIVE_NS,
        "speedup": rheap["wall_s"] / rwheel["wall_s"] if rwheel["wall_s"] else 0.0,
        "bit_identical": (
            rheap["fingerprint"] == rfp
            and reruns["wheel_nolane"]["fingerprint"] == rfp
        ),
        "cold_starts": rfp["cold_starts"],
        "cold_reclaimed": rfp["cold_reclaimed"],
        "cold_retained": rfp["cold_retained"],
        "wall_s": rwheel["wall_s"],
    }
    if spectrum:
        sweep = run_coldstart(**(dict(COLD_QUICK) if quick else {}))
        record["spectrum"] = [
            {
                "pool_size": p.pool_size,
                "start_model": p.start_model,
                "arrival_shape": p.arrival_shape,
                "cold_starts": p.cold_starts,
                "cold_fraction": p.cold_fraction,
                "p95_ns": p.p95_ns,
                "p99_ns": p.p99_ns,
                "executor_seconds": p.executor_seconds,
                "bit_identical": p.bit_identical,
            }
            for p in sweep.points
        ]
        record["spectrum_wall_s"] = sweep.wall_s
    return record


#: The 10^7-invocation cold-start stress scenario: the saturated pool
#: depth (not the unsaturated 10^7 scale stress -- a pool that never
#: runs dry exercises no cold path), so every dry arrival spins up a
#: remote-fork executor.
COLD_TEN_MILLION_KWARGS = {
    "invocations": 10_000_000,
    "workers": 1 << 16,
    "mean_arrival_gap_ns": 500,
}


def bench_coldstart_ten_million(max_rss_growth: float = 0.20) -> dict[str, Any]:
    """10^7 cold-start invocations, cold policy only: the stress run.

    Same three-way shape as :func:`bench_coldstart` for the cold
    policy; ``within_rss_guard`` asserts the cold-lane engine's peak
    RSS stays within *max_rss_growth* of the per-event heap referee on
    the same scenario.
    """
    from repro.experiments.coldstart import executor_seconds

    scenario = dict(_COLD_SCENARIO)
    scenario["pool_policy"] = "cold"
    scenario.update(COLD_TEN_MILLION_KWARGS)
    runs = _scale_three_way("coldstart10m", overrides=scenario)
    heap, nolane, wheel = runs["heap"], runs["wheel_nolane"], runs["wheel"]
    fp = wheel["fingerprint"]
    rss_ratio = (
        wheel["peak_rss_bytes"] / heap["peak_rss_bytes"] if heap["peak_rss_bytes"] else 0.0
    )
    return {
        "heap": heap,
        "wheel_nolane": nolane,
        "wheel": wheel,
        "invocations": wheel["invocations"],
        "speedup": heap["wall_s"] / wheel["wall_s"] if wheel["wall_s"] else 0.0,
        "lane_speedup": nolane["wall_s"] / wheel["wall_s"] if wheel["wall_s"] else 0.0,
        "cold_starts": fp["cold_starts"],
        "cold_fraction": fp["cold_starts"] / max(1, fp["completed"]),
        "p99_ns": fp["latency_p99_ns"],
        "executor_seconds": executor_seconds(
            wheel["workers"],
            fp["final_now_ns"],
            fp["cold_busy_ns"],
            fp["cold_reclaimed"],
            scenario["keepalive_ns"],
        ),
        "peak_rss_bytes": max(r["peak_rss_bytes"] for r in runs.values()),
        "bit_identical": (
            heap["fingerprint"] == wheel["fingerprint"]
            and nolane["fingerprint"] == wheel["fingerprint"]
        ),
        "rss_ratio_vs_heap": rss_ratio,
        "max_rss_growth": max_rss_growth,
        "within_rss_guard": bool(rss_ratio <= 1.0 + max_rss_growth),
    }


def _multitenant_once(
    scheduler: str,
    admission: str,
    quick: bool = False,
    shards: int = 1,
    parallel: int = 1,
    partitioning: str = "pinned",
    overrides: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """One multi-tenant scale run (see :func:`repro.experiments.scale.
    run_tenant_scale`).  Module-level so ``run_specs`` can fork it:
    per-engine peak RSS must be attributable to that engine."""
    from repro.experiments.multitenant import QUICK_KWARGS, run_multitenant_scale

    kwargs = dict(QUICK_KWARGS) if quick else {}
    if overrides:
        kwargs.update(overrides)
    result = run_multitenant_scale(
        scheduler=scheduler,
        admission=admission,
        shards=shards,
        parallel=parallel,
        partitioning=partitioning,
        **kwargs,
    )
    return {
        "wall_s": result.wall_s,
        "invocations": result.invocations,
        "workers": result.workers,
        "events_processed": result.events_processed,
        "events_per_sec": round(result.events_per_sec),
        "peak_rss_bytes": result.peak_rss_bytes,
        "stream_buckets": result.stream_buckets,
        "occupancy": result.occupancy,
        "partitioning": partitioning,
        "admission": admission,
        "shards": shards,
        "miss_rates": {name: t.miss_rate for name, t in result.tenants.items()},
        "congestion_rates": {
            name: t.congestion_rate for name, t in result.tenants.items()
        },
        "fingerprint": result.fingerprint(),
    }


#: The isolation-spectrum scenario: a pool sized so the calm mix runs
#: healthily (~2% deadline misses from the log-normal tail alone) but a
#: 6x-boosted bursty tenant floods any capacity it is allowed to touch.
#: Under "pinned" partitioning the victim's numbers must stay EXACTLY
#: flat (its partition is private and per-tenant streams are seeded
#: independently); under "shared" the aggressor inflates the victim's
#: p99 and deadline-miss rate by an order of magnitude.
_ISOLATION_SCENARIO = {
    "rate_scale": 400.0,
    "compute_scale": 40.0,
    "workers": 1_536,
    "aggressor_boost": 6.0,
    "victim": "latency-critical",
    "aggressor": "bursty-service",
}


def _multitenant_isolation(quick: bool = False) -> dict[str, Any]:
    """The 2x2 isolation matrix: {pinned, shared} x {calm, aggressor}."""
    from dataclasses import replace as dc_replace

    from repro.experiments.scale import run_tenant_scale
    from repro.workloads.tenants import standard_mix

    scenario = _ISOLATION_SCENARIO
    invocations = 8_000 if quick else 60_000

    def mix(aggressor: bool):
        specs = standard_mix(
            invocations=invocations,
            rate_scale=scenario["rate_scale"],
            compute_scale=scenario["compute_scale"],
        )
        if aggressor:
            specs = [
                dc_replace(spec, rate_per_s=spec.rate_per_s * scenario["aggressor_boost"])
                if spec.name == scenario["aggressor"]
                else spec
                for spec in specs
            ]
        return specs

    cells: dict[str, dict[str, Any]] = {}
    for partitioning in ("pinned", "shared"):
        cells[partitioning] = {}
        for label, aggressor in (("calm", False), ("aggressor", True)):
            result = run_tenant_scale(
                specs=mix(aggressor),
                workers=scenario["workers"],
                partitioning=partitioning,
                seed=17,
            )
            victim = result.tenants[scenario["victim"]]
            cells[partitioning][label] = {
                "victim_p99_ns": victim.latency.p99,
                "victim_miss_rate": victim.miss_rate,
                "victim_sojourn_total": victim.sojourn_total,
                "victim_dispatched": victim.dispatched,
            }
    pinned, shared = cells["pinned"], cells["shared"]
    # Pinned isolation is exact: the victim's private partition never
    # sees the aggressor, and its arrival/service streams are its own.
    pinned_flat = (
        pinned["calm"]["victim_sojourn_total"] == pinned["aggressor"]["victim_sojourn_total"]
        and pinned["calm"]["victim_dispatched"] == pinned["aggressor"]["victim_dispatched"]
    )
    shared_p99_ratio = (
        shared["aggressor"]["victim_p99_ns"] / shared["calm"]["victim_p99_ns"]
        if shared["calm"]["victim_p99_ns"]
        else 0.0
    )
    return {
        "invocations_per_cell": invocations,
        **{k: v for k, v in scenario.items()},
        "pinned": pinned,
        "shared": shared,
        "pinned_victim_flat": pinned_flat,
        "shared_victim_p99_ratio": shared_p99_ratio,
        "shared_victim_miss_rates": [
            shared["calm"]["victim_miss_rate"],
            shared["aggressor"]["victim_miss_rate"],
        ],
        # The demonstrated spectrum: strong isolation pinned, noisy
        # neighbours shared.
        "isolated": bool(pinned_flat and shared_p99_ratio > 2.0),
    }


def bench_multitenant(quick: bool = False) -> dict[str, Any]:
    """The multi-tenant scale engine vs its per-event referee.

    The headline comparison forks the per-event heap referee and the
    vectorized wheel-batch engine on the same 10^6-invocation
    three-tenant scenario (pinned partitioning): ``speedup`` is the
    wall-clock ratio and ``bit_identical`` demands every per-tenant
    outcome count and sojourn fingerprint agree.  ``shard_identical``
    re-runs the wheel engine split 2 ways and demands the merged
    fingerprint match the 1-shard run exactly (the scenario is
    unsaturated by construction).  ``isolation`` carries the 2x2
    {pinned, shared} x {calm, aggressor} matrix demonstrating the
    isolation spectrum.
    """
    runs: dict[str, dict[str, Any]] = {}
    for key, scheduler, admission in (
        ("heap", "heap", "per-event"),
        ("wheel", "wheel", "batch"),
    ):
        spec = RunSpec(
            factory="repro.experiments.bench:_multitenant_once",
            kwargs={"scheduler": scheduler, "admission": admission, "quick": quick},
            label=f"multitenant[{key}]",
        )
        (outcome,) = run_specs([spec], 2)
        if isinstance(outcome, FailedPoint):
            raise RuntimeError(f"multitenant bench failed: {outcome.summary()}")
        runs[key] = outcome
    heap, wheel = runs["heap"], runs["wheel"]
    sharded = _multitenant_once("wheel", "batch", quick=quick, shards=2, parallel=2)
    record = {
        "heap": heap,
        "wheel": wheel,
        "sharded": sharded,
        "invocations": wheel["invocations"],
        "workers": wheel["workers"],
        "events_processed": wheel["events_processed"],
        "events_per_sec": wheel["events_per_sec"],
        "peak_rss_bytes": max(heap["peak_rss_bytes"], wheel["peak_rss_bytes"]),
        "partitioning": wheel["partitioning"],
        "miss_rates": wheel["miss_rates"],
        "congestion_rates": wheel["congestion_rates"],
        "speedup": heap["wall_s"] / wheel["wall_s"] if wheel["wall_s"] else 0.0,
        "rss_ratio_vs_heap": (
            wheel["peak_rss_bytes"] / heap["peak_rss_bytes"]
            if heap["peak_rss_bytes"]
            else 0.0
        ),
        "bit_identical": heap["fingerprint"] == wheel["fingerprint"],
        "shard_identical": sharded["fingerprint"] == wheel["fingerprint"],
        "isolation": _multitenant_isolation(quick),
    }
    record.update(_occupancy_gauges(wheel["occupancy"]))
    return record


#: The 10^7-invocation single-shard stress scenario: arrivals come 2x
#: faster than the paper-scale default but the pool is twice as deep,
#: so the run stays *unsaturated* (~10^6 in-flight leases at peak, the
#: same order as the saturated 10^6 scenario) -- memory stays within
#: the scale guard while the event count grows 10x.
TEN_MILLION_KWARGS = {
    "invocations": 10_000_000,
    "workers": 1 << 21,
    "mean_arrival_gap_ns": 500,
}


def bench_scale_ten_million(max_rss_growth: float = 0.20) -> dict[str, Any]:
    """10^7 invocations on one shard: the acceptance stress run.

    Same shape as :func:`bench_scale` (heap referee, lane-off, lane-on;
    forked processes, bit-identity required), an order of magnitude
    more events.  ``within_rss_guard`` asserts the lane-on engine's
    peak RSS stays within the regression guard's RSS allowance
    (*max_rss_growth*) of the per-event heap baseline on the *same*
    scenario -- the lane must not buy speed with footprint.
    """
    runs = _scale_three_way("scale10m", overrides=TEN_MILLION_KWARGS)
    heap, nolane, wheel = runs["heap"], runs["wheel_nolane"], runs["wheel"]
    rss_ratio = (
        wheel["peak_rss_bytes"] / heap["peak_rss_bytes"] if heap["peak_rss_bytes"] else 0.0
    )
    record = {
        "heap": heap,
        "wheel_nolane": nolane,
        "wheel": wheel,
        "invocations": wheel["invocations"],
        "events_processed": wheel["events_processed"],
        "events_per_sec": wheel["events_per_sec"],
        "peak_rss_bytes": max(r["peak_rss_bytes"] for r in runs.values()),
        "speedup": heap["wall_s"] / wheel["wall_s"] if wheel["wall_s"] else 0.0,
        "lane_speedup": nolane["wall_s"] / wheel["wall_s"] if wheel["wall_s"] else 0.0,
        "rss_ratio_vs_nolane": (
            wheel["peak_rss_bytes"] / nolane["peak_rss_bytes"]
            if nolane["peak_rss_bytes"]
            else 0.0
        ),
        "bit_identical": (
            heap["fingerprint"] == wheel["fingerprint"]
            and nolane["fingerprint"] == wheel["fingerprint"]
        ),
        "rss_ratio_vs_heap": rss_ratio,
        "max_rss_growth": max_rss_growth,
        "within_rss_guard": bool(rss_ratio <= 1.0 + max_rss_growth),
    }
    record.update(_occupancy_gauges(wheel["occupancy"]))
    return record


def bench_scale_sharded(
    quick: bool = False,
    shards: int = 2,
    parallel: int = 0,
    single_wheel: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """The sharded scale engine vs. the single-core wheel run.

    Decomposes the same wheel scenario :func:`bench_scale` just timed
    into *shards* and fans them out.  Dispatch is forced through forked
    workers (``max(2, resolved)``) even on one CPU, so ``peak_rss_bytes``
    is the per-shard worker high-water mark, attributable to one shard
    rather than to the whole bench process.

    ``speedup_vs_single`` is merged sharded events/sec over the
    single-process wheel events/sec from the same bench run.  On a
    single usable CPU the fan-out serializes behind fork + IPC overhead,
    so the entry is flagged ``speedup_representative: false`` -- the
    committed number documents the environment, it does not pretend to
    a speedup the hardware cannot show.
    """
    from repro.experiments.scale import QUICK_KWARGS, run_scale_sharded

    kwargs = dict(QUICK_KWARGS) if quick else {}
    cpus = available_workers()
    dispatch_workers = max(2, resolve_workers(parallel))
    result = run_scale_sharded(
        shards=shards, scheduler="wheel", parallel=dispatch_workers, **kwargs
    )
    single_rate = float((single_wheel or {}).get("events_per_sec") or 0.0)
    record = {
        "shards": shards,
        "workers": dispatch_workers,
        "cpus_available": cpus,
        "invocations": result.invocations,
        "events_processed": result.events_processed,
        "wall_s": result.wall_s,
        "serial_wall_s": result.serial_wall_s,
        "shard_walls_s": result.shard_walls_s,
        "events_per_sec": round(result.events_per_sec),
        "peak_rss_bytes": result.peak_rss_bytes,
        "stream_buckets": result.stream_buckets,
        "fingerprint": result.fingerprint(),
        "speedup_vs_single": result.events_per_sec / single_rate if single_rate else 0.0,
        "speedup_representative": cpus > 1,
    }
    record.update(_occupancy_gauges(result.occupancy))
    if cpus <= 1:
        record["note"] = (
            "sharded fan-out measured with 1 usable CPU: shards serialize "
            "behind fork+IPC overhead; speedup_vs_single is not representative"
        )
    return record


def bench_parallel_batch(parallel: int) -> dict[str, Any]:
    """Time a quick multi-experiment batch serially, then fanned out.

    This is the number the parallel engine exists for: the same
    independent experiment runs, serial vs. ``parallel`` workers.
    """
    specs = [
        RunSpec(
            factory="repro.experiments.registry:run_experiment",
            kwargs={"experiment_id": experiment_id, "quick": True},
            index=index,
            label=experiment_id,
        )
        for index, experiment_id in enumerate(BATCH_EXPERIMENTS)
    ]

    def timed(workers: int) -> float:
        t0 = time.perf_counter()
        outcomes = run_specs(specs, workers)
        wall = time.perf_counter() - t0
        failed = [o for o in outcomes if isinstance(o, FailedPoint)]
        if failed:
            raise RuntimeError(f"batch experiment failed: {failed[0].summary()}")
        return wall

    serial_s = timed(1)
    parallel_s = timed(parallel)
    cpus = available_workers()
    record = {
        "experiments": list(BATCH_EXPERIMENTS),
        "workers": parallel,
        "cpus_available": cpus,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s else 0.0,
        "peak_rss_bytes": _rss_tree(),
        # On a single usable CPU the "parallel" run just adds worker
        # startup + IPC on top of serialized execution, so the speedup
        # says nothing about the engine.  Flag it so trajectory readers
        # (and CI) know which entries are comparable.
        "speedup_representative": cpus > 1,
    }
    if cpus <= 1:
        record["note"] = "speedup measured with 1 usable CPU; not representative"
    return record


def bench_cache_batch(
    cache_dir: Optional[str] = None, experiments: tuple[str, ...] = BATCH_EXPERIMENTS
) -> dict[str, Any]:
    """Cold-vs-warm wall clock for the experiment batch through the cache.

    Runs the quick batch twice against one result cache: the first pass
    misses everywhere and pays full simulation cost, the second is
    answered from disk.  Results must be bit-identical (compared via
    the same JSON projection the archive uses); the headline is
    ``speedup = cold_s / warm_s``.  Uses a throwaway cache directory
    unless *cache_dir* is given, so timed runs never reuse stale state.
    """
    import shutil
    import tempfile

    from repro.cache import ResultCache
    from repro.experiments.io import to_jsonable

    specs = [
        RunSpec(
            factory="repro.experiments.registry:run_experiment",
            kwargs={"experiment_id": experiment_id, "quick": True},
            index=index,
            label=experiment_id,
        )
        for index, experiment_id in enumerate(experiments)
    ]

    owns_dir = cache_dir is None
    root = cache_dir or tempfile.mkdtemp(prefix="repro-cache-bench-")
    try:
        cache = ResultCache(root)

        def timed(label: str) -> tuple[float, list[Any]]:
            t0 = time.perf_counter()
            outcomes = run_specs(specs, 1, cache=cache)
            wall = time.perf_counter() - t0
            failed = [o for o in outcomes if isinstance(o, FailedPoint)]
            if failed:
                raise RuntimeError(f"{label} batch experiment failed: {failed[0].summary()}")
            return wall, outcomes

        cold_s, cold = timed("cold")
        warm_s, warm = timed("warm")
        stats = cache.stats()
        return {
            "experiments": list(experiments),
            "cold_s": cold_s,
            "warm_s": warm_s,
            "speedup": cold_s / warm_s if warm_s else 0.0,
            "bit_identical": to_jsonable(cold) == to_jsonable(warm),
            "hits": stats["session"]["hits"],
            "misses": stats["session"]["misses"],
            "bytes_read": stats["session"]["bytes_read"],
            "bytes_written": stats["session"]["bytes_written"],
            "peak_rss_bytes": _rss_tree(),
        }
    finally:
        if owns_dir:
            shutil.rmtree(root, ignore_errors=True)


def run_bench(
    quick: bool = False, parallel: int = 1, shards: int = 2, ten_million: bool = False
) -> dict[str, Any]:
    """Run all three hot-loop benchmarks; returns a JSON-ready dict.

    Every entry records its execution environment (``shards``,
    ``workers``, ``cpus_available``) so trajectory comparisons know
    which entries were measured under comparable decompositions.
    *ten_million* additionally runs the 10^7-invocation stress scenario
    (several minutes of wall clock; meant for recorded trajectory
    entries, not CI quick runs).
    """
    repeats = 3 if quick else 9
    perf.reset()
    perf.enable()
    try:
        results = {
            "kernel_event_throughput": bench_kernel(repeats, parallel),
            "rdma_pingpong": bench_pingpong(max(3, repeats - 2), parallel),
            "invocation": bench_invocation(max(3, repeats - 4), parallel),
        }
    finally:
        perf.disable()
    results["perf_counters"] = perf.snapshot()
    if parallel != 1:
        results["parallel_batch"] = bench_parallel_batch(parallel)
    results["cache_batch"] = bench_cache_batch()
    results["scale_openloop"] = bench_scale(quick)
    results["control_plane"] = bench_control(quick)
    results["coldstart"] = bench_coldstart(quick)
    results["multitenant"] = bench_multitenant(quick)
    if shards > 1:
        results["scale_sharded"] = bench_scale_sharded(
            quick, shards=shards, parallel=parallel,
            single_wheel=results["scale_openloop"]["wheel"],
        )
    if ten_million:
        results["scale_10m"] = bench_scale_ten_million()
        results["coldstart_10m"] = bench_coldstart_ten_million()
    results["shards"] = shards
    results["workers"] = resolve_workers(parallel)
    results["cpus_available"] = available_workers()
    results["peak_rss_bytes"] = _rss_tree()
    return results


def write_bench(path: str, results: dict[str, Any], label: Optional[str] = None) -> str:
    """Merge *results* under *label* into the bench-trajectory file."""
    target = Path(path)
    doc: dict[str, Any] = {"schema": "rfaas-repro-bench-v1", "entries": {}}
    if target.exists():
        try:
            existing = json.loads(target.read_text())
            if isinstance(existing, dict) and "entries" in existing:
                doc = existing
        except (OSError, json.JSONDecodeError):
            pass
    doc["entries"][label or "run"] = results
    target.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return str(target)


def check_regression(
    results: dict[str, Any],
    baseline_path: str,
    baseline_label: Optional[str],
    max_regression: float = 0.30,
    max_rss_growth: float = 0.20,
) -> list[str]:
    """Compare *results* against a committed trajectory entry.

    Guards the DES kernel's ``events_per_sec`` (the one figure every
    hot-path PR moves): a drop of more than *max_regression* versus the
    baseline entry is reported as a failure string.  Also guards peak
    RSS: growth beyond *max_rss_growth* versus the baseline fails --
    the scale engine's whole point is bounded memory, so a quiet
    footprint regression is as real as a throughput one.  Baselines
    recorded before RSS tracking simply lack the key and skip that
    check (old entries stay usable as throughput baselines).

    Returns a list of problems, empty when the run is clean; a missing
    baseline file or entry is itself a problem (a silently absent guard
    guards nothing).
    """
    try:
        doc = json.loads(Path(baseline_path).read_text())
        entries = doc["entries"]
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
        return [f"cannot load baseline {baseline_path}: {exc}"]
    label = baseline_label or (sorted(entries)[-1] if entries else None)
    entry = entries.get(label) if label else None
    if not isinstance(entry, dict):
        return [f"no baseline entry {label!r} in {baseline_path}"]
    problems = []
    try:
        base_rate = float(entry["kernel_event_throughput"]["events_per_sec"])
        current_rate = float(results["kernel_event_throughput"]["events_per_sec"])
    except (KeyError, TypeError, ValueError) as exc:
        return [f"baseline/current entries missing kernel_event_throughput: {exc}"]
    floor = base_rate * (1.0 - max_regression)
    if current_rate < floor:
        problems.append(
            f"kernel_event_throughput.events_per_sec {current_rate:,.0f} is "
            f"{1 - current_rate / base_rate:.1%} below baseline {label!r} "
            f"({base_rate:,.0f}; allowed drop {max_regression:.0%})"
        )
    base_scale = entry.get("scale_openloop")
    current_scale = results.get("scale_openloop")
    if isinstance(base_scale, dict) and isinstance(current_scale, dict):
        base_rss = base_scale.get("peak_rss_bytes")
        current_rss = current_scale.get("peak_rss_bytes")
        if base_rss and current_rss:
            ceiling = float(base_rss) * (1.0 + max_rss_growth)
            if float(current_rss) > ceiling:
                problems.append(
                    f"scale_openloop.peak_rss_bytes {current_rss:,} is "
                    f"{current_rss / base_rss - 1:.1%} above baseline {label!r} "
                    f"({base_rss:,}; allowed growth {max_rss_growth:.0%})"
                )
    # Adaptive re-anchors are rare by design: each one re-buckets the
    # whole wheel, so a count that explodes versus the baseline means
    # the occupancy-band detector is thrashing (granularity flapping),
    # which silently taxes every subsequent insert.  Baselines recorded
    # before the gauge existed lack the key and skip the check.
    if isinstance(base_scale, dict) and isinstance(current_scale, dict):
        base_re = base_scale.get("reanchors")
        current_re = current_scale.get("reanchors")
        if base_re is not None and current_re is not None:
            allowed = max(8, 4 * int(base_re))
            if int(current_re) > allowed:
                problems.append(
                    f"scale_openloop.reanchors {current_re} exploded past baseline "
                    f"{label!r} ({base_re}; allowed max({8}, 4x baseline) = {allowed}) "
                    f"-- the adaptive granularity detector is thrashing"
                )
    # Lease-lane re-arm batches should stay near one per deferral
    # window: an exploding count means slab re-arms are fragmenting
    # into many tiny masked passes (e.g. the deferral windows or the
    # side-block consolidation went wrong), which erodes the lane's
    # whole advantage while times stay bit-identical.  Baselines
    # recorded before the lane existed lack the key and skip the check.
    if isinstance(base_scale, dict) and isinstance(current_scale, dict):
        base_rb = base_scale.get("lane_rearm_batches")
        current_rb = current_scale.get("lane_rearm_batches")
        if base_rb is not None and current_rb is not None:
            allowed = max(64, 4 * int(base_rb))
            if int(current_rb) > allowed:
                problems.append(
                    f"scale_openloop.lane_rearm_batches {current_rb} exploded past "
                    f"baseline {label!r} ({base_rb}; allowed max(64, 4x baseline) "
                    f"= {allowed}) -- lane slab re-arms are fragmenting"
                )
    # The 10^7 stress entry carries its own RSS verdict (wheel-batch
    # vs heap-per-event on the same scenario, same forked-process
    # measurement); when the run recorded one, a breach fails here.
    current_10m = results.get("scale_10m")
    if isinstance(current_10m, dict) and current_10m.get("within_rss_guard") is False:
        problems.append(
            "scale_10m: wheel-batch peak RSS is "
            f"{current_10m.get('rss_ratio_vs_heap', 0.0):.2f}x the per-event heap "
            "baseline, beyond the allowed "
            f"{1.0 + float(current_10m.get('max_rss_growth', 0.0)):.2f}x"
        )
    # The control-plane kernel's whole claim is brokering leases faster
    # than the per-event referee: guard its grant throughput like the
    # DES kernel's events/sec, and fail outright if the drivers stopped
    # agreeing (a wrong fast answer is not a perf win).  Baselines
    # recorded before the control bench existed lack the key and skip.
    base_control = entry.get("control_plane")
    current_control = results.get("control_plane")
    if isinstance(current_control, dict) and current_control.get("bit_identical") is False:
        problems.append(
            "control_plane: kernel and reference driver fingerprints diverged"
        )
    if isinstance(base_control, dict) and isinstance(current_control, dict):
        try:
            base_rate = float(base_control["grants_per_sec"])
            current_rate = float(current_control["grants_per_sec"])
        except (KeyError, TypeError, ValueError):
            base_rate = current_rate = 0.0
        if base_rate and current_rate < base_rate * (1.0 - max_regression):
            problems.append(
                f"control_plane.grants_per_sec {current_rate:,.0f} is "
                f"{1 - current_rate / base_rate:.1%} below baseline {label!r} "
                f"({base_rate:,.0f}; allowed drop {max_regression:.0%})"
            )
    # The cold-start engine's correctness guard: a wrong fast answer is
    # not a perf win, so fingerprint divergence between the cold lane
    # and the per-event referee fails outright.  The cold-start
    # *fraction* is guarded too: on the pinned quick scenario it is a
    # deterministic output, so a fraction ballooning past 4x the
    # baseline means the warm-pool accounting broke (slots leaking,
    # reclaim tearing down busy executors) even if every engine still
    # agrees with every other.  Baselines recorded before the cold
    # bench existed lack the key and skip both checks.
    base_cold = entry.get("coldstart")
    current_cold = results.get("coldstart")
    if isinstance(current_cold, dict) and current_cold.get("bit_identical") is False:
        problems.append(
            "coldstart: cold-lane and per-event referee fingerprints diverged"
        )
    if isinstance(current_cold, dict):
        reclaim = current_cold.get("reclaim")
        if isinstance(reclaim, dict) and reclaim.get("bit_identical") is False:
            problems.append(
                "coldstart.reclaim: strict-interleave kernel diverged from "
                "the per-event referee under keepalive"
            )
    if isinstance(base_cold, dict) and isinstance(current_cold, dict):
        base_cf = base_cold.get("cold_fraction")
        current_cf = current_cold.get("cold_fraction")
        if base_cf and current_cf is not None and float(current_cf) > 4.0 * float(base_cf):
            problems.append(
                f"coldstart.cold_fraction {float(current_cf):.4f} is more than 4x "
                f"baseline {label!r} ({float(base_cf):.4f}) -- warm-pool "
                "accounting regressed (slots leaking or reclaim misfiring)"
            )
    current_cold_10m = results.get("coldstart_10m")
    if isinstance(current_cold_10m, dict):
        if current_cold_10m.get("bit_identical") is False:
            problems.append(
                "coldstart_10m: cold-lane and per-event referee fingerprints diverged"
            )
        if current_cold_10m.get("within_rss_guard") is False:
            problems.append(
                "coldstart_10m: cold-lane peak RSS is "
                f"{current_cold_10m.get('rss_ratio_vs_heap', 0.0):.2f}x the per-event "
                "heap referee, beyond the allowed "
                f"{1.0 + float(current_cold_10m.get('max_rss_growth', 0.0)):.2f}x"
            )
    # Multi-tenant scale engine guards.  Correctness first: the batch
    # wheel kernel, the per-event heap referee, and the K=2 shard split
    # must agree on every per-tenant outcome count and sojourn
    # fingerprint -- a divergence is a wrong answer, not a slow one,
    # and fails outright with no baseline needed.  Isolation is a
    # structural property of `pinned` partitioning (private partition +
    # independent per-tenant streams), so its collapse also fails
    # outright.  The per-tenant deadline-miss rates on the pinned quick
    # scenario are deterministic outputs: any tenant's rate ballooning
    # past 4x the baseline means admission or pool accounting broke
    # even if every engine still agrees with every other.  Baselines
    # recorded before this bench existed lack the key and skip; tenants
    # absent from the baseline mix are skipped too.
    base_mt = entry.get("multitenant")
    current_mt = results.get("multitenant")
    if isinstance(current_mt, dict):
        if current_mt.get("bit_identical") is False:
            problems.append(
                "multitenant: batch-wheel kernel and per-event heap referee "
                "per-tenant fingerprints diverged"
            )
        if current_mt.get("shard_identical") is False:
            problems.append(
                "multitenant: K=2 shard split no longer merges bit-identical "
                "to the single-shard run"
            )
        isolation = current_mt.get("isolation")
        if isinstance(isolation, dict) and isolation.get("isolated") is False:
            problems.append(
                "multitenant.isolation: pinned partitioning no longer "
                "insulates the victim tenant from a bursty co-tenant"
            )
    if isinstance(base_mt, dict) and isinstance(current_mt, dict):
        base_rates = base_mt.get("miss_rates")
        current_rates = current_mt.get("miss_rates")
        if isinstance(base_rates, dict) and isinstance(current_rates, dict):
            for tenant, base_rate in base_rates.items():
                current_rate = current_rates.get(tenant)
                if current_rate is None:
                    continue  # tenant absent from this run's mix: skip
                if float(base_rate) and float(current_rate) > 4.0 * float(base_rate):
                    problems.append(
                        f"multitenant.miss_rates[{tenant!r}] "
                        f"{float(current_rate):.4f} is more than 4x baseline "
                        f"{label!r} ({float(base_rate):.4f}) -- per-tenant "
                        "admission or pool accounting regressed"
                    )
        try:
            base_rate = float(base_mt["events_per_sec"])
            current_rate = float(current_mt["events_per_sec"])
        except (KeyError, TypeError, ValueError):
            base_rate = current_rate = 0.0
        if base_rate and current_rate < base_rate * (1.0 - max_regression):
            problems.append(
                f"multitenant.events_per_sec {current_rate:,.0f} is "
                f"{1 - current_rate / base_rate:.1%} below baseline {label!r} "
                f"({base_rate:,.0f}; allowed drop {max_regression:.0%})"
            )
    # Sharded throughput is only comparable between identical
    # decompositions: a 2-shard and a 4-shard run simulate different
    # per-environment workloads, so mismatched shard counts (or a
    # baseline recorded before sharding existed) skip this guard
    # rather than fabricate a regression.  Entries flagged
    # speedup_representative=false (single-CPU fan-out serialized
    # behind fork+IPC) carry rates dominated by dispatch noise, not by
    # the engine, so they are recorded but never guarded against.
    base_sharded = entry.get("scale_sharded")
    current_sharded = results.get("scale_sharded")
    if (
        isinstance(base_sharded, dict)
        and isinstance(current_sharded, dict)
        and base_sharded.get("shards") == current_sharded.get("shards")
        and base_sharded.get("workers") == current_sharded.get("workers")
        and base_sharded.get("speedup_representative")
        and current_sharded.get("speedup_representative")
    ):
        try:
            base_rate = float(base_sharded["events_per_sec"])
            current_rate = float(current_sharded["events_per_sec"])
        except (KeyError, TypeError, ValueError):
            base_rate = current_rate = 0.0
        if base_rate and current_rate < base_rate * (1.0 - max_regression):
            problems.append(
                f"scale_sharded.events_per_sec {current_rate:,.0f} is "
                f"{1 - current_rate / base_rate:.1%} below baseline {label!r} "
                f"({base_rate:,.0f}; allowed drop {max_regression:.0%}; "
                f"both at {base_sharded.get('shards')} shards)"
            )
    return problems


def show(results: dict[str, Any]) -> None:
    for name in ("kernel_event_throughput", "rdma_pingpong", "invocation"):
        r = results[name]
        line = f"{name:<28} median {r['median_s'] * 1e3:8.3f} ms  (min {r['min_s'] * 1e3:.3f})"
        if "events_per_sec" in r:
            line += f"  {r['events_per_sec']:,} events/s"
        print(line)
    counters = results.get("perf_counters", {})
    if counters:
        print(
            "perf: alloc_avoided={alloc_avoided:,} bytes_copied={bytes_copied:,} "
            "bytes_referenced={bytes_referenced:,}".format(**counters)
        )
    batch = results.get("parallel_batch")
    if batch:
        line = (
            "parallel_batch: {n} experiments  serial {serial_s:.1f}s -> "
            "{workers} workers {parallel_s:.1f}s  ({speedup:.2f}x, {cpus_available} cpus)".format(
                n=len(batch["experiments"]), **batch
            )
        )
        if not batch.get("speedup_representative", True):
            line += "  [NOT representative: 1 cpu]"
        print(line)
    cached = results.get("cache_batch")
    if cached:
        print(
            "cache_batch: {n} experiments  cold {cold_s:.1f}s -> warm {warm_s:.2f}s  "
            "({speedup:.1f}x, bit_identical={bit_identical}, "
            "{hits} hits/{misses} misses)".format(n=len(cached["experiments"]), **cached)
        )
    scale = results.get("scale_openloop")
    if scale:
        line = (
            "scale_openloop: {invocations:,} invocations  heap {heap_s:.1f}s -> "
            "wheel {wheel_s:.1f}s  ({speedup:.2f}x, {events_per_sec:,} events/s, "
            "peak RSS {rss_mib:.0f} MiB, bit_identical={bit_identical}, "
            "reanchors={reanchors})".format(
                invocations=scale["invocations"],
                heap_s=scale["heap"]["wall_s"],
                wheel_s=scale["wheel"]["wall_s"],
                speedup=scale["speedup"],
                events_per_sec=scale["events_per_sec"],
                rss_mib=scale["peak_rss_bytes"] / 2**20,
                bit_identical=scale["bit_identical"],
                reanchors=scale.get("reanchors", 0),
            )
        )
        if "lane_speedup" in scale:
            line += (
                "\n  lease lane: {lane_speedup:.2f}x vs lane-off "
                "({nolane_s:.1f}s -> {wheel_s:.1f}s, RSS {rss_ratio:.2f}x, "
                "peak {lane_peak:,} entries, max slab {max_slab:,})".format(
                    lane_speedup=scale["lane_speedup"],
                    nolane_s=scale["wheel_nolane"]["wall_s"],
                    wheel_s=scale["wheel"]["wall_s"],
                    rss_ratio=scale.get("rss_ratio_vs_nolane", 0.0),
                    lane_peak=scale.get("lane_entries_peak", 0),
                    max_slab=scale.get("lane_max_slab", 0),
                )
            )
        print(line)
    stress = results.get("scale_10m")
    if stress:
        if "lane_speedup" in stress:
            print(
                "scale_10m lease lane: {lane_speedup:.2f}x vs lane-off "
                "({nolane_s:.1f}s -> {wheel_s:.1f}s)".format(
                    lane_speedup=stress["lane_speedup"],
                    nolane_s=stress["wheel_nolane"]["wall_s"],
                    wheel_s=stress["wheel"]["wall_s"],
                )
            )
        print(
            "scale_10m: {invocations:,} invocations  heap {heap_s:.1f}s -> "
            "wheel {wheel_s:.1f}s  ({speedup:.2f}x, {events_per_sec:,} events/s, "
            "RSS {rss_ratio:.2f}x heap [guard {guard}], "
            "bit_identical={bit_identical})".format(
                invocations=stress["invocations"],
                heap_s=stress["heap"]["wall_s"],
                wheel_s=stress["wheel"]["wall_s"],
                speedup=stress["speedup"],
                events_per_sec=stress["events_per_sec"],
                rss_ratio=stress["rss_ratio_vs_heap"],
                guard="ok" if stress["within_rss_guard"] else "BREACHED",
                bit_identical=stress["bit_identical"],
            )
        )
    control = results.get("control_plane")
    if control:
        print(
            "control_plane: {lease_events:,} lease events / {executors:,} executors  "
            "reference {ref_s:.1f}s -> kernel {kernel_s:.1f}s  ({speedup:.2f}x, "
            "{grants_per_sec:,} grants/s, peak {peak:,} active leases, "
            "bit_identical={bit_identical}, rss_ok={rss_ok})".format(
                lease_events=control["lease_events"],
                executors=control["executors"],
                ref_s=control["reference"]["wall_s"],
                kernel_s=control["kernel"]["wall_s"],
                speedup=control["speedup"],
                grants_per_sec=control["grants_per_sec"],
                peak=control["gauges"]["leases_active_peak"],
                bit_identical=control["bit_identical"],
                rss_ok=control["rss_ok"],
            )
        )
    coldstart = results.get("coldstart")
    if coldstart:
        cold = coldstart["policies"]["cold"]
        print(
            "coldstart: {invocations:,} invocations (cold policy, {model})  "
            "heap {heap_s:.1f}s -> cold lane {wheel_s:.1f}s  ({speedup:.2f}x, "
            "lane {lane_speedup:.2f}x, cold fraction {cold_fraction:.1%}, "
            "RSS {rss_ratio:.2f}x heap, bit_identical={bit_identical})".format(
                invocations=coldstart["invocations"],
                model=coldstart["start_model"],
                heap_s=cold["heap"]["wall_s"],
                wheel_s=cold["wheel"]["wall_s"],
                speedup=coldstart["speedup"],
                lane_speedup=coldstart["lane_speedup"],
                cold_fraction=coldstart["cold_fraction"],
                rss_ratio=coldstart["rss_ratio_vs_heap"],
                bit_identical=coldstart["bit_identical"],
            )
        )
        reclaim = coldstart.get("reclaim")
        if reclaim:
            print(
                "  reclaim (keepalive {ka_ms:.0f} ms): {speedup:.2f}x vs heap, "
                "{reclaimed:,} reclaimed / {retained:,} retained, "
                "bit_identical={bit_identical}".format(
                    ka_ms=reclaim["keepalive_ns"] / 1e6,
                    speedup=reclaim["speedup"],
                    reclaimed=reclaim["cold_reclaimed"],
                    retained=reclaim["cold_retained"],
                    bit_identical=reclaim["bit_identical"],
                )
            )
        spectrum = coldstart.get("spectrum")
        if spectrum:
            verified = sum(1 for p in spectrum if p.get("bit_identical"))
            print(
                "  spectrum: {n} points (pool x start model x arrival shape), "
                "{verified} heap-verified, {wall:.1f}s wall".format(
                    n=len(spectrum),
                    verified=verified,
                    wall=coldstart.get("spectrum_wall_s", 0.0),
                )
            )
    cold_stress = results.get("coldstart_10m")
    if cold_stress:
        print(
            "coldstart_10m: {invocations:,} invocations  heap {heap_s:.1f}s -> "
            "cold lane {wheel_s:.1f}s  ({speedup:.2f}x, cold fraction "
            "{cold_fraction:.1%}, RSS {rss_ratio:.2f}x heap [guard {guard}], "
            "bit_identical={bit_identical})".format(
                invocations=cold_stress["invocations"],
                heap_s=cold_stress["heap"]["wall_s"],
                wheel_s=cold_stress["wheel"]["wall_s"],
                speedup=cold_stress["speedup"],
                cold_fraction=cold_stress["cold_fraction"],
                rss_ratio=cold_stress["rss_ratio_vs_heap"],
                guard="ok" if cold_stress["within_rss_guard"] else "BREACHED",
                bit_identical=cold_stress["bit_identical"],
            )
        )
    sharded = results.get("scale_sharded")
    if sharded:
        line = (
            "scale_sharded: {invocations:,} invocations over {shards} shards  "
            "batch {wall_s:.1f}s  ({events_per_sec:,} events/s, "
            "{speedup_vs_single:.2f}x vs single wheel, {workers} workers/"
            "{cpus_available} cpus, peak shard RSS {rss_mib:.0f} MiB)".format(
                rss_mib=sharded["peak_rss_bytes"] / 2**20, **sharded
            )
        )
        if not sharded.get("speedup_representative", True):
            line += "  [NOT representative: 1 cpu]"
        print(line)
    mt = results.get("multitenant")
    if mt:
        print(
            "multitenant: {invocations:,} invocations / {tenants} tenants "
            "({partitioning})  heap {heap_s:.1f}s -> wheel {wheel_s:.1f}s  "
            "({speedup:.2f}x, {events_per_sec:,} events/s, RSS "
            "{rss_ratio:.2f}x heap, bit_identical={bit_identical}, "
            "shard_identical={shard_identical})".format(
                invocations=mt["invocations"],
                tenants=len(mt.get("miss_rates", {})),
                partitioning=mt["partitioning"],
                heap_s=mt["heap"]["wall_s"],
                wheel_s=mt["wheel"]["wall_s"],
                speedup=mt["speedup"],
                events_per_sec=mt["events_per_sec"],
                rss_ratio=mt["rss_ratio_vs_heap"],
                bit_identical=mt["bit_identical"],
                shard_identical=mt["shard_identical"],
            )
        )
        for tenant, rate in mt.get("miss_rates", {}).items():
            print(
                "  {tenant:<18} miss {rate:.2%}  congestion {cong:.2%}".format(
                    tenant=tenant,
                    rate=rate,
                    cong=mt.get("congestion_rates", {}).get(tenant, 0.0),
                )
            )
        iso = mt.get("isolation")
        if iso:
            print(
                "  isolation: pinned victim flat={flat}  shared victim p99 "
                "x{ratio:.1f} under bursty co-tenant  (isolated={isolated})".format(
                    flat=iso["pinned_victim_flat"],
                    ratio=iso["shared_victim_p99_ratio"],
                    isolated=iso["isolated"],
                )
            )
