"""Modularity ablation (Sec. III-F): rFaaS on software RDMA.

"In addition, software virtualization can be employed in data centers
without high-speed networks, offering RDMA semantics at the cost of
higher overheads."  This harness runs the identical rFaaS stack on a
SoftRoCE-like latency model and quantifies that cost: the platform
works unmodified, invocations just move from ~4 us to tens of us.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import Table, format_bytes, format_ns
from repro.analysis.stats import median
from repro.core.deployment import Deployment
from repro.rdma.latency import LatencyModel
from repro.workloads.noop import noop_package

DEFAULT_SIZES = (64, 1024, 65536, 1_000_000)


@dataclass
class SoftRoceResult:
    sizes: tuple[int, ...]
    hardware: dict[int, float]
    software: dict[int, float]

    def slowdown(self, size: int) -> float:
        return self.software[size] / self.hardware[size]

    def table(self) -> Table:
        table = Table(
            "Sec. III-F ablation -- rFaaS on hardware RDMA vs SoftRoCE",
            ["payload", "hardware RDMA", "SoftRoCE", "slowdown"],
        )
        for size in self.sizes:
            table.add_row(
                format_bytes(size),
                format_ns(self.hardware[size]),
                format_ns(self.software[size]),
                f"{self.slowdown(size):.1f}x",
            )
        return table


def _measure(model: LatencyModel, size: int, repetitions: int) -> float:
    dep = Deployment.build(executors=1, clients=1, latency_model=model)
    dep.settle()
    invoker = dep.new_invoker()
    package = noop_package()

    def driver():
        yield from invoker.allocate(
            package, workers=1, worker_buffer_bytes=2 * size + 64
        )
        in_buf = invoker.alloc_input(size)
        out_buf = invoker.alloc_output(size)
        in_buf.write(bytes(size))
        rtts = []
        warmup = invoker.submit("echo", in_buf, size, out_buf)
        yield warmup.wait()
        for _ in range(repetitions):
            future = invoker.submit("echo", in_buf, size, out_buf)
            result = yield future.wait()
            rtts.append(result.rtt_ns)
        return rtts

    return median(dep.run(driver()))


def run_softroce(sizes: tuple[int, ...] = DEFAULT_SIZES, repetitions: int = 10) -> SoftRoceResult:
    hardware = {size: _measure(LatencyModel(), size, repetitions) for size in sizes}
    software = {size: _measure(LatencyModel.soft_roce(), size, repetitions) for size in sizes}
    return SoftRoceResult(sizes=tuple(sizes), hardware=hardware, software=software)
