"""Million-invocation open-loop load harness (the scale engine demo).

The paper's pitch is *high-performance* serverless: a cluster absorbing
enormous bursts of sub-millisecond invocations under leases.  The
figure harnesses drive at most ~10^5 events; this one drives
**>= 10^6 invocations** through the simulator in a single run and is
the workload the :mod:`repro.sim.wheel` timer wheel exists for.

Model -- an open-loop generator over a warm executor pool:

* **Arrivals** are Poisson (exponential inter-arrival gaps), drawn in
  pre-batched numpy chunks -- the same recipe as
  :mod:`repro.cluster.trace_gen`, rescaled from batch jobs to
  serverless invocations.  Open loop: the arrival process never waits
  for completions, so overload shows up as queueing delay (the honest
  way to measure tail latency; closed loops coordinate-omit).
* **Service** times are log-normal with clipping, again the trace_gen
  shape scaled to the paper's function-duration range.
* **The pool** is ``workers`` warm executor slots.  A free slot starts
  the invocation immediately; otherwise the arrival waits in a FIFO
  backlog and its sojourn time includes the queueing delay.
* **Leases**: every running invocation holds a lease on its slot and
  re-validates it every ``lease_check_interval_ns`` (Sec. III-E: leased
  resources are periodically re-checked rather than centrally tracked).
  The lease timer is one :class:`~repro.sim.events.Timeout` *reused*
  across renewals -- re-armed in place via ``schedule_timeout`` -- so a
  400 ms invocation costs ~8 scheduler operations and zero per-renewal
  allocations.  The final re-arm lands exactly on the finish time, so
  sojourn times are exact, not quantized to the check interval.

Implementation notes (this file is itself a hot loop):

* The driver is a callback FSM, not generator processes: no Python
  frames parked on ``yield``, just pooled timeouts carrying an integer
  finish time as their value.
* Sojourn latency is fully determined at dispatch (queue wait +
  service), so it is recorded *at start* into a bounded flush buffer
  feeding :class:`repro.analysis.streams.StreamingSummary`: memory
  stays O(histogram buckets), not O(invocations).
* The automatic GC is suspended around ``env.run()`` (after a full
  collect): the FSM allocates no reference cycles, and generational
  scans over ~10^6 live timers otherwise cost ~15% of the run.
* With the default parameters the arrival burst is much shorter than
  the median service time, so nearly all 10^6 invocations are
  concurrently in flight mid-run, each holding one pending timer --
  exactly the regime where the timer wheel's O(1) scheduling beats the
  binary heap's O(log n) (see ``BENCH_PR4.json``, ``scale_openloop``).

Run it::

    python -m repro.experiments scale            # paper scale, 10^6
    python -m repro.experiments scale --quick    # CI-sized, 10^4
"""

from __future__ import annotations

import gc
import resource
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.analysis.reporting import Table, format_bytes, format_ns
from repro.analysis.stats import SummaryStats
from repro.analysis.streams import StreamingSummary
from repro.sim.clock import ms, us
from repro.sim.rng import RngStreams
from repro.sim.wheel import WheelEnvironment, new_environment

#: Latencies buffered before a vectorized flush into the streaming
#: summary -- the only per-sample storage, bounded regardless of run
#: length.
_FLUSH_BATCH = 1 << 16
#: Pre-drawn RNG chunk size (amortizes numpy call overhead).
_RNG_CHUNK = 1 << 16


@dataclass(frozen=True)
class ScaleConfig:
    """Knobs of the open-loop scale scenario."""

    #: Total invocations to drive (the paper-scale default is 10^6).
    invocations: int = 1_000_000
    #: Warm executor slots; arrivals beyond this queue FIFO.
    workers: int = 1 << 20
    #: Mean Poisson inter-arrival gap.  The default packs the full
    #: burst into ~0.25 simulated seconds, far shorter than the median
    #: service time, so the pool fills almost completely.
    mean_arrival_gap_ns: int = 250
    #: Log-normal service time: ln(median in ns) and shape.
    #: exp(19.8) ~ 400 ms -- the upper end of the paper's function mix,
    #: chosen so in-flight invocations pile up to pool capacity.
    service_log_mean: float = 19.8
    service_log_sigma: float = 0.6
    min_service_ns: int = ms(1)
    max_service_ns: int = int(3e9)
    #: Period of the in-flight lease re-validation timer.
    lease_check_interval_ns: int = ms(64)
    seed: int = 0x5CA1E
    #: Event-loop scheduler: "heap" or "wheel" (see RFaaSConfig.scheduler).
    scheduler: Optional[str] = "wheel"
    #: Wheel slot width, 2**bits ns.  The scale default (2**16 ns =
    #: 65 us) keeps slots densely occupied at ~10^7 events per simulated
    #: second; the wheel's own default (256 ns) suits the microsecond
    #: RDMA timescales of the figure harnesses.  Ignored for "heap".
    granularity_bits: int = 16
    #: Streaming-histogram resolution (quantile error <= 2**-subbits).
    subbits: int = 8


@dataclass
class ScaleResult:
    """One open-loop run: throughput, memory, and tail latency."""

    scheduler: str
    invocations: int
    workers: int
    completed: int
    events_processed: int
    wall_s: float
    events_per_sec: float
    peak_rss_bytes: int
    final_now_ns: int
    max_backlog: int
    queued: int
    timeout_pool_hits: int
    latency: SummaryStats
    #: Occupied streaming-histogram buckets -- the O(1)-memory evidence.
    stream_buckets: int
    #: Peak scheduler occupancy ({"wheel": ..., "heap": ...} and friends);
    #: empty for the plain heap environment.
    occupancy: dict[str, int] = field(default_factory=dict)

    def fingerprint(self) -> dict[str, Any]:
        """The simulated-domain outputs -- identical across schedulers.

        Wall-clock, RSS and scheduler occupancy are measurement
        artifacts and excluded; everything here must match bit-for-bit
        between heap and wheel runs of the same config.
        """
        return {
            "invocations": self.invocations,
            "completed": self.completed,
            "events_processed": self.events_processed,
            "final_now_ns": self.final_now_ns,
            "max_backlog": self.max_backlog,
            "queued": self.queued,
            "latency_median_ns": self.latency.median,
            "latency_p95_ns": self.latency.p95,
            "latency_p99_ns": self.latency.p99,
            "latency_mean_ns": self.latency.mean,
            "latency_min_ns": self.latency.minimum,
            "latency_max_ns": self.latency.maximum,
        }

    def table(self) -> Table:
        table = Table(
            f"Open-loop scale run -- {self.invocations:,} invocations "
            f"({self.scheduler} scheduler)",
            ["metric", "value"],
        )
        table.add_row("completed", f"{self.completed:,}")
        table.add_row("simulator events", f"{self.events_processed:,}")
        table.add_row("wall clock", f"{self.wall_s:.2f} s")
        table.add_row("events/sec", f"{self.events_per_sec:,.0f}")
        table.add_row("peak RSS", format_bytes(self.peak_rss_bytes))
        table.add_row("simulated span", format_ns(self.final_now_ns))
        table.add_row("warm slots / peak backlog", f"{self.workers:,} / {self.max_backlog:,}")
        table.add_row("sojourn median", format_ns(self.latency.median))
        table.add_row("sojourn p95", format_ns(self.latency.p95))
        table.add_row("sojourn p99", format_ns(self.latency.p99))
        table.add_row("stream buckets (O(1) memory)", f"{self.stream_buckets:,}")
        if self.occupancy:
            table.add_row(
                "peak wheel/heap residency",
                f"{self.occupancy.get('wheel', 0):,} / {self.occupancy.get('heap', 0):,}",
            )
        return table


class _OpenLoopDriver:
    """Callback FSM: Poisson arrivals over a leased warm pool."""

    __slots__ = (
        "env",
        "config",
        "stream",
        "backlog",
        "free_slots",
        "arrived",
        "completed",
        "queued",
        "max_backlog",
        "occupancy_peaks",
        "_interval",
        "_gaps",
        "_services",
        "_rng_arrivals",
        "_rng_service",
        "_buffer",
        "_on_arrival",
        "_on_lease",
        "_is_wheel",
    )

    def __init__(self, env, config: ScaleConfig) -> None:
        self.env = env
        self.config = config
        self.stream = StreamingSummary(config.subbits)
        self.backlog: deque[int] = deque()
        self.free_slots = config.workers
        self.arrived = 0
        self.completed = 0
        self.queued = 0
        self.max_backlog = 0
        self.occupancy_peaks: dict[str, int] = {}
        self._interval = config.lease_check_interval_ns
        streams = RngStreams(config.seed)
        self._rng_arrivals = streams.stream("arrivals")
        self._rng_service = streams.stream("service")
        self._gaps = iter(())
        self._services = iter(())
        self._buffer: list[int] = []
        # Bind the callbacks once; appending a fresh bound method per
        # event would allocate on the hottest path.
        self._on_arrival = self._handle_arrival
        self._on_lease = self._handle_lease
        self._is_wheel = isinstance(env, WheelEnvironment)

    # -- pre-batched draws (consumption order is event order, so the
    # -- sequences are identical for every scheduler) ------------------

    def _next_gap(self) -> int:
        try:
            return next(self._gaps)
        except StopIteration:
            draws = self._rng_arrivals.exponential(
                self.config.mean_arrival_gap_ns, size=_RNG_CHUNK
            )
            self._gaps = iter(np.maximum(draws.astype(np.int64), 1).tolist())
            return next(self._gaps)

    def _next_service(self) -> int:
        try:
            return next(self._services)
        except StopIteration:
            cfg = self.config
            draws = self._rng_service.lognormal(
                cfg.service_log_mean, cfg.service_log_sigma, size=_RNG_CHUNK
            )
            clipped = np.clip(
                draws.astype(np.int64), cfg.min_service_ns, cfg.max_service_ns
            )
            self._services = iter(clipped.tolist())
            return next(self._services)

    # -- FSM -----------------------------------------------------------

    def start(self) -> None:
        if self.config.invocations < 1:
            raise ValueError("scale run needs at least one invocation")
        timeout = self.env.timeout(self._next_gap())
        timeout.callbacks.append(self._on_arrival)

    def _handle_arrival(self, _event) -> None:
        env = self.env
        now = env._now
        self.arrived += 1
        if self.arrived < self.config.invocations:
            timeout = env.timeout(self._next_gap())
            timeout.callbacks.append(self._on_arrival)
        if self.free_slots:
            self.free_slots -= 1
            self._begin(now)
        else:
            backlog = self.backlog
            backlog.append(now)
            self.queued += 1
            if len(backlog) > self.max_backlog:
                self.max_backlog = len(backlog)

    def _begin(self, arrival_ns: int) -> None:
        env = self.env
        now = env._now
        service = self._next_service()
        # Sojourn = queue wait + service, fully determined at dispatch.
        buffer = self._buffer
        buffer.append(now - arrival_ns + service)
        if len(buffer) >= _FLUSH_BATCH:
            self._flush()
        interval = self._interval
        timeout = env.timeout(service if service <= interval else interval, now + service)
        timeout.callbacks.append(self._on_lease)

    def _handle_lease(self, event) -> None:
        env = self.env
        remaining = event._value - env._now
        if remaining > 0:
            # Lease still held: re-arm the same timeout in place (the
            # run loop detached its callbacks and left _value alone).
            interval = self._interval
            event.callbacks = [self._on_lease]
            env.schedule_timeout(
                event, interval if remaining > interval else remaining
            )
            return
        completed = self.completed + 1
        self.completed = completed
        if not completed & 0xFFFF and self._is_wheel:
            self._sample_wheel()
        if self.backlog:
            self._begin(self.backlog.popleft())
        else:
            self.free_slots += 1

    def _flush(self) -> None:
        if self._buffer:
            self.stream.observe_many(np.asarray(self._buffer, dtype=np.float64))
            self._buffer.clear()
        if self._is_wheel:
            self._sample_wheel()

    def _sample_wheel(self) -> None:
        sample = self.env.sample_occupancy()
        peaks = self.occupancy_peaks
        for key in ("wheel", "heap", "spill", "cascades", "overflow_inserts"):
            value = sample.get(key, 0)
            if value > peaks.get(key, -1):
                peaks[key] = value

    def finish(self) -> None:
        self._flush()


def _peak_rss_bytes() -> int:
    """Lifetime peak RSS of this process (Linux reports KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def run_scale(
    invocations: int = 1_000_000,
    workers: int = 1 << 20,
    scheduler: str = "wheel",
    seed: int = 0x5CA1E,
    mean_arrival_gap_ns: int = 250,
    service_log_mean: float = 19.8,
    service_log_sigma: float = 0.6,
    lease_check_interval_ns: int = ms(64),
    granularity_bits: int = 16,
    subbits: int = 8,
) -> ScaleResult:
    """Drive the open-loop scale scenario once and measure it.

    The quick (CI) configuration shrinks ``invocations`` and
    ``workers`` so the pool saturates and the FIFO backlog path is
    exercised; the paper-scale default instead saturates the *timer*
    population (~10^6 concurrently pending lease/service timers).
    """
    config = ScaleConfig(
        invocations=invocations,
        workers=workers,
        mean_arrival_gap_ns=mean_arrival_gap_ns,
        service_log_mean=service_log_mean,
        service_log_sigma=service_log_sigma,
        lease_check_interval_ns=lease_check_interval_ns,
        seed=seed,
        scheduler=scheduler,
        granularity_bits=granularity_bits,
        subbits=subbits,
    )
    env_kwargs = {"granularity_bits": granularity_bits} if scheduler == "wheel" else {}
    env = new_environment(config.scheduler, **env_kwargs)
    driver = _OpenLoopDriver(env, config)
    driver.start()

    # The FSM allocates no reference cycles, so generational GC scans
    # over ~10^6 live timers are pure overhead; collect once, run with
    # the collector off, restore afterwards.
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    started = time.perf_counter()
    try:
        env.run()
    finally:
        if gc_was_enabled:
            gc.enable()
    wall_s = time.perf_counter() - started
    driver.finish()

    if driver.completed != config.invocations:
        raise RuntimeError(
            f"open-loop run lost invocations: {driver.completed} of {config.invocations}"
        )
    summary = driver.stream.summarize()
    return ScaleResult(
        scheduler=config.scheduler or "heap",
        invocations=config.invocations,
        workers=config.workers,
        completed=driver.completed,
        events_processed=env.events_processed,
        wall_s=wall_s,
        events_per_sec=env.events_processed / wall_s if wall_s > 0 else 0.0,
        peak_rss_bytes=_peak_rss_bytes(),
        final_now_ns=env.now,
        max_backlog=driver.max_backlog,
        queued=driver.queued,
        timeout_pool_hits=env.timeout_pool_hits,
        latency=summary,
        stream_buckets=len(driver.stream.histogram),
        occupancy=dict(driver.occupancy_peaks),
    )


#: Quick (CI) configuration: with 10^4 invocations and 2048 slots the
#: pool saturates within the burst, so the smoke run exercises the FIFO
#: queueing path the paper-scale defaults deliberately avoid.
QUICK_KWARGS = {"invocations": 10_000, "workers": 2_048, "mean_arrival_gap_ns": us(25)}
