"""Million-invocation open-loop load harness (the scale engine demo).

The paper's pitch is *high-performance* serverless: a cluster absorbing
enormous bursts of sub-millisecond invocations under leases.  The
figure harnesses drive at most ~10^5 events; this one drives
**>= 10^6 invocations** through the simulator in a single run and is
the workload the :mod:`repro.sim.wheel` timer wheel exists for.

Model -- an open-loop generator over a warm executor pool:

* **Arrivals** are Poisson (exponential inter-arrival gaps), drawn in
  pre-batched numpy chunks -- the same recipe as
  :mod:`repro.cluster.trace_gen`, rescaled from batch jobs to
  serverless invocations.  Open loop: the arrival process never waits
  for completions, so overload shows up as queueing delay (the honest
  way to measure tail latency; closed loops coordinate-omit).
* **Service** times are log-normal with clipping, again the trace_gen
  shape scaled to the paper's function-duration range.
* **The pool** is ``workers`` warm executor slots.  A free slot starts
  the invocation immediately; otherwise the arrival waits in a FIFO
  backlog and its sojourn time includes the queueing delay.
* **Leases**: every running invocation holds a lease on its slot and
  re-validates it every ``lease_check_interval_ns`` (Sec. III-E: leased
  resources are periodically re-checked rather than centrally tracked).
  The lease timer is one :class:`~repro.sim.events.Timeout` *reused*
  across renewals -- re-armed in place via ``schedule_timeout`` -- so a
  400 ms invocation costs ~8 scheduler operations and zero per-renewal
  allocations.  The final re-arm lands exactly on the finish time, so
  sojourn times are exact, not quantized to the check interval.

Implementation notes (this file is itself a hot loop):

* The driver is a callback FSM, not generator processes: no Python
  frames parked on ``yield``, just pooled timeouts carrying an integer
  finish time as their value.
* Sojourn latency is fully determined at dispatch (queue wait +
  service), so it is recorded *at start* into a bounded flush buffer
  feeding :class:`repro.analysis.streams.StreamingSummary`: memory
  stays O(histogram buckets), not O(invocations).
* The automatic GC is suspended around ``env.run()`` (after a full
  collect): the FSM allocates no reference cycles, and generational
  scans over ~10^6 live timers otherwise cost ~15% of the run.
* With the default parameters the arrival burst is much shorter than
  the median service time, so nearly all 10^6 invocations are
  concurrently in flight mid-run, each holding one pending timer --
  exactly the regime where the timer wheel's O(1) scheduling beats the
  binary heap's O(log n) (see ``BENCH_PR4.json``, ``scale_openloop``).

Sharding (PR 5) -- one scenario, many cores:

The classes below run one environment on one core.  ``run_scale_sharded``
decomposes the *same* scenario into K shards, each a full open-loop
simulation over a slice of the warm pool and a deterministic share of
the arrival stream, runs them in forked processes via
:mod:`repro.parallel`, and folds the per-shard streaming accumulators
back with the exact ``merge`` paths.  Two decompositions:

* ``partition`` (default): every shard replays the **global** arrival
  and service streams (seeded by the scenario root) and keeps arrivals
  whose index is ``shard (mod K)`` -- a systematic thinning of the one
  true process.  Exact: when the pool never saturates, the K-shard
  merged result is bit-identical to the 1-shard run, because the same
  multiset of (arrival, service) pairs flows through, just in separate
  environments.
* ``thin``: shard k draws its own streams from
  ``derive_seed(root, "shard", k)`` at 1/K of the rate -- no redundant
  global generation, statistically the same superposed process, but a
  different realization per K.

Either way a shard depends only on ``(spec, k)``: K shards on 1 worker
are bit-identical to K shards on K workers, and the result cache keys
each shard spec individually, so repeated or resumed sharded runs are
incremental.

Run it::

    python -m repro.experiments scale            # paper scale, 10^6
    python -m repro.experiments scale --quick    # CI-sized, 10^4
    python -m repro.experiments scale --shards 4 --parallel auto
"""

from __future__ import annotations

import gc
import resource
import time
from collections import deque
from heapq import heappop, heappush
from dataclasses import dataclass, field, replace
from typing import Any, Optional, Union

import numpy as np

from repro.analysis.reporting import Table, format_bytes, format_ns
from repro.analysis.stats import SummaryStats
from repro.analysis.streams import KeyedStreamingSummary, StreamingSummary
from repro.core.sandbox import SANDBOX_PROFILES
from repro.sim.arrivals import DIURNAL_DAY, arrival_times, merge_tenant_streams
from repro.sim.events import BatchEvent, TenantEvent
from repro.sim.clock import ms, us
from repro.sim.rng import RngStreams, shard_seed
from repro.sim.wheel import WheelEnvironment, new_environment, validate_granularity_bits
from repro.workloads.tenants import TenantSpec, split_by_weights, standard_mix

#: Latencies buffered before a vectorized flush into the streaming
#: summary -- the only per-sample storage, bounded regardless of run
#: length.
_FLUSH_BATCH = 1 << 16
#: Pre-drawn RNG chunk size (amortizes numpy call overhead).
_RNG_CHUNK = 1 << 16
#: Priority for chunk-admitted arrival events.  The per-event referee
#: assigns each arrival's eid one arrival gap before it fires, so at a
#: shared timestamp the arrival is always the youngest entry and fires
#: after every kernel event; chunk admission draws arrival eids up to a
#: whole chunk (~2^16 arrivals) early, which would let young kernel
#: events -- cold spin-ups scheduled spawn_ns (~1 ms) out, reclaims
#: scheduled keepalive_ns out -- overtake a coincident arrival.  Riding
#: arrivals one priority below NORMAL restores the referee's tie order
#: without per-arrival eid bookkeeping.
_ARRIVAL_PRIO = 2


@dataclass(frozen=True)
class ScaleConfig:
    """Knobs of the open-loop scale scenario."""

    #: Total invocations to drive (the paper-scale default is 10^6).
    invocations: int = 1_000_000
    #: Warm executor slots; arrivals beyond this queue FIFO.
    workers: int = 1 << 20
    #: Mean Poisson inter-arrival gap.  The default packs the full
    #: burst into ~0.25 simulated seconds, far shorter than the median
    #: service time, so the pool fills almost completely.
    mean_arrival_gap_ns: int = 250
    #: Log-normal service time: ln(median in ns) and shape.
    #: exp(19.8) ~ 400 ms -- the upper end of the paper's function mix,
    #: chosen so in-flight invocations pile up to pool capacity.
    service_log_mean: float = 19.8
    service_log_sigma: float = 0.6
    min_service_ns: int = ms(1)
    max_service_ns: int = int(3e9)
    #: Period of the in-flight lease re-validation timer.
    lease_check_interval_ns: int = ms(64)
    seed: int = 0x5CA1E
    #: Event-loop scheduler: "heap" or "wheel" (see RFaaSConfig.scheduler).
    scheduler: Optional[str] = "wheel"
    #: Wheel slot width, 2**bits ns, or ``"auto"`` (default): start at
    #: the wheel's own 256 ns granularity and let the occupancy-band
    #: controller re-anchor to the regime it observes -- the scale
    #: scenario converges to the hand-tuned 2**16-ish ns within the
    #: first adaptation window.  Ignored for "heap".
    granularity_bits: Union[int, str] = "auto"
    #: Arrival admission: "batch" (default) bucket-sorts whole numpy
    #: arrival chunks into the scheduler via ``schedule_batch``;
    #: "per-event" drives one ``timeout()`` per arrival (the PR 4/5
    #: baseline the bit-identity contract is checked against).
    admission: str = "batch"
    #: Lease-lane engine: "on" (default) keeps periodic lease timers in
    #: the struct-of-arrays :class:`~repro.sim.wheel.LeaseLane` and
    #: drains them in vectorized slabs; "off" re-arms them through the
    #: wheel per event (the PR 6 engine).  Effective only for
    #: ``scheduler="wheel"`` with batch admission; the per-event heap
    #: referee always runs lane-off.
    lease_lane: str = "on"
    #: Streaming-histogram resolution (quantile error <= 2**-subbits).
    subbits: int = 8
    #: K-way decomposition of this one scenario (part of the scenario
    #: identity: a 4-shard run is a different -- reproducible -- spec).
    shards: int = 1
    #: "partition" (global streams, keep index % K == k; exact) or
    #: "thin" (independent derive_seed(root, "shard", k) streams at
    #: rate/K; cheaper, different realization per K).
    shard_split: str = "partition"
    #: Arrival process: "poisson", "bursty", or "diurnal"
    #: (see :mod:`repro.sim.arrivals`).
    arrival_shape: str = "poisson"
    #: Invocations released per burst epoch ("bursty" only).
    burst_len: int = 64
    #: Spacing of invocations inside one burst ("bursty" only).
    burst_intra_gap_ns: int = 1
    #: Day-curve period; 0 = auto (a quarter of the arrival span).
    diurnal_period_ns: int = 0
    #: Piecewise-constant rate multipliers across one period.
    diurnal_multipliers: tuple = DIURNAL_DAY
    #: Dry-pool arrival policy: "queue" (FIFO backlog -- the PR 4..8
    #: behavior), "cold" (every dry arrival spins a sandbox up), or
    #: "hybrid" (queue until the backlog reaches ``hybrid_threshold``,
    #: then start spinning up).
    pool_policy: str = "queue"
    #: :data:`~repro.core.sandbox.SANDBOX_PROFILES` entry drawn for
    #: cold spin-ups (Fig. 9 spectrum: bare-metal / docker / microvm /
    #: the MITOSIS-style remote-fork).
    start_model: str = "remote-fork"
    #: Idle-reclaim window for a cold-started executor, measured from
    #: its spin-up (a lease-style fixed lifetime, which is what keeps
    #: the reclaim calendar append-sorted).  0 = never reclaim: the
    #: executor joins the warm pool for good.
    keepalive_ns: int = 0
    #: Backlog depth that flips a dry arrival from queueing to a cold
    #: start ("hybrid" only).
    hybrid_threshold: int = 64


@dataclass
class ScaleResult:
    """One open-loop run: throughput, memory, and tail latency."""

    scheduler: str
    invocations: int
    workers: int
    completed: int
    events_processed: int
    wall_s: float
    events_per_sec: float
    peak_rss_bytes: int
    final_now_ns: int
    max_backlog: int
    queued: int
    timeout_pool_hits: int
    latency: SummaryStats
    #: Occupied streaming-histogram buckets -- the O(1)-memory evidence.
    stream_buckets: int
    #: Peak scheduler occupancy ({"wheel": ..., "heap": ...} and friends);
    #: empty for the plain heap environment.
    occupancy: dict[str, int] = field(default_factory=dict)
    #: Dry-pool arrivals that took the cold-start path (0 under the
    #: "queue" policy).
    cold_starts: int = 0
    #: Simulated busy nanoseconds bought by cold starts (spawn +
    #: service per cold invocation) -- the executor-seconds numerator.
    cold_busy_ns: int = 0
    #: Cold executors torn down by an idle-reclaim expiry.
    cold_reclaimed: int = 0
    #: Reclaim expiries that found no idle cold executor (retained).
    cold_retained: int = 0

    def fingerprint(self) -> dict[str, Any]:
        """The simulated-domain outputs -- identical across schedulers.

        Wall-clock, RSS and scheduler occupancy are measurement
        artifacts and excluded; everything here must match bit-for-bit
        between heap and wheel runs of the same config.
        """
        return {
            "invocations": self.invocations,
            "completed": self.completed,
            "events_processed": self.events_processed,
            "final_now_ns": self.final_now_ns,
            "max_backlog": self.max_backlog,
            "queued": self.queued,
            "cold_starts": self.cold_starts,
            "cold_busy_ns": self.cold_busy_ns,
            "cold_reclaimed": self.cold_reclaimed,
            "cold_retained": self.cold_retained,
            "latency_median_ns": self.latency.median,
            "latency_p95_ns": self.latency.p95,
            "latency_p99_ns": self.latency.p99,
            "latency_mean_ns": self.latency.mean,
            "latency_min_ns": self.latency.minimum,
            "latency_max_ns": self.latency.maximum,
        }

    def table(self) -> Table:
        table = Table(
            f"Open-loop scale run -- {self.invocations:,} invocations "
            f"({self.scheduler} scheduler)",
            ["metric", "value"],
        )
        table.add_row("completed", f"{self.completed:,}")
        table.add_row("simulator events", f"{self.events_processed:,}")
        table.add_row("wall clock", f"{self.wall_s:.2f} s")
        table.add_row("events/sec", f"{self.events_per_sec:,.0f}")
        table.add_row("peak RSS", format_bytes(self.peak_rss_bytes))
        table.add_row("simulated span", format_ns(self.final_now_ns))
        table.add_row("warm slots / peak backlog", f"{self.workers:,} / {self.max_backlog:,}")
        table.add_row("sojourn median", format_ns(self.latency.median))
        table.add_row("sojourn p95", format_ns(self.latency.p95))
        table.add_row("sojourn p99", format_ns(self.latency.p99))
        table.add_row("stream buckets (O(1) memory)", f"{self.stream_buckets:,}")
        if self.cold_starts:
            table.add_row("cold starts", f"{self.cold_starts:,}")
            table.add_row(
                "cold fraction", f"{self.cold_starts / max(1, self.completed):.4f}"
            )
            table.add_row("cold busy", format_ns(self.cold_busy_ns))
            table.add_row(
                "cold reclaimed / retained",
                f"{self.cold_reclaimed:,} / {self.cold_retained:,}",
            )
        if self.occupancy:
            table.add_row(
                "peak wheel/heap residency",
                f"{self.occupancy.get('wheel', 0):,} / {self.occupancy.get('heap', 0):,}",
            )
        return table


class _OpenLoopDriver:
    """Callback FSM: Poisson arrivals over a leased warm pool."""

    __slots__ = (
        "env",
        "config",
        "stream",
        "backlog",
        "free_slots",
        "arrived",
        "completed",
        "queued",
        "max_backlog",
        "occupancy_peaks",
        "_interval",
        "_gaps",
        "_services",
        "_rng_arrivals",
        "_rng_service",
        "_buffer",
        "sojourn_total",
        "_on_arrival",
        "_on_lease",
        "_is_wheel",
    )

    def __init__(self, env, config: ScaleConfig) -> None:
        self.env = env
        self.config = config
        self.stream = StreamingSummary(config.subbits)
        self.backlog: deque[int] = deque()
        self.free_slots = config.workers
        self.arrived = 0
        self.completed = 0
        self.queued = 0
        self.max_backlog = 0
        self.occupancy_peaks: dict[str, int] = {}
        self._interval = config.lease_check_interval_ns
        streams = RngStreams(config.seed)
        self._rng_arrivals = streams.stream("arrivals")
        self._rng_service = streams.stream("service")
        self._gaps = iter(())
        self._services = iter(())
        self._buffer: list[int] = []
        self.sojourn_total = 0
        # Bind the callbacks once; appending a fresh bound method per
        # event would allocate on the hottest path.
        self._on_arrival = self._handle_arrival
        self._on_lease = self._handle_lease
        self._is_wheel = isinstance(env, WheelEnvironment)

    # -- pre-batched draws (consumption order is event order, so the
    # -- sequences are identical for every scheduler) ------------------

    def _next_gap(self) -> int:
        try:
            return next(self._gaps)
        except StopIteration:
            draws = self._rng_arrivals.exponential(
                self.config.mean_arrival_gap_ns, size=_RNG_CHUNK
            )
            self._gaps = iter(np.maximum(draws.astype(np.int64), 1).tolist())
            return next(self._gaps)

    def _next_service(self) -> int:
        try:
            return next(self._services)
        except StopIteration:
            cfg = self.config
            draws = self._rng_service.lognormal(
                cfg.service_log_mean, cfg.service_log_sigma, size=_RNG_CHUNK
            )
            clipped = np.clip(
                draws.astype(np.int64), cfg.min_service_ns, cfg.max_service_ns
            )
            self._services = iter(clipped.tolist())
            return next(self._services)

    # -- FSM -----------------------------------------------------------

    def start(self) -> None:
        if self.config.invocations < 1:
            raise ValueError("scale run needs at least one invocation")
        timeout = self.env.timeout(self._next_gap())
        timeout.callbacks.append(self._on_arrival)

    def drive(self) -> None:
        """Run the simulation to completion (generic loop: the per-event
        baseline must keep the unfused engine's exact cost profile)."""
        self.env.run()

    def _handle_arrival(self, _event) -> None:
        env = self.env
        now = env._now
        self.arrived += 1
        if self.arrived < self.config.invocations:
            timeout = env.timeout(self._next_gap())
            timeout.callbacks.append(self._on_arrival)
        if self.free_slots:
            self.free_slots -= 1
            self._begin(now)
        else:
            backlog = self.backlog
            backlog.append(now)
            self.queued += 1
            if len(backlog) > self.max_backlog:
                self.max_backlog = len(backlog)

    def _begin(self, arrival_ns: int) -> None:
        env = self.env
        now = env._now
        service = self._next_service()
        # Sojourn = queue wait + service, fully determined at dispatch.
        buffer = self._buffer
        buffer.append(now - arrival_ns + service)
        if len(buffer) >= _FLUSH_BATCH:
            self._flush()
        interval = self._interval
        timeout = env.timeout(service if service <= interval else interval, now + service)
        timeout.callbacks.append(self._on_lease)

    def _handle_lease(self, event) -> None:
        env = self.env
        remaining = event._value - env._now
        if remaining > 0:
            # Lease still held: re-arm the same timeout in place (the
            # run loop detached its callbacks and left _value alone).
            interval = self._interval
            event.callbacks = [self._on_lease]
            env.schedule_timeout(
                event, interval if remaining > interval else remaining
            )
            return
        completed = self.completed + 1
        self.completed = completed
        if not completed & 0x3FF and self._is_wheel:
            self._sample_wheel()
        if self.backlog:
            self._begin(self.backlog.popleft())
        else:
            self.free_slots += 1

    def _flush(self) -> None:
        if self._buffer:
            # Exact integer total alongside the float stream: the
            # fingerprint mean is total/count, a single division of
            # exact ints, so it is independent of flush batching and
            # of the order sojourns were recorded in.
            self.sojourn_total += sum(self._buffer)
            self.stream.observe_many(np.asarray(self._buffer, dtype=np.float64))
            self._buffer.clear()
        if self._is_wheel:
            self._sample_wheel(force=True)

    def _sample_wheel(self, force: bool = False) -> None:
        # Decimated: most calls return None without computing occupancy
        # (see WheelEnvironment.sample_occupancy), so the completion-path
        # cadence can be tight without costing wall clock.
        sample = self.env.sample_occupancy(force)
        if sample is None:
            return
        peaks = self.occupancy_peaks
        for key in (
            "wheel",
            "heap",
            "spill",
            "cascades",
            "overflow_inserts",
            "reanchors",
            "granularity_bits",
            "lane_entries",
            "lane_entries_peak",
            "lane_slabs",
            "lane_max_slab",
            "lane_rearm_batches",
            "lane_scalar_fires",
            "cold_entries",
            "cold_entries_peak",
            "cold_slabs",
            "cold_max_slab",
            "cold_scalar_fires",
            "cold_spinups",
            "cold_reclaim_fires",
        ):
            value = sample.get(key, 0)
            if value > peaks.get(key, -1):
                peaks[key] = value

    def finish(self) -> None:
        self._flush()


def _peak_rss_bytes() -> int:
    """Lifetime peak RSS of this process (Linux reports KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _validate_admission(admission: str) -> None:
    """Reject unknown admission modes before any environment is built."""
    if admission not in ("batch", "per-event"):
        raise ValueError(f"admission must be 'batch' or 'per-event', got {admission!r}")


def _validate_lease_lane(lease_lane: str) -> None:
    """Reject unknown lease-lane modes before any environment is built."""
    if lease_lane not in ("on", "off"):
        raise ValueError(f"lease_lane must be 'on' or 'off', got {lease_lane!r}")


def _validate_pool_policy(
    pool_policy: str, start_model: str, keepalive_ns: int, hybrid_threshold: int
) -> None:
    """Reject unknown cold-start knobs before any environment is built."""
    if pool_policy not in ("queue", "cold", "hybrid"):
        raise ValueError(
            f"pool_policy must be 'queue', 'cold' or 'hybrid', got {pool_policy!r}"
        )
    if start_model not in SANDBOX_PROFILES:
        raise ValueError(
            f"start_model must be one of {sorted(SANDBOX_PROFILES)}, got {start_model!r}"
        )
    if keepalive_ns < 0:
        raise ValueError(f"keepalive_ns must be >= 0, got {keepalive_ns}")
    if hybrid_threshold < 1:
        raise ValueError(f"hybrid_threshold must be >= 1, got {hybrid_threshold}")


def _report_profile(profiler, destination: Union[bool, str]) -> None:
    """Print the top-25 cumulative-time entries; archive when a path is given."""
    import io
    import pstats

    out = io.StringIO()
    stats = pstats.Stats(profiler, stream=out)
    stats.sort_stats("cumulative").print_stats(25)
    text = out.getvalue()
    print(text)
    if isinstance(destination, str):
        stats.dump_stats(destination)
        with open(destination + ".txt", "w") as handle:
            handle.write(text)
        print(f"profile archived to {destination} (+ .txt)")


def run_scale(
    invocations: int = 1_000_000,
    workers: int = 1 << 20,
    scheduler: str = "wheel",
    seed: int = 0x5CA1E,
    mean_arrival_gap_ns: int = 250,
    service_log_mean: float = 19.8,
    service_log_sigma: float = 0.6,
    lease_check_interval_ns: int = ms(64),
    granularity_bits: Union[int, str] = "auto",
    admission: str = "batch",
    lease_lane: str = "on",
    subbits: int = 8,
    shards: int = 1,
    parallel: int = 1,
    arrival_shape: str = "poisson",
    shard_split: str = "partition",
    burst_len: int = 64,
    burst_intra_gap_ns: int = 1,
    diurnal_period_ns: int = 0,
    diurnal_multipliers: tuple = DIURNAL_DAY,
    pool_policy: str = "queue",
    start_model: str = "remote-fork",
    keepalive_ns: int = 0,
    hybrid_threshold: int = 64,
    cache_dir: Optional[str] = None,
    profile: Union[bool, str, None] = None,
):
    """Drive the open-loop scale scenario once and measure it.

    The quick (CI) configuration shrinks ``invocations`` and
    ``workers`` so the pool saturates and the FIFO backlog path is
    exercised; the paper-scale default instead saturates the *timer*
    population (~10^6 concurrently pending lease/service timers).

    ``shards > 1`` (or a non-Poisson ``arrival_shape``) routes through
    :func:`run_scale_sharded`, which decomposes the scenario and fans
    the shards out over ``parallel`` worker processes; the single-shard
    Poisson path below is byte-for-byte the PR 4 engine.
    """
    validate_granularity_bits(granularity_bits)
    _validate_admission(admission)
    _validate_lease_lane(lease_lane)
    _validate_pool_policy(pool_policy, start_model, keepalive_ns, hybrid_threshold)
    if shards != 1 or arrival_shape != "poisson":
        if profile:
            raise ValueError("--profile supports the single-shard poisson path only")
        return run_scale_sharded(
            invocations=invocations,
            workers=workers,
            shards=max(1, shards),
            scheduler=scheduler,
            seed=seed,
            mean_arrival_gap_ns=mean_arrival_gap_ns,
            service_log_mean=service_log_mean,
            service_log_sigma=service_log_sigma,
            lease_check_interval_ns=lease_check_interval_ns,
            granularity_bits=granularity_bits,
            admission=admission,
            lease_lane=lease_lane,
            subbits=subbits,
            arrival_shape=arrival_shape,
            shard_split=shard_split,
            burst_len=burst_len,
            burst_intra_gap_ns=burst_intra_gap_ns,
            diurnal_period_ns=diurnal_period_ns,
            diurnal_multipliers=diurnal_multipliers,
            pool_policy=pool_policy,
            start_model=start_model,
            keepalive_ns=keepalive_ns,
            hybrid_threshold=hybrid_threshold,
            parallel=parallel,
            cache_dir=cache_dir,
        )
    config = ScaleConfig(
        invocations=invocations,
        workers=workers,
        mean_arrival_gap_ns=mean_arrival_gap_ns,
        service_log_mean=service_log_mean,
        service_log_sigma=service_log_sigma,
        lease_check_interval_ns=lease_check_interval_ns,
        seed=seed,
        scheduler=scheduler,
        granularity_bits=granularity_bits,
        admission=admission,
        lease_lane=lease_lane,
        subbits=subbits,
        pool_policy=pool_policy,
        start_model=start_model,
        keepalive_ns=keepalive_ns,
        hybrid_threshold=hybrid_threshold,
    )
    env_kwargs = {"granularity_bits": granularity_bits} if scheduler == "wheel" else {}
    env = new_environment(config.scheduler, **env_kwargs)
    if admission == "batch" or pool_policy != "queue":
        # Batch admission consumes the pre-generated arrival stream, so
        # the 1-shard ShardDriver *is* the unsharded engine; the
        # chained-gap _OpenLoopDriver stays as the per-event baseline.
        # Cold-start policies also route here: _OpenLoopDriver draws
        # services at dispatch time, which is invalid once the cold
        # decision depends on arrival-order service draws.
        driver: Any = _ShardDriver(env, config, 0, 1)
    else:
        driver = _OpenLoopDriver(env, config)
    driver.start()

    # The FSM allocates no reference cycles, so generational GC scans
    # over ~10^6 live timers are pure overhead; collect once, run with
    # the collector off, restore afterwards.
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    started = time.perf_counter()
    try:
        if profile:
            # Opt-in cProfile wrap of the drive loop only (satellite:
            # keeps "next rung" decisions data-driven).  The tracing
            # overhead disqualifies the run from benchmarking; results
            # stay valid -- profiling changes no simulated state.
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
            try:
                driver.drive()
            finally:
                profiler.disable()
                _report_profile(profiler, profile)
        else:
            driver.drive()
    finally:
        if gc_was_enabled:
            gc.enable()
    wall_s = time.perf_counter() - started
    driver.finish()

    if driver.completed != config.invocations:
        raise RuntimeError(
            f"open-loop run lost invocations: {driver.completed} of {config.invocations}"
        )
    summary = driver.stream.summarize()
    summary = replace(summary, mean=driver.sojourn_total / summary.count)
    return ScaleResult(
        scheduler=config.scheduler or "heap",
        invocations=config.invocations,
        workers=config.workers,
        completed=driver.completed,
        events_processed=env.events_processed,
        wall_s=wall_s,
        events_per_sec=env.events_processed / wall_s if wall_s > 0 else 0.0,
        peak_rss_bytes=_peak_rss_bytes(),
        final_now_ns=env.now,
        max_backlog=driver.max_backlog,
        queued=driver.queued,
        timeout_pool_hits=env.timeout_pool_hits,
        latency=summary,
        stream_buckets=len(driver.stream.histogram),
        occupancy=dict(driver.occupancy_peaks),
        cold_starts=getattr(driver, "cold_starts", 0),
        cold_busy_ns=getattr(driver, "cold_busy_ns", 0),
        cold_reclaimed=getattr(driver, "cold_reclaimed", 0),
        cold_retained=getattr(driver, "cold_retained", 0),
    )


# -- sharded engine ----------------------------------------------------


def _shard_invocations(invocations: int, shards: int, shard: int) -> int:
    """Arrivals owned by *shard*: ``#{i < N : i % K == shard}``."""
    return (invocations - shard + shards - 1) // shards


def _shard_slots(workers: int, shards: int, shard: int) -> int:
    """Warm-pool slice for *shard*: W//K plus one of the W%K leftovers."""
    return workers // shards + (1 if shard < workers % shards else 0)


def _draw_services(rng, size: int, config: ScaleConfig):
    """*size* clipped log-normal service times -- the PR 4 recipe."""
    draws = rng.lognormal(config.service_log_mean, config.service_log_sigma, size=size)
    return np.clip(draws.astype(np.int64), config.min_service_ns, config.max_service_ns)


def _shard_chunks(config: ScaleConfig, shard: int, shards: int, lists: bool = True):
    """Yield this shard's ``(arrival_times, services)`` chunks.

    Consumption order is arrival order, so services are assigned by
    **arrival index**, not dispatch order -- the property that makes the
    decomposition independent of each shard's queueing dynamics.

    With ``lists=True`` (the per-event driver) arrival times come as
    Python lists for cheap scalar iteration; with ``lists=False`` they
    stay ``int64`` arrays, ready for vectorized ``schedule_batch``
    admission.  Services are always lists (indexed one at a time).
    """
    shape_kwargs = dict(
        burst_len=config.burst_len,
        burst_intra_gap_ns=config.burst_intra_gap_ns,
        diurnal_period_ns=config.diurnal_period_ns,
        diurnal_multipliers=config.diurnal_multipliers,
        chunk=_RNG_CHUNK,
    )
    if config.shard_split == "thin":
        # Independent streams: shard k is its own Poisson-thinned
        # process at 1/K of the rate, seeded by derive_seed(root,
        # "shard", k) -- nothing global is generated twice.
        streams = RngStreams(shard_seed(config.seed, shard))
        count = _shard_invocations(config.invocations, shards, shard)
        service_rng = streams.stream("service")
        for times in arrival_times(
            config.arrival_shape,
            streams.stream("arrivals"),
            count,
            config.mean_arrival_gap_ns * shards,
            **shape_kwargs,
        ):
            services = _draw_services(service_rng, times.size, config).tolist()
            yield (times.tolist() if lists else times), services
        return
    if config.shard_split != "partition":
        raise ValueError(
            f"shard_split must be 'partition' or 'thin', got {config.shard_split!r}"
        )
    # Partition: replay the global streams (same chunk sizes as the
    # unsharded driver, so the draws are the identical prefix) and keep
    # every K-th arrival.  Redundant generation costs O(N) vectorized
    # draws per shard -- noise next to the O(N/K) simulation itself.
    streams = RngStreams(config.seed)
    service_rng = streams.stream("service")
    index = 0
    for times in arrival_times(
        config.arrival_shape,
        streams.stream("arrivals"),
        config.invocations,
        config.mean_arrival_gap_ns,
        **shape_kwargs,
    ):
        services = _draw_services(service_rng, times.size, config)
        mine = (np.arange(index, index + times.size) % shards) == shard
        index += times.size
        if mine.any():
            kept = times[mine]
            yield (kept.tolist() if lists else kept), services[mine].tolist()


class _ShardDriver:
    """The open-loop FSM over a pre-decomposed arrival/service stream.

    Same lease/backlog machinery as :class:`_OpenLoopDriver`, but
    arrivals come as absolute times with services pre-assigned per
    arrival index, so any slice of the global scenario replays
    identically whatever happens in the other shards.

    Two admission modes (``config.admission``):

    * ``"per-event"`` -- one ``timeout()`` per arrival, chained from the
      previous arrival's callback: the PR 5 baseline.
    * ``"batch"`` -- each pre-generated arrival chunk is bucket-sorted
      into the scheduler in one vectorized ``schedule_batch`` call; the
      arrival callback just consumes the pre-assigned service stream
      and admits the next chunk when the current one is exhausted.
      ~10^6 Python ``timeout()`` calls per shard collapse into ~16
      numpy passes.
    """

    __slots__ = (
        "env",
        "config",
        "stream",
        "backlog",
        "free_slots",
        "count",
        "arrived",
        "completed",
        "queued",
        "max_backlog",
        "occupancy_peaks",
        "_interval",
        "_chunks",
        "_times",
        "_services",
        "_pos",
        "_next_time",
        "_next_service",
        "_buffer",
        "sojourn_total",
        "_batch",
        "_lane_mode",
        "_lease_cbs",
        "_schedule",
        "_kernel_sync",
        "_kernel_drive",
        "_on_arrival",
        "_on_lease",
        "_is_wheel",
        "_cold_mode",
        "_threshold",
        "_spawn",
        "_keepalive",
        "cold_starts",
        "cold_busy_ns",
        "cold_reclaimed",
        "cold_retained",
        "cold_alive",
        "_cold_cbs",
        "_reclaim_cbs",
        "_on_cold",
        "_on_reclaim",
    )

    def __init__(self, env, config: ScaleConfig, shard: int, shards: int) -> None:
        self.env = env
        self.config = config
        self.stream = StreamingSummary(config.subbits)
        self.backlog: deque[tuple[int, int]] = deque()
        self.free_slots = _shard_slots(config.workers, shards, shard)
        self.count = _shard_invocations(config.invocations, shards, shard)
        self.arrived = 0
        self.completed = 0
        self.queued = 0
        self.max_backlog = 0
        self.occupancy_peaks: dict[str, int] = {}
        self._interval = config.lease_check_interval_ns
        self._batch = config.admission == "batch"
        self._chunks = _shard_chunks(config, shard, shards, lists=not self._batch)
        self._times: list[int] = []
        self._services: list[int] = []
        self._pos = 0
        self._next_time = 0
        self._next_service = 0
        self._buffer: list[int] = []
        self.sojourn_total = 0
        # Batch mode installs a closure kernel in start(); the method
        # FSM below serves per-event mode.
        self._on_arrival = self._handle_arrival
        self._on_lease = self._handle_lease
        #: One shared callbacks tuple for every lease timeout: the run
        #: loop only reads and detaches callbacks, so re-arms and fresh
        #: dispatches alike avoid a per-event list allocation.
        self._lease_cbs = (self._on_lease,)
        #: Bound once: ~7 re-arms per invocation go through this.
        self._schedule = env.schedule_timeout
        self._kernel_sync: Any = None
        self._kernel_drive: Any = None
        self._is_wheel = isinstance(env, WheelEnvironment)
        #: Lease-lane engine is effective only where its preconditions
        #: hold: a wheel (the lane attaches to WheelEnvironment) driven
        #: in batch mode (the fused kernel owns the callbacks the bulk
        #: drain's counted-completion shortcut relies on).
        self._lane_mode = (
            config.lease_lane == "on" and self._batch and self._is_wheel
        )
        # -- cold-start path (pool_policy != "queue") ------------------
        policy = config.pool_policy
        self._cold_mode = policy != "queue"
        #: Backlog depth at which a dry-pool arrival goes cold instead
        #: of queueing: 0 = always ("cold"), huge = never ("queue").
        if policy == "cold":
            self._threshold = 0
        elif policy == "hybrid":
            self._threshold = config.hybrid_threshold
        else:
            self._threshold = 1 << 62
        self._spawn = SANDBOX_PROFILES[config.start_model].spawn_ns(1)
        self._keepalive = config.keepalive_ns
        self.cold_starts = 0
        self.cold_busy_ns = 0
        self.cold_reclaimed = 0
        self.cold_retained = 0
        self.cold_alive = 0
        self._on_cold = self._handle_cold
        self._on_reclaim = self._handle_reclaim
        self._cold_cbs = (self._on_cold,)
        self._reclaim_cbs = (self._on_reclaim,)

    def _advance(self) -> None:
        """Prefetch the next (arrival time, service) pair."""
        pos = self._pos
        while pos >= len(self._times):
            self._times, self._services = next(self._chunks)
            pos = 0
        self._next_time = self._times[pos]
        self._next_service = self._services[pos]
        self._pos = pos + 1

    def start(self) -> None:
        if self.count < 1:
            raise ValueError("shard needs at least one invocation")
        if self.free_slots < 1:
            raise ValueError("shard needs at least one warm slot")
        if self._batch:
            if self._cold_mode and self._lane_mode:
                self._install_cold_kernel()
            elif self._lane_mode:
                self._install_lane_kernel()
            else:
                self._install_batch_kernel()
            return
        self._advance()
        timeout = self.env.timeout(self._next_time)
        timeout.callbacks.append(self._on_arrival)

    def drive(self) -> None:
        """Run the simulation to completion (fused loop when available)."""
        kernel = self._kernel_drive
        if kernel is not None:
            kernel()
        else:
            self.env.run()

    def _install_batch_kernel(self) -> None:
        """Build the batch-mode FSM as closures and admit the first chunk.

        The arrival/lease handlers run ~9 million times per million
        invocations; closing their state over cells (LOAD_DEREF) instead
        of attribute access roughly halves the interpreter work per
        event.  Three further hot-path savings over the method FSM:

        * the just-processed arrival BatchEvent is *reused* as its own
          lease timer (value/callbacks re-set, rescheduled) -- a
          dispatch allocates nothing;
        * a completed lease event is likewise reused for the backlogged
          invocation it hands its slot to;
        * the dominant re-arm destination -- a level-0 wheel slot ahead
          of the cursor -- is filed inline against stable wheel
          internals (``_slots0``/``_mask0``/``_eid`` never change
          identity, even across re-anchors), with everything else
          falling back to ``schedule_timeout``.  The entry tuples and
          eid allocation points are identical, so pop order -- hence the
          fingerprint -- is untouched.

        Simulated-domain state is written back by ``finish()`` via the
        ``_sync`` closure; ``_buffer``/``backlog``/``occupancy_peaks``
        are shared mutable objects and need no sync.
        """
        env = self.env
        schedule = env.schedule_timeout
        schedule_batch = env.schedule_batch
        interval = self._interval
        flush_batch = _FLUSH_BATCH
        flush = self._flush
        sample = self._sample_wheel
        buffer = self._buffer
        backlog = self.backlog
        chunks = self._chunks
        total = self.count
        is_wheel = self._is_wheel
        if is_wheel:
            slots0 = env._slots0
            mask0 = env._mask0
            eid = env._eid
            # Bound once: _eid is never rebound, even across re-anchors.
            eidn = eid.__next__
        else:
            slots0 = mask0 = eid = eidn = None
        free_slots = self.free_slots
        arrived = 0
        completed = 0
        queued = 0
        max_backlog = 0
        services: list[int] = []
        nservices = 0
        pos = 0
        lease_cbs: tuple = ()
        # Cold-start knobs (threshold is 1 << 62 under "queue", so the
        # saturated-arrival path costs one extra int compare).
        spawn = self._spawn
        keepalive = self._keepalive
        threshold = self._threshold
        cold_starts = 0
        cold_busy_ns = 0
        cold_reclaimed = 0
        cold_retained = 0
        cold_alive = 0
        cold_cbs: tuple = ()
        reclaim_cbs: tuple = ()

        def admit_chunk() -> None:
            nonlocal services, nservices, pos
            times, services = next(chunks)
            nservices = len(services)
            pos = 0
            schedule_batch(times, on_arrival, _ARRIVAL_PRIO)

        def on_arrival(event) -> None:
            nonlocal pos, arrived, free_slots, queued, max_backlog
            nonlocal cold_starts, cold_busy_ns
            now = env._now
            service = services[pos]
            pos += 1
            arrived += 1
            # Admit the successor chunk from the *last* arrival of the
            # current one, before its dispatch -- the same point in the
            # event order where the per-event driver schedules its next
            # arrival timeout.
            if pos == nservices and arrived < total:
                admit_chunk()
            if free_slots:
                free_slots -= 1
                buffer.append(service)  # sojourn: zero wait + service
                if len(buffer) >= flush_batch:
                    flush()
                event._value = now + service
                event.callbacks = lease_cbs
                delay = service if service <= interval else interval
                if is_wheel:
                    when = now + delay
                    s0 = when >> env._gbits
                    d0 = s0 - env._cursor
                    if 0 < d0 <= mask0:
                        slots0[s0 & mask0].append((when, 1, next(eid), event))
                        env._l0_count += 1
                        return
                schedule(event, delay)
            elif len(backlog) >= threshold:
                cold_starts += 1
                cold_busy_ns += spawn + service
                schedule(BatchEvent(env, cold_cbs, service), spawn)
            else:
                backlog.append((now, service))
                queued += 1
                if len(backlog) > max_backlog:
                    max_backlog = len(backlog)

        def on_lease(event) -> None:
            nonlocal completed, free_slots
            now = env._now
            remaining = event._value - now
            if remaining > 0:
                # The lease descriptor is a tuple, so the loop never
                # detached it: re-arming is just a re-insert.
                delay = interval if remaining > interval else remaining
                if is_wheel:
                    when = now + delay
                    s0 = when >> env._gbits
                    d0 = s0 - env._cursor
                    if 0 < d0 <= mask0:
                        slots0[s0 & mask0].append((when, 1, next(eid), event))
                        env._l0_count += 1
                        return
                schedule(event, delay)
                return
            completed += 1
            if not completed & 0x3FF and is_wheel:
                sample()
            if backlog:
                arrival_ns, service = backlog.popleft()
                buffer.append(now - arrival_ns + service)
                if len(buffer) >= flush_batch:
                    flush()
                event._value = now + service
                delay = service if service <= interval else interval
                if is_wheel:
                    when = now + delay
                    s0 = when >> env._gbits
                    d0 = s0 - env._cursor
                    if 0 < d0 <= mask0:
                        slots0[s0 & mask0].append((when, 1, next(eid), event))
                        env._l0_count += 1
                        return
                schedule(event, delay)
            else:
                free_slots += 1

        def on_cold(event) -> None:
            """Sandbox ready: record the cold sojourn and start the
            invocation on the new executor, reusing the spin-up event as
            its lease timer (lease eid first, reclaim eid second -- the
            interleave the vectorized cold lane's bulk reservations
            replicate).  Dispatched through the generic/foreign path:
            cold events are rare by construction, so they never earn a
            fused branch."""
            nonlocal cold_alive
            now = env._now
            service = event._value
            buffer.append(spawn + service)
            if len(buffer) >= flush_batch:
                flush()
            cold_alive += 1
            event._value = now + service
            event.callbacks = lease_cbs
            schedule(event, service if service <= interval else interval)
            if keepalive:
                schedule(BatchEvent(env, reclaim_cbs, 0), keepalive)

        def on_reclaim_ev(_event) -> None:
            """Idle-reclaim expiry: tear one cold executor down iff the
            pool has an idle slot to give back."""
            nonlocal free_slots, cold_alive, cold_reclaimed, cold_retained
            if free_slots and cold_alive:
                free_slots -= 1
                cold_alive -= 1
                cold_reclaimed += 1
            else:
                cold_retained += 1

        def drive() -> None:
            """Fused event loop: the wheel's pop fast path with both
            kernel handlers inlined.

            ``WheelEnvironment.run`` costs a Python call frame, an
            ``env._now`` store, a class check and a failure check per
            event before the handler does any work; at ~9 events per
            invocation that overhead alone is seconds per million
            invocations.  This loop recognizes the kernel's own events
            by their dispatch-descriptor identity (``lease_cbs``, or a
            tuple holding ``on_arrival``) and runs the handler bodies
            inline with ``now`` kept in a local.  Everything the run
            loop would have done for these events is replicated: same
            pop order (identical guard structure over the same spill /
            overflow / active objects), same ``events_processed``
            accounting, and ``env._now`` / ``env._ai`` are synced
            before any call that can observe them (``_pop``, the
            ``schedule_timeout`` fallback, chunk admission, occupancy
            sampling, foreign callbacks) and in ``finally``.  The
            failure check is skipped only for the kernel's own events,
            which are constructed ``_ok`` and never fail; foreign
            events get the full generic treatment.  Invariants relied
            on: callbacks never rebind ``_active`` / ``_spill`` /
            ``_queue`` (refill and re-anchor drain them in place, and
            only inside ``_pop``), and inline L0 inserts never target
            the active bucket (``0 < d0`` excludes the cursor slot).
            """
            nonlocal pos, arrived, completed, free_slots, queued, max_backlog
            nonlocal cold_starts, cold_busy_ns
            pop = env._pop
            spill = env._spill
            overflow = env._queue
            active = env._active
            ai = env._ai
            alen = len(active)
            processed = 0
            now = env._now
            # Shadowed wheel state, valid between "cold" calls (_pop,
            # the schedule fallback, chunk admission, foreign
            # callbacks): _gbits/_cursor only change inside those calls,
            # so they live in locals and are re-read afterwards;
            # inline-insert increments of _l0_count accumulate in
            # l0_add and are flushed to the wheel before every cold
            # call (whose dry-wheel checks read the true count) and on
            # exit.  `clear` is True while the spill and overflow heaps
            # are both empty -- they only gain entries during cold
            # calls and only drain here -- letting the common case
            # skip both head-comparison guards per event.
            gbits = env._gbits
            cursor = env._cursor
            l0_add = 0
            clear = not spill and not overflow
            try:
                while True:
                    if ai < alen:
                        if clear:
                            entry = active[ai]
                            active[ai] = None
                            ai += 1
                        else:
                            entry = active[ai]
                            if spill and spill[0] < entry:
                                head = spill[0]
                                if overflow and overflow[0] < head:
                                    entry = heappop(overflow)
                                else:
                                    entry = heappop(spill)
                                clear = not spill and not overflow
                            elif overflow and overflow[0] < entry:
                                entry = heappop(overflow)
                                clear = not spill and not overflow
                            else:
                                active[ai] = None
                                ai += 1
                    else:
                        env._ai = ai
                        env._now = now
                        if l0_add:
                            env._l0_count += l0_add
                            l0_add = 0
                        try:
                            entry = pop()
                        except IndexError:
                            return
                        active = env._active
                        ai = env._ai
                        alen = len(active)
                        gbits = env._gbits
                        cursor = env._cursor
                        clear = not spill and not overflow
                    now = entry[0]
                    event = entry[3]
                    processed += 1
                    cbs = event.callbacks
                    if cbs is lease_cbs:
                        deadline = event._value
                        if deadline > now:
                            when = now + interval
                            if when > deadline:
                                when = deadline
                            s0 = when >> gbits
                            d0 = s0 - cursor
                            if 0 < d0 <= mask0:
                                slots0[s0 & mask0].append((when, 1, eidn(), event))
                                l0_add += 1
                            else:
                                env._now = now
                                env._ai = ai
                                if l0_add:
                                    env._l0_count += l0_add
                                    l0_add = 0
                                schedule(event, when - now)
                                gbits = env._gbits
                                cursor = env._cursor
                                clear = not spill and not overflow
                            continue
                        completed += 1
                        if not completed & 0x3FF:
                            env._now = now
                            env._ai = ai
                            if l0_add:
                                env._l0_count += l0_add
                                l0_add = 0
                            sample()
                        if backlog:
                            arrival_ns, service = backlog.popleft()
                            buffer.append(now - arrival_ns + service)
                            if len(buffer) >= flush_batch:
                                # flush() force-samples occupancy: give
                                # it the true wheel state first.
                                env._now = now
                                env._ai = ai
                                if l0_add:
                                    env._l0_count += l0_add
                                    l0_add = 0
                                flush()
                            deadline = now + service
                            event._value = deadline
                            when = now + interval
                            if when > deadline:
                                when = deadline
                            s0 = when >> gbits
                            d0 = s0 - cursor
                            if 0 < d0 <= mask0:
                                slots0[s0 & mask0].append((when, 1, eidn(), event))
                                l0_add += 1
                            else:
                                env._now = now
                                env._ai = ai
                                if l0_add:
                                    env._l0_count += l0_add
                                    l0_add = 0
                                schedule(event, when - now)
                                gbits = env._gbits
                                cursor = env._cursor
                                clear = not spill and not overflow
                        else:
                            free_slots += 1
                        continue
                    if cbs.__class__ is tuple and cbs[0] is on_arrival:
                        service = services[pos]
                        pos += 1
                        arrived += 1
                        if pos == nservices and arrived < total:
                            env._now = now
                            env._ai = ai
                            if l0_add:
                                env._l0_count += l0_add
                                l0_add = 0
                            admit_chunk()
                            gbits = env._gbits
                            cursor = env._cursor
                            clear = not spill and not overflow
                        if free_slots:
                            free_slots -= 1
                            buffer.append(service)
                            if len(buffer) >= flush_batch:
                                # flush() force-samples occupancy: give
                                # it the true wheel state first.
                                env._now = now
                                env._ai = ai
                                if l0_add:
                                    env._l0_count += l0_add
                                    l0_add = 0
                                flush()
                            deadline = now + service
                            event._value = deadline
                            event.callbacks = lease_cbs
                            when = now + interval
                            if when > deadline:
                                when = deadline
                            s0 = when >> gbits
                            d0 = s0 - cursor
                            if 0 < d0 <= mask0:
                                slots0[s0 & mask0].append((when, 1, eidn(), event))
                                l0_add += 1
                            else:
                                env._now = now
                                env._ai = ai
                                if l0_add:
                                    env._l0_count += l0_add
                                    l0_add = 0
                                schedule(event, when - now)
                                gbits = env._gbits
                                cursor = env._cursor
                                clear = not spill and not overflow
                        elif len(backlog) >= threshold:
                            cold_starts += 1
                            cold_busy_ns += spawn + service
                            env._now = now
                            env._ai = ai
                            if l0_add:
                                env._l0_count += l0_add
                                l0_add = 0
                            schedule(BatchEvent(env, cold_cbs, service), spawn)
                            gbits = env._gbits
                            cursor = env._cursor
                            clear = not spill and not overflow
                        else:
                            backlog.append((now, service))
                            queued += 1
                            blen = len(backlog)
                            if blen > max_backlog:
                                max_backlog = blen
                        continue
                    # Foreign event: full generic run-loop semantics.
                    env._now = now
                    env._ai = ai
                    if l0_add:
                        env._l0_count += l0_add
                        l0_add = 0
                    if cbs.__class__ is tuple:
                        cbs[0](event)
                    else:
                        event.callbacks = None
                        for callback in cbs:
                            callback(event)
                    if not event._ok and not event._defused:
                        exc = event._value
                        if isinstance(exc, BaseException):
                            raise exc
                        raise RuntimeError(f"event failed with non-exception {exc!r}")
                    gbits = env._gbits
                    cursor = env._cursor
                    clear = not spill and not overflow
            finally:
                env._ai = ai
                env._now = now
                if l0_add:
                    env._l0_count += l0_add
                env.events_processed += processed

        def sync() -> None:
            self.arrived = arrived
            self.completed = completed
            self.queued = queued
            self.max_backlog = max_backlog
            self.free_slots = free_slots
            self.cold_starts = cold_starts
            self.cold_busy_ns = cold_busy_ns
            self.cold_reclaimed = cold_reclaimed
            self.cold_retained = cold_retained
            self.cold_alive = cold_alive

        lease_cbs = (on_lease,)
        cold_cbs = (on_cold,)
        reclaim_cbs = (on_reclaim_ev,)
        self._on_arrival = on_arrival
        self._on_lease = on_lease
        self._lease_cbs = lease_cbs
        self._on_cold = on_cold
        self._on_reclaim = on_reclaim_ev
        self._cold_cbs = cold_cbs
        self._reclaim_cbs = reclaim_cbs
        self._kernel_sync = sync
        # The fused loop leans on wheel internals; heap-batch runs keep
        # the generic Environment.run dispatch over the same closures.
        self._kernel_drive = drive if is_wheel else None
        admit_chunk()

    def _install_lane_kernel(self) -> None:
        """Batch kernel variant with lease timers in the LeaseLane.

        Arrivals still enter the wheel through ``schedule_batch`` and
        are dispatched by the fused loop below, but a dispatch admits
        its lease into the struct-of-arrays lane instead of scheduling
        a wheel event -- so the wheel carries one event per invocation
        while the ~7 re-validations each live as three int64 cells,
        fired in vectorized slabs between wheel pops.

        Bit-identity with the lane-off kernel (hence with the per-event
        heap referee) holds because every eid is allocated at the same
        sequence point per-event execution would allocate it:

        * ``lane.admit`` draws ``next(env._eid)`` at dispatch, exactly
          where the lane-off kernel's inline L0 insert draws it;
        * slab re-arms draw a contiguous ``reserve_eids`` block in
          deadline order -- the order per-event fires would draw them --
          and completions draw none, so deferring their callbacks to a
          counted bulk total commutes (they only ever do
          ``completed += 1; free_slots += 1``);
        * the lane is drained up to the next wheel entry's ``(when,
          priority, eid)`` key before that entry is dispatched, so the
          global fire order (and with it every tie-break between a
          lease deadline and an arrival at the same nanosecond) is the
          per-event order;
        * while the backlog is non-empty a completion's callback is
          observable (it pops the backlog, records a sojourn, admits a
          new lease), so the drain runs its exact scalar path until the
          backlog drains -- ``exact=backlog`` hands the deque itself to
          the lane as the switch.

        The wheel shadowing is simpler than the lane-off kernel's: no
        lease ever enters the wheel, so there are no inline inserts and
        no ``gbits``/``cursor``/``l0_add`` locals -- only the pop fast
        path over ``active``/``ai`` and the spill/overflow guards.
        """
        env = self.env
        schedule_batch = env.schedule_batch
        interval = self._interval
        flush_batch = _FLUSH_BATCH
        flush = self._flush
        sample = self._sample_wheel
        buffer = self._buffer
        backlog = self.backlog
        chunks = self._chunks
        total = self.count
        lane = env.attach_lease_lane(interval)
        admit = lane.admit
        drain = lane.drain
        head_key = lane.head_key
        free_slots = self.free_slots
        arrived = 0
        completed = 0
        queued = 0
        max_backlog = 0
        services: list[int] = []
        nservices = 0
        pos = 0
        # Cached lane head key; -1 deadline means "lane empty".  Kept
        # current by comparing after every admit and re-reading after
        # every drain, so the per-event merge check is two int compares.
        lane_dl = -1
        lane_eid = 0

        def on_complete(when: int) -> None:
            """Scalar-exact completion (the lane's drain calls this only
            on its exact path, where per-completion effects are
            observable; bulk drains return a count instead)."""
            nonlocal completed, free_slots
            completed += 1
            if not completed & 0x3FF:
                sample()
            if backlog:
                arrival_ns, service = backlog.popleft()
                buffer.append(when - arrival_ns + service)
                if len(buffer) >= flush_batch:
                    flush()
                admit(
                    when + (service if service <= interval else interval),
                    when + service,
                )
            else:
                free_slots += 1

        lane.on_complete = on_complete

        def admit_chunk() -> None:
            nonlocal services, nservices, pos
            times, services = next(chunks)
            nservices = len(services)
            pos = 0
            schedule_batch(times, on_arrival, _ARRIVAL_PRIO)

        def on_arrival(event) -> None:
            """Generic-dispatch arrival body (used if anything other
            than the fused loop pops an arrival; the loop inlines it)."""
            nonlocal pos, arrived, free_slots, queued, max_backlog
            nonlocal lane_dl, lane_eid
            now = env._now
            service = services[pos]
            pos += 1
            arrived += 1
            if pos == nservices and arrived < total:
                admit_chunk()
            if free_slots:
                free_slots -= 1
                buffer.append(service)
                if len(buffer) >= flush_batch:
                    flush()
                when = now + (service if service <= interval else interval)
                eid = admit(when, now + service)
                if lane_dl < 0 or when < lane_dl or (when == lane_dl and eid < lane_eid):
                    lane_dl = when
                    lane_eid = eid
            else:
                backlog.append((now, service))
                queued += 1
                if len(backlog) > max_backlog:
                    max_backlog = len(backlog)

        def drive() -> None:
            """Fused loop: wheel pop fast path + deferred lane drains.

            While the backlog is empty, due lease fires are *deferred*
            past arrival dispatches: a pending completion could only
            raise ``free_slots`` (which an already-dispatchable arrival
            never observes) and a re-arm touches nothing outside the
            lane, so postponing them is observably identical -- and it
            batches what would be 1-3 fires per arrival into one slab
            per deferral window.  The three points where deferral would
            become observable force a catch-up drain first:

            * an arrival finding ``free_slots == 0`` (pending
              completions might have freed a slot; drain up to the
              arrival's key, then re-check);
            * a chunk admission (it draws a block of wheel eids, and
              deferred lane draws must not cross it or later
              lease-vs-arrival ties at equal nanoseconds would break
              the other way);
            * the wheel running dry (the tail drain).

            While the backlog is non-empty every completion is
            observable (it pops the backlog), so the lane drains to
            exact per-event order before *every* wheel entry, scalar
            while the deque is non-empty (``exact=backlog``).

            Deferral permutes eid draws only among lane-internal
            entries between two chunk admissions; lane-vs-lane ties at
            equal deadlines have commuting effects (completions count,
            re-arms are invisible, and tied backlog handoffs pop the
            same FIFO either way), so every fingerprint observable is
            bit-identical to per-event execution.

            ``env._now``/``env._ai`` are synced before every call that
            can observe them (drain, _pop, chunk admission, flush,
            sampling, foreign callbacks) and in ``finally``; drains
            never touch wheel structures, so the shadowed pop state
            stays valid across them.
            """
            nonlocal pos, arrived, completed, free_slots, queued, max_backlog
            nonlocal lane_dl, lane_eid
            pop = env._pop
            spill = env._spill
            overflow = env._queue
            active = env._active
            ai = env._ai
            alen = len(active)
            processed = 0
            now = env._now
            clear = not spill and not overflow
            try:
                while True:
                    if ai < alen:
                        if clear:
                            entry = active[ai]
                            active[ai] = None
                            ai += 1
                        else:
                            entry = active[ai]
                            if spill and spill[0] < entry:
                                head = spill[0]
                                if overflow and overflow[0] < head:
                                    entry = heappop(overflow)
                                else:
                                    entry = heappop(spill)
                                clear = not spill and not overflow
                            elif overflow and overflow[0] < entry:
                                entry = heappop(overflow)
                                clear = not spill and not overflow
                            else:
                                active[ai] = None
                                ai += 1
                    else:
                        env._ai = ai
                        env._now = now
                        try:
                            entry = pop()
                        except IndexError:
                            if lane_dl >= 0:
                                # Wheel empty, arrivals exhausted: one
                                # call drains every remaining lease
                                # generation to completion.
                                before = completed
                                fired, bulk, last = drain(None, 0, 0, backlog or None, False)
                                processed += fired
                                if bulk:
                                    completed += bulk
                                    free_slots += bulk
                                if last > now:
                                    now = last
                                env._now = now
                                lane_dl = -1
                                if (before >> 10) != (completed >> 10):
                                    sample()
                            return
                        active = env._active
                        ai = env._ai
                        alen = len(active)
                        clear = not spill and not overflow
                    when = entry[0]
                    prio = entry[1]
                    if backlog and lane_dl >= 0 and (
                        lane_dl < when
                        or (
                            lane_dl == when
                            and (prio > 1 or (prio == 1 and lane_eid < entry[2]))
                        )
                    ):
                        env._ai = ai
                        env._now = now
                        before = completed
                        fired, bulk, last = drain(when, prio, entry[2], backlog or None, False)
                        processed += fired
                        if bulk:
                            completed += bulk
                            free_slots += bulk
                        if last > now:
                            now = last
                        head = head_key()
                        if head is None:
                            lane_dl = -1
                        else:
                            lane_dl, lane_eid = head
                        if (before >> 10) != (completed >> 10):
                            env._now = now
                            sample()
                    event = entry[3]
                    now = when
                    processed += 1
                    cbs = event.callbacks
                    if cbs.__class__ is tuple and cbs[0] is on_arrival:
                        service = services[pos]
                        pos += 1
                        arrived += 1
                        if pos == nservices and arrived < total:
                            if lane_dl >= 0 and (
                                lane_dl < now
                                or (
                                    lane_dl == now
                                    and (prio > 1 or lane_eid < entry[2])
                                )
                            ):
                                # Catch up deferred lane fires before the
                                # chunk draws its eid block.
                                env._ai = ai
                                before = completed
                                fired, bulk, _last = drain(
                                    now, prio, entry[2], backlog or None, False
                                )
                                processed += fired
                                if bulk:
                                    completed += bulk
                                    free_slots += bulk
                                head = head_key()
                                if head is None:
                                    lane_dl = -1
                                else:
                                    lane_dl, lane_eid = head
                                if (before >> 10) != (completed >> 10):
                                    env._now = now
                                    sample()
                            env._now = now
                            env._ai = ai
                            admit_chunk()
                            clear = not spill and not overflow
                        if not free_slots and lane_dl >= 0 and (
                            lane_dl < now
                            or (
                                lane_dl == now
                                and (prio > 1 or lane_eid < entry[2])
                            )
                        ):
                            # Saturation check: deferred completions may
                            # have freed a slot; catch up, then re-test.
                            env._ai = ai
                            before = completed
                            fired, bulk, _last = drain(
                                now, prio, entry[2], backlog or None, False
                            )
                            processed += fired
                            if bulk:
                                completed += bulk
                                free_slots += bulk
                            head = head_key()
                            if head is None:
                                lane_dl = -1
                            else:
                                lane_dl, lane_eid = head
                            if (before >> 10) != (completed >> 10):
                                env._now = now
                                sample()
                        if free_slots:
                            free_slots -= 1
                            buffer.append(service)
                            if len(buffer) >= flush_batch:
                                env._now = now
                                env._ai = ai
                                flush()
                            lease_when = now + (
                                service if service <= interval else interval
                            )
                            eid = admit(lease_when, now + service)
                            if lane_dl < 0 or lease_when < lane_dl or (
                                lease_when == lane_dl and eid < lane_eid
                            ):
                                lane_dl = lease_when
                                lane_eid = eid
                        else:
                            backlog.append((now, service))
                            queued += 1
                            blen = len(backlog)
                            if blen > max_backlog:
                                max_backlog = blen
                        continue
                    # Foreign event: full generic run-loop semantics.
                    env._now = now
                    env._ai = ai
                    if cbs.__class__ is tuple:
                        cbs[0](event)
                    else:
                        event.callbacks = None
                        for callback in cbs:
                            callback(event)
                    if not event._ok and not event._defused:
                        exc = event._value
                        if isinstance(exc, BaseException):
                            raise exc
                        raise RuntimeError(f"event failed with non-exception {exc!r}")
                    clear = not spill and not overflow
                    head = head_key()
                    if head is None:
                        lane_dl = -1
                    else:
                        lane_dl, lane_eid = head
            finally:
                env._ai = ai
                env._now = now
                env.events_processed += processed

        def sync() -> None:
            self.arrived = arrived
            self.completed = completed
            self.queued = queued
            self.max_backlog = max_backlog
            self.free_slots = free_slots

        self._on_arrival = on_arrival
        self._kernel_sync = sync
        self._kernel_drive = drive
        admit_chunk()

    def _install_cold_kernel(self) -> None:
        """Install the cold-start kernel variant for this run's knobs.

        ``keepalive == 0`` (the default): the batch-wheel kernel
        extended with the vectorized ColdLane -- see
        :meth:`_install_cold_fast_kernel` for the commutation argument
        that makes whole-backlog spin-up slabs exact.  ``keepalive >
        0``: idle-reclaims force a strict per-head interleave, handled
        by :meth:`_install_cold_strict_kernel`.
        """
        if self._keepalive:
            self._install_cold_strict_kernel()
        else:
            self._install_cold_fast_kernel()

    def _install_cold_fast_kernel(self) -> None:
        """Batch-wheel kernel + vectorized ColdLane (keepalive = 0).

        Leases live in the wheel exactly as in the lane-off batch
        kernel: the reused-event / inline-L0 recipe absorbs the cold
        re-arm storm (every concurrent cold lease re-arms each
        ``interval``, and a saturated pool holds ~``service / gap``
        of them at once) at one list append per re-arm.  Routing those
        leases through the LeaseLane instead would pay a windowed
        ``searchsorted`` scan over its side blocks for every merge
        step -- measured at 10^6 invocations that is ~9M scans and
        dominates the whole run -- because cold slabs admit blocks of
        non-monotone deadlines behind the lane floor faster than the
        lane can retire them.

        What the ColdLane vectorizes is the *cold stream*: a dry-pool
        arrival that goes cold becomes three int64 cells in its
        spin-up calendar instead of a scheduled event, and the entire
        pending backlog fires as one slab
        (:meth:`~repro.sim.wheel.ColdLane.drain_spinups_all`) the
        moment the merge reaches the oldest ready time.  Under a
        saturated pool that is one ``spawn / gap``-sized slab (~4k
        spin-ups at the default 250 ns gap) per ``spawn`` of virtual
        time instead of one scalar fire wedged between every pair of
        arrivals.

        Exactness of the early slab: with idle-reclaim off nothing
        ever reads ``cold_alive``, and a spin-up fire's effects are
        functions of its own stored times -- the sojourn is ``spawn +
        service`` and its lease lands at ``ready + min(service,
        interval)``, strictly ahead of every already-dispatched event.
        Spin-up fires therefore commute with arrivals and completions.
        The slab admits its leases through ``schedule_batch`` sorted
        by deadline, so their eids are drawn in deadline order where
        the referee draws them in ready order; a tie at equal ``(when,
        priority)`` between two lease events is the only place that
        renumbering can flip a fire order, and lease fires commute
        among themselves (a re-arm touches only its own stored finish;
        completions are interchangeable -- the backlog pops FIFO and
        ``free_slots`` increments commute).  Every fingerprint
        aggregate (counter totals, the sojourn multiset into histogram
        buckets, exact min/max, the exact-integer mean) is order-free,
        so the fingerprint is the per-event referee's, bit for bit.
        """
        env = self.env
        schedule = env.schedule_timeout
        schedule_batch = env.schedule_batch
        insert = env._insert
        interval = self._interval
        flush_batch = _FLUSH_BATCH
        flush = self._flush
        sample = self._sample_wheel
        buffer = self._buffer
        backlog = self.backlog
        chunks = self._chunks
        total = self.count
        spawn = self._spawn
        threshold = self._threshold
        slots0 = env._slots0
        mask0 = env._mask0
        eid = env._eid
        # Bound once: _eid is never rebound on this path (reserve_eids
        # is never called with keepalive off).
        eidn = eid.__next__
        free_slots = self.free_slots
        arrived = 0
        completed = 0
        queued = 0
        max_backlog = 0
        cold_starts = 0
        cold_busy_ns = 0
        cold_alive = 0
        services: list[int] = []
        nservices = 0
        pos = 0
        lease_cbs: tuple = ()
        # Cached cold-lane head ready time; -1 means "empty".  Ready
        # times are monotone in admission order (now + spawn), so only
        # the first admission after a drain sets it.
        cold_w = -1

        def admit_chunk() -> None:
            nonlocal services, nservices, pos
            times, services = next(chunks)
            nservices = len(services)
            pos = 0
            schedule_batch(times, on_arrival, _ARRIVAL_PRIO)

        def on_arrival(event) -> None:
            """Generic-dispatch arrival body (the fused loop inlines it)."""
            nonlocal pos, arrived, free_slots, queued, max_backlog
            nonlocal cold_starts, cold_busy_ns, cold_w
            now = env._now
            service = services[pos]
            pos += 1
            arrived += 1
            if pos == nservices and arrived < total:
                admit_chunk()
            if free_slots:
                free_slots -= 1
                buffer.append(service)
                if len(buffer) >= flush_batch:
                    flush()
                event._value = now + service
                event.callbacks = lease_cbs
                delay = service if service <= interval else interval
                when = now + delay
                s0 = when >> env._gbits
                d0 = s0 - env._cursor
                if 0 < d0 <= mask0:
                    slots0[s0 & mask0].append((when, 1, eidn(), event))
                    env._l0_count += 1
                    return
                schedule(event, delay)
            elif len(backlog) >= threshold:
                cold_starts += 1
                cold_busy_ns += spawn + service
                ready = now + spawn
                cold_admit(ready, now, service)
                if cold_w < 0:
                    cold_w = ready
            else:
                backlog.append((now, service))
                queued += 1
                if len(backlog) > max_backlog:
                    max_backlog = len(backlog)

        def on_lease(event) -> None:
            nonlocal completed, free_slots
            now = env._now
            remaining = event._value - now
            if remaining > 0:
                delay = interval if remaining > interval else remaining
                when = now + delay
                s0 = when >> env._gbits
                d0 = s0 - env._cursor
                if 0 < d0 <= mask0:
                    slots0[s0 & mask0].append((when, 1, eidn(), event))
                    env._l0_count += 1
                    return
                schedule(event, delay)
                return
            completed += 1
            if not completed & 0x3FF:
                sample()
            if backlog:
                arrival_ns, service = backlog.popleft()
                buffer.append(now - arrival_ns + service)
                if len(buffer) >= flush_batch:
                    flush()
                event._value = now + service
                delay = service if service <= interval else interval
                when = now + delay
                s0 = when >> env._gbits
                d0 = s0 - env._cursor
                if 0 < d0 <= mask0:
                    slots0[s0 & mask0].append((when, 1, eidn(), event))
                    env._l0_count += 1
                    return
                schedule(event, delay)
            else:
                free_slots += 1

        def on_ready(when: int, arrival: int, service: int) -> None:
            """Scalar spin-up fire (sub-slab runs): sandbox ready, the
            executor joins the pool by starting its invocation under a
            wheel-resident lease."""
            nonlocal cold_alive
            buffer.append(spawn + service)
            if len(buffer) >= flush_batch:
                flush()
            cold_alive += 1
            dl = when + (service if service <= interval else interval)
            insert((dl, 1, eidn(), BatchEvent(env, lease_cbs, when + service)))

        def on_ready_slab(when_a, arrival_a, service_a) -> None:
            """Vectorized spin-up run: bulk sojourns, leases admitted
            into the wheel via one deadline-sorted ``schedule_batch``
            (passing ``lease_cbs`` itself so the fused loop keeps
            recognizing the events by descriptor identity)."""
            nonlocal cold_alive
            n = when_a.shape[0]
            buffer.extend((service_a + spawn).tolist())
            if len(buffer) >= flush_batch:
                flush()
            cold_alive += n
            finishes = when_a + service_a
            deadlines = when_a + np.minimum(service_a, interval)
            order = np.argsort(deadlines, kind="stable")
            events = schedule_batch(deadlines[order], lease_cbs)
            for ev, fin in zip(events, finishes[order].tolist()):
                ev._value = fin

        gap = interval
        if self.config.min_service_ns < gap:
            gap = self.config.min_service_ns
        cold = env.attach_cold_lane(gap, on_ready, on_ready_slab, None)
        cold_admit = cold.admit
        drain_all = cold.drain_spinups_all

        def drive() -> None:
            """Fused loop: the batch kernel's pop fast path plus the
            cold gate.

            Before an entry at ``when`` dispatches, a pending spin-up
            backlog whose oldest ready time is <= ``when`` fires as one
            slab; the entry is pushed back through the spill heap (the
            slab's lease admissions may precede it) and the pop
            retried.  Shadow-state rules are the batch kernel's, with
            one addition: the gate and the dry-wheel slab flush
            ``l0_add`` and re-read ``_gbits``/``_cursor`` around
            ``drain_all`` (slab admissions can re-anchor a dry wheel).
            ``cold_admit`` touches only lane arrays and the eid
            counter, so the arrival fast path needs no sync around it.
            """
            nonlocal pos, arrived, completed, free_slots, queued, max_backlog
            nonlocal cold_starts, cold_busy_ns, cold_w
            pop = env._pop
            spill = env._spill
            overflow = env._queue
            active = env._active
            ai = env._ai
            alen = len(active)
            processed = 0
            now = env._now
            gbits = env._gbits
            cursor = env._cursor
            l0_add = 0
            clear = not spill and not overflow
            try:
                while True:
                    if ai < alen:
                        if clear:
                            entry = active[ai]
                            active[ai] = None
                            ai += 1
                        else:
                            entry = active[ai]
                            if spill and spill[0] < entry:
                                head = spill[0]
                                if overflow and overflow[0] < head:
                                    entry = heappop(overflow)
                                else:
                                    entry = heappop(spill)
                                clear = not spill and not overflow
                            elif overflow and overflow[0] < entry:
                                entry = heappop(overflow)
                                clear = not spill and not overflow
                            else:
                                active[ai] = None
                                ai += 1
                    else:
                        env._ai = ai
                        env._now = now
                        if l0_add:
                            env._l0_count += l0_add
                            l0_add = 0
                        try:
                            entry = pop()
                        except IndexError:
                            if cold_w < 0:
                                return
                            # Wheel dry with spin-ups pending: slab
                            # them out (their leases land back in the
                            # wheel) and resume popping.
                            processed += drain_all()
                            cold_w = -1
                            active = env._active
                            ai = env._ai
                            alen = len(active)
                            gbits = env._gbits
                            cursor = env._cursor
                            clear = not spill and not overflow
                            continue
                        active = env._active
                        ai = env._ai
                        alen = len(active)
                        gbits = env._gbits
                        cursor = env._cursor
                        clear = not spill and not overflow
                    if 0 <= cold_w <= entry[0]:
                        # Cold gate: the whole pending spin-up backlog
                        # commutes and its oldest ready precedes this
                        # entry -- fire it as one slab, push the entry
                        # back and re-pop.
                        env._ai = ai
                        env._now = now
                        if l0_add:
                            env._l0_count += l0_add
                            l0_add = 0
                        processed += drain_all()
                        cold_w = -1
                        heappush(spill, entry)
                        gbits = env._gbits
                        cursor = env._cursor
                        clear = False
                        continue
                    now = entry[0]
                    event = entry[3]
                    processed += 1
                    cbs = event.callbacks
                    if cbs is lease_cbs:
                        deadline = event._value
                        if deadline > now:
                            when = now + interval
                            if when > deadline:
                                when = deadline
                            s0 = when >> gbits
                            d0 = s0 - cursor
                            if 0 < d0 <= mask0:
                                slots0[s0 & mask0].append((when, 1, eidn(), event))
                                l0_add += 1
                            else:
                                env._now = now
                                env._ai = ai
                                if l0_add:
                                    env._l0_count += l0_add
                                    l0_add = 0
                                schedule(event, when - now)
                                gbits = env._gbits
                                cursor = env._cursor
                                clear = not spill and not overflow
                            continue
                        completed += 1
                        if not completed & 0x3FF:
                            env._now = now
                            env._ai = ai
                            if l0_add:
                                env._l0_count += l0_add
                                l0_add = 0
                            sample()
                        if backlog:
                            arrival_ns, service = backlog.popleft()
                            buffer.append(now - arrival_ns + service)
                            if len(buffer) >= flush_batch:
                                # flush() force-samples occupancy: give
                                # it the true wheel state first.
                                env._now = now
                                env._ai = ai
                                if l0_add:
                                    env._l0_count += l0_add
                                    l0_add = 0
                                flush()
                            deadline = now + service
                            event._value = deadline
                            when = now + interval
                            if when > deadline:
                                when = deadline
                            s0 = when >> gbits
                            d0 = s0 - cursor
                            if 0 < d0 <= mask0:
                                slots0[s0 & mask0].append((when, 1, eidn(), event))
                                l0_add += 1
                            else:
                                env._now = now
                                env._ai = ai
                                if l0_add:
                                    env._l0_count += l0_add
                                    l0_add = 0
                                schedule(event, when - now)
                                gbits = env._gbits
                                cursor = env._cursor
                                clear = not spill and not overflow
                        else:
                            free_slots += 1
                        continue
                    if cbs.__class__ is tuple and cbs[0] is on_arrival:
                        service = services[pos]
                        pos += 1
                        arrived += 1
                        if pos == nservices and arrived < total:
                            env._now = now
                            env._ai = ai
                            if l0_add:
                                env._l0_count += l0_add
                                l0_add = 0
                            admit_chunk()
                            gbits = env._gbits
                            cursor = env._cursor
                            clear = not spill and not overflow
                        if free_slots:
                            free_slots -= 1
                            buffer.append(service)
                            if len(buffer) >= flush_batch:
                                # flush() force-samples occupancy: give
                                # it the true wheel state first.
                                env._now = now
                                env._ai = ai
                                if l0_add:
                                    env._l0_count += l0_add
                                    l0_add = 0
                                flush()
                            deadline = now + service
                            event._value = deadline
                            event.callbacks = lease_cbs
                            when = now + interval
                            if when > deadline:
                                when = deadline
                            s0 = when >> gbits
                            d0 = s0 - cursor
                            if 0 < d0 <= mask0:
                                slots0[s0 & mask0].append((when, 1, eidn(), event))
                                l0_add += 1
                            else:
                                env._now = now
                                env._ai = ai
                                if l0_add:
                                    env._l0_count += l0_add
                                    l0_add = 0
                                schedule(event, when - now)
                                gbits = env._gbits
                                cursor = env._cursor
                                clear = not spill and not overflow
                        elif len(backlog) >= threshold:
                            cold_starts += 1
                            cold_busy_ns += spawn + service
                            ready = now + spawn
                            cold_admit(ready, now, service)
                            if cold_w < 0:
                                cold_w = ready
                        else:
                            backlog.append((now, service))
                            queued += 1
                            blen = len(backlog)
                            if blen > max_backlog:
                                max_backlog = blen
                        continue
                    # Foreign event: full generic run-loop semantics.
                    env._now = now
                    env._ai = ai
                    if l0_add:
                        env._l0_count += l0_add
                        l0_add = 0
                    if cbs.__class__ is tuple:
                        cbs[0](event)
                    else:
                        event.callbacks = None
                        for callback in cbs:
                            callback(event)
                    if not event._ok and not event._defused:
                        exc = event._value
                        if isinstance(exc, BaseException):
                            raise exc
                        raise RuntimeError(f"event failed with non-exception {exc!r}")
                    gbits = env._gbits
                    cursor = env._cursor
                    clear = not spill and not overflow
            finally:
                env._ai = ai
                env._now = now
                if l0_add:
                    env._l0_count += l0_add
                env.events_processed += processed

        def sync() -> None:
            self.arrived = arrived
            self.completed = completed
            self.queued = queued
            self.max_backlog = max_backlog
            self.free_slots = free_slots
            self.cold_starts = cold_starts
            self.cold_busy_ns = cold_busy_ns
            self.cold_alive = cold_alive

        lease_cbs = (on_lease,)
        self._on_arrival = on_arrival
        self._on_lease = on_lease
        self._lease_cbs = lease_cbs
        self._kernel_sync = sync
        self._kernel_drive = drive
        admit_chunk()

    def _install_cold_strict_kernel(self) -> None:
        """Lane kernel variant with the cold-start calendar (ColdLane).

        Leases live in the LeaseLane as in the lane kernel; dry-pool
        arrivals that go cold become three int64 cells in the
        ColdLane's spin-up calendar (ready/arrival/service) instead of
        a wheel event, and idle-reclaim expiries become two cells in
        its reclaim calendar.  The wheel carries arrivals only; due
        runs of spin-ups fire as vectorized slabs (bulk sojourn append
        + one interleaved ``reserve_eids`` block for the lease/reclaim
        admissions) and due runs of reclaims fold into a single
        counted hook call.

        Unlike the lease lane there is **no deferral**: an arrival's
        cold-vs-queue decision observes ``free_slots`` and a reclaim
        both reads and writes it, so pending fires are never
        postponable.  The loop instead runs a strict three-way merge --
        before dispatching each wheel entry both lanes are drained up
        to the entry's ``(when, priority, eid)`` key, each drain call
        bounded by the *other* lane's head so no fire can overtake a
        pending earlier one.  Entries admitted mid-drain are handled by
        the ColdLane's admission-window cap (a call never fires past
        ``first fire + admit_gap``, and everything a fire admits lands
        at least ``admit_gap`` later), with every head re-read between
        calls.  Effects of a fire are applied at its exact sequence
        point, so the fingerprint -- including every tie at equal
        nanoseconds -- is the per-event referee's, bit for bit.

        Only ``keepalive > 0`` runs land here (reclaims are what force
        the strict interleave); with idle-reclaim off the dispatching
        :meth:`_install_cold_kernel` installs the commuting fast
        kernel instead.
        """
        env = self.env
        config = self.config
        schedule_batch = env.schedule_batch
        interval = self._interval
        flush_batch = _FLUSH_BATCH
        flush = self._flush
        sample = self._sample_wheel
        buffer = self._buffer
        backlog = self.backlog
        chunks = self._chunks
        total = self.count
        spawn = self._spawn
        keepalive = self._keepalive
        threshold = self._threshold
        reserve = env.reserve_eids
        lane = env.attach_lease_lane(interval)
        admit = lane.admit
        admit_block = lane.admit_block
        lane_drain = lane.drain
        lane_head = lane.head_key
        free_slots = self.free_slots
        arrived = 0
        completed = 0
        queued = 0
        max_backlog = 0
        cold_starts = 0
        cold_busy_ns = 0
        cold_reclaimed = 0
        cold_retained = 0
        cold_alive = 0
        services: list[int] = []
        nservices = 0
        pos = 0
        # Cached lane heads; -1 means "empty".  Kept current by updating
        # after every admit and re-reading after every drain/foreign
        # call, so the per-entry merge check is a few int compares.
        lane_dl = -1
        lane_eid = 0
        cold_w = -1
        cold_e = 0

        def on_complete(when: int) -> None:
            """Scalar-exact lease completion (see the lane kernel)."""
            nonlocal completed, free_slots
            completed += 1
            if not completed & 0x3FF:
                sample()
            if backlog:
                arrival_ns, service = backlog.popleft()
                buffer.append(when - arrival_ns + service)
                if len(buffer) >= flush_batch:
                    flush()
                admit(
                    when + (service if service <= interval else interval),
                    when + service,
                )
            else:
                free_slots += 1

        lane.on_complete = on_complete

        def on_ready(when: int, arrival: int, service: int) -> None:
            """Scalar spin-up fire: sandbox ready, executor joins the
            pool by starting its invocation under a normal lease (lease
            eid first, reclaim eid second -- the per-event order)."""
            nonlocal cold_alive, lane_dl, lane_eid
            buffer.append(spawn + service)
            if len(buffer) >= flush_batch:
                flush()
            cold_alive += 1
            dl = when + (service if service <= interval else interval)
            eid = admit(dl, when + service)
            if lane_dl < 0 or dl < lane_dl or (dl == lane_dl and eid < lane_eid):
                lane_dl = dl
                lane_eid = eid
            if keepalive:
                cold.admit_reclaim(when + keepalive)

        def on_ready_slab(when_a, arrival_a, service_a) -> None:
            """Vectorized spin-up run: bulk sojourns, one interleaved
            eid block (evens lease, odds reclaim -- exactly the ids the
            scalar path would draw fire by fire)."""
            nonlocal cold_alive, lane_dl, lane_eid
            n = when_a.shape[0]
            buffer.extend((service_a + spawn).tolist())
            if len(buffer) >= flush_batch:
                flush()
            cold_alive += n
            deadlines = when_a + np.minimum(service_a, interval)
            finishes = when_a + service_a
            if keepalive:
                base = reserve(2 * n)
                eids = np.arange(base, base + 2 * n, dtype=np.int64)
                admit_block(deadlines, finishes, eids[0::2])
                cold.admit_reclaim_block(when_a + keepalive, eids[1::2])
            else:
                base = reserve(n)
                admit_block(
                    deadlines, finishes, np.arange(base, base + n, dtype=np.int64)
                )
            head = lane_head()
            if head is not None:
                lane_dl, lane_eid = head

        def on_reclaim_hook(n: int) -> None:
            """A run of *n* consecutive reclaim expiries: successes are
            ``min(n, free_slots, cold_alive)`` -- exactly what n scalar
            fires of the referee's handler would conclude."""
            nonlocal free_slots, cold_alive, cold_reclaimed, cold_retained
            succ = n
            if free_slots < succ:
                succ = free_slots
            if cold_alive < succ:
                succ = cold_alive
            free_slots -= succ
            cold_alive -= succ
            cold_reclaimed += succ
            cold_retained += n - succ

        gap = interval
        if config.min_service_ns < gap:
            gap = config.min_service_ns
        if keepalive and keepalive < gap:
            gap = keepalive
        cold = env.attach_cold_lane(gap, on_ready, on_ready_slab, on_reclaim_hook)
        cold_admit = cold.admit
        cold_drain = cold.drain
        cold_head = cold.head_key

        def admit_chunk() -> None:
            nonlocal services, nservices, pos
            times, services = next(chunks)
            nservices = len(services)
            pos = 0
            schedule_batch(times, on_arrival, _ARRIVAL_PRIO)

        def on_arrival(event) -> None:
            """Generic-dispatch arrival body (the fused loop inlines it)."""
            nonlocal pos, arrived, free_slots, queued, max_backlog
            nonlocal lane_dl, lane_eid, cold_w, cold_e
            nonlocal cold_starts, cold_busy_ns
            now = env._now
            service = services[pos]
            pos += 1
            arrived += 1
            if pos == nservices and arrived < total:
                admit_chunk()
            if free_slots:
                free_slots -= 1
                buffer.append(service)
                if len(buffer) >= flush_batch:
                    flush()
                when = now + (service if service <= interval else interval)
                eid = admit(when, now + service)
                if lane_dl < 0 or when < lane_dl or (when == lane_dl and eid < lane_eid):
                    lane_dl = when
                    lane_eid = eid
            elif len(backlog) >= threshold:
                cold_starts += 1
                cold_busy_ns += spawn + service
                ready = now + spawn
                ceid = cold_admit(ready, now, service)
                if cold_w < 0 or ready < cold_w or (ready == cold_w and ceid < cold_e):
                    cold_w = ready
                    cold_e = ceid
            else:
                backlog.append((now, service))
                queued += 1
                if len(backlog) > max_backlog:
                    max_backlog = len(backlog)

        def drive() -> None:
            """Fused loop: wheel pop fast path + strict three-way merge
            (see the method docstring for why nothing is deferred)."""
            nonlocal pos, arrived, completed, free_slots, queued, max_backlog
            nonlocal lane_dl, lane_eid, cold_w, cold_e
            nonlocal cold_starts, cold_busy_ns
            pop = env._pop
            spill = env._spill
            overflow = env._queue
            active = env._active
            ai = env._ai
            alen = len(active)
            processed = 0
            now = env._now
            clear = not spill and not overflow
            try:
                while True:
                    if ai < alen:
                        if clear:
                            entry = active[ai]
                            active[ai] = None
                            ai += 1
                        else:
                            entry = active[ai]
                            if spill and spill[0] < entry:
                                head = spill[0]
                                if overflow and overflow[0] < head:
                                    entry = heappop(overflow)
                                else:
                                    entry = heappop(spill)
                                clear = not spill and not overflow
                            elif overflow and overflow[0] < entry:
                                entry = heappop(overflow)
                                clear = not spill and not overflow
                            else:
                                active[ai] = None
                                ai += 1
                    else:
                        env._ai = ai
                        env._now = now
                        try:
                            entry = pop()
                        except IndexError:
                            # Wheel dry, arrivals exhausted: drain both
                            # lanes interleaved by head order until empty
                            # (each call still bounded by the other's
                            # head and the admission window).
                            while lane_dl >= 0 or cold_w >= 0:
                                env._now = now
                                if cold_w >= 0 and (
                                    lane_dl < 0
                                    or cold_w < lane_dl
                                    or (cold_w == lane_dl and cold_e < lane_eid)
                                ):
                                    if lane_dl >= 0:
                                        fired, last = cold_drain(lane_dl, 1, lane_eid)
                                    else:
                                        fired, last = cold_drain(None, 0, 0)
                                    processed += fired
                                    if last > now:
                                        now = last
                                else:
                                    before = completed
                                    if cold_w >= 0:
                                        fired, bulk, last = lane_drain(
                                            cold_w, 1, cold_e, backlog or None, False
                                        )
                                    else:
                                        fired, bulk, last = lane_drain(
                                            None, 0, 0, backlog or None, False
                                        )
                                    processed += fired
                                    if bulk:
                                        completed += bulk
                                        free_slots += bulk
                                    if last > now:
                                        now = last
                                    if (before >> 10) != (completed >> 10):
                                        env._now = now
                                        sample()
                                head = lane_head()
                                if head is None:
                                    lane_dl = -1
                                else:
                                    lane_dl, lane_eid = head
                                head = cold_head()
                                if head is None:
                                    cold_w = -1
                                else:
                                    cold_w, cold_e = head
                            env._now = now
                            return
                        active = env._active
                        ai = env._ai
                        alen = len(active)
                        clear = not spill and not overflow
                    when = entry[0]
                    prio = entry[1]
                    # Strict merge: both lanes drained up to this wheel
                    # entry's key before it dispatches.
                    while lane_dl >= 0 or cold_w >= 0:
                        if cold_w >= 0 and (
                            lane_dl < 0
                            or cold_w < lane_dl
                            or (cold_w == lane_dl and cold_e < lane_eid)
                        ):
                            hw = cold_w
                            he = cold_e
                            use_cold = True
                        else:
                            hw = lane_dl
                            he = lane_eid
                            use_cold = False
                        if hw > when or (
                            hw == when and (prio < 1 or (prio == 1 and he >= entry[2]))
                        ):
                            break
                        env._ai = ai
                        env._now = now
                        if use_cold:
                            if lane_dl >= 0 and (
                                lane_dl < when
                                or (
                                    lane_dl == when
                                    and (prio > 1 or (prio == 1 and lane_eid < entry[2]))
                                )
                            ):
                                fired, last = cold_drain(lane_dl, 1, lane_eid)
                            else:
                                fired, last = cold_drain(when, prio, entry[2])
                            processed += fired
                            if last > now:
                                now = last
                        else:
                            before = completed
                            if cold_w >= 0 and (
                                cold_w < when
                                or (
                                    cold_w == when
                                    and (prio > 1 or (prio == 1 and cold_e < entry[2]))
                                )
                            ):
                                fired, bulk, last = lane_drain(
                                    cold_w, 1, cold_e, backlog or None, False
                                )
                            else:
                                fired, bulk, last = lane_drain(
                                    when, prio, entry[2], backlog or None, False
                                )
                            processed += fired
                            if bulk:
                                completed += bulk
                                free_slots += bulk
                            if last > now:
                                now = last
                            if (before >> 10) != (completed >> 10):
                                env._now = now
                                sample()
                        head = lane_head()
                        if head is None:
                            lane_dl = -1
                        else:
                            lane_dl, lane_eid = head
                        head = cold_head()
                        if head is None:
                            cold_w = -1
                        else:
                            cold_w, cold_e = head
                    event = entry[3]
                    now = when
                    processed += 1
                    cbs = event.callbacks
                    if cbs.__class__ is tuple and cbs[0] is on_arrival:
                        service = services[pos]
                        pos += 1
                        arrived += 1
                        if pos == nservices and arrived < total:
                            env._now = now
                            env._ai = ai
                            admit_chunk()
                            clear = not spill and not overflow
                        if free_slots:
                            free_slots -= 1
                            buffer.append(service)
                            if len(buffer) >= flush_batch:
                                env._now = now
                                env._ai = ai
                                flush()
                            lease_when = now + (
                                service if service <= interval else interval
                            )
                            eid = admit(lease_when, now + service)
                            if lane_dl < 0 or lease_when < lane_dl or (
                                lease_when == lane_dl and eid < lane_eid
                            ):
                                lane_dl = lease_when
                                lane_eid = eid
                        elif len(backlog) >= threshold:
                            cold_starts += 1
                            cold_busy_ns += spawn + service
                            ready = now + spawn
                            ceid = cold_admit(ready, now, service)
                            if cold_w < 0 or ready < cold_w or (
                                ready == cold_w and ceid < cold_e
                            ):
                                cold_w = ready
                                cold_e = ceid
                        else:
                            backlog.append((now, service))
                            queued += 1
                            blen = len(backlog)
                            if blen > max_backlog:
                                max_backlog = blen
                        continue
                    # Foreign event: full generic run-loop semantics.
                    env._now = now
                    env._ai = ai
                    if cbs.__class__ is tuple:
                        cbs[0](event)
                    else:
                        event.callbacks = None
                        for callback in cbs:
                            callback(event)
                    if not event._ok and not event._defused:
                        exc = event._value
                        if isinstance(exc, BaseException):
                            raise exc
                        raise RuntimeError(f"event failed with non-exception {exc!r}")
                    clear = not spill and not overflow
                    head = lane_head()
                    if head is None:
                        lane_dl = -1
                    else:
                        lane_dl, lane_eid = head
                    head = cold_head()
                    if head is None:
                        cold_w = -1
                    else:
                        cold_w, cold_e = head
            finally:
                env._ai = ai
                env._now = now
                env.events_processed += processed

        def sync() -> None:
            self.arrived = arrived
            self.completed = completed
            self.queued = queued
            self.max_backlog = max_backlog
            self.free_slots = free_slots
            self.cold_starts = cold_starts
            self.cold_busy_ns = cold_busy_ns
            self.cold_reclaimed = cold_reclaimed
            self.cold_retained = cold_retained
            self.cold_alive = cold_alive

        self._on_arrival = on_arrival
        self._kernel_sync = sync
        self._kernel_drive = drive
        admit_chunk()

    def _handle_arrival(self, _event) -> None:
        env = self.env
        now = env._now
        service = self._next_service
        self.arrived += 1
        if self.arrived < self.count:
            self._advance()
            timeout = env.timeout(self._next_time - now)
            timeout.callbacks.append(self._on_arrival)
        if self.free_slots:
            self.free_slots -= 1
            self._begin(now, service)
        elif self._cold_mode and len(self.backlog) >= self._threshold:
            self._cold_start(now, service)
        else:
            backlog = self.backlog
            backlog.append((now, service))
            self.queued += 1
            if len(backlog) > self.max_backlog:
                self.max_backlog = len(backlog)

    def _cold_start(self, now: int, service: int) -> None:
        """Dry-pool arrival goes cold: spin a sandbox up instead of
        queueing.  The spin-up timer carries the service draw; the
        sojourn (spawn + service) is recorded when the sandbox is ready
        and the executor joins the pool via a normal lease."""
        self.cold_starts += 1
        self.cold_busy_ns += self._spawn + service
        event = BatchEvent(self.env, self._cold_cbs, service)
        self._schedule(event, self._spawn)

    def _handle_cold(self, event) -> None:
        """Sandbox ready: record the cold sojourn, start the invocation
        on the new executor (reusing the spin-up event as its lease
        timer), and arm the optional idle-reclaim expiry."""
        now = self.env._now
        service = event._value
        buffer = self._buffer
        buffer.append(self._spawn + service)
        if len(buffer) >= _FLUSH_BATCH:
            self._flush()
        self.cold_alive += 1
        interval = self._interval
        # Lease eid first, reclaim eid second: the vectorized cold lane
        # interleaves its bulk reservations the same way.
        event._value = now + service
        event.callbacks = self._lease_cbs
        self._schedule(event, service if service <= interval else interval)
        if self._keepalive:
            self._schedule(BatchEvent(self.env, self._reclaim_cbs, 0), self._keepalive)

    def _handle_reclaim(self, _event) -> None:
        """Idle-reclaim expiry: tear one cold executor down iff the pool
        has an idle slot to give back (outcomes depend only on the two
        gauges, which is what lets bulk expiry runs fold exactly)."""
        if self.free_slots and self.cold_alive:
            self.free_slots -= 1
            self.cold_alive -= 1
            self.cold_reclaimed += 1
        else:
            self.cold_retained += 1

    def _begin(self, arrival_ns: int, service: int) -> None:
        now = self.env._now
        buffer = self._buffer
        buffer.append(now - arrival_ns + service)
        if len(buffer) >= _FLUSH_BATCH:
            self._flush()
        interval = self._interval
        # A BatchEvent is the cheapest schedulable event (five slot
        # stores, no validation chain): the lease timer needs nothing
        # more, and the deadline/eid sequence -- hence the fingerprint
        # -- is identical to the pooled-Timeout recipe.
        event = BatchEvent(self.env, self._lease_cbs, now + service)
        self._schedule(event, service if service <= interval else interval)

    def _handle_lease(self, event) -> None:
        remaining = event._value - self.env._now
        if remaining > 0:
            interval = self._interval
            # Tuple dispatch descriptor: still attached, just re-insert.
            self._schedule(event, interval if remaining > interval else remaining)
            return
        completed = self.completed + 1
        self.completed = completed
        if not completed & 0x3FF and self._is_wheel:
            self._sample_wheel()
        if self.backlog:
            arrival_ns, service = self.backlog.popleft()
            self._begin(arrival_ns, service)
        else:
            self.free_slots += 1

    _flush = _OpenLoopDriver._flush
    _sample_wheel = _OpenLoopDriver._sample_wheel

    def finish(self) -> None:
        if self._kernel_sync is not None:
            self._kernel_sync()
        self._flush()
        if self.cold_starts:
            from repro import perf

            if perf.enabled:
                perf.counters.cold_spinups += self.cold_starts
                perf.counters.cold_reclaims += self.cold_reclaimed


@dataclass
class ShardResult:
    """One shard's run: a full per-environment measurement plus the
    streaming accumulator the parent folds (exact merge, no samples)."""

    shard: int
    shards: int
    shard_seed: int
    workers: int
    invocations: int
    completed: int
    events_processed: int
    wall_s: float
    peak_rss_bytes: int
    final_now_ns: int
    max_backlog: int
    queued: int
    timeout_pool_hits: int
    stream: StreamingSummary
    occupancy: dict[str, int] = field(default_factory=dict)
    cold_starts: int = 0
    cold_busy_ns: int = 0
    cold_reclaimed: int = 0
    cold_retained: int = 0
    #: Exact integer sum of recorded sojourns (see ``_flush``).
    sojourn_total: int = 0


def _run_shard(
    shard: int,
    shards: int,
    invocations: int = 1_000_000,
    workers: int = 1 << 20,
    scheduler: str = "wheel",
    seed: int = 0x5CA1E,
    mean_arrival_gap_ns: int = 250,
    service_log_mean: float = 19.8,
    service_log_sigma: float = 0.6,
    lease_check_interval_ns: int = ms(64),
    granularity_bits: Union[int, str] = "auto",
    admission: str = "batch",
    lease_lane: str = "on",
    subbits: int = 8,
    arrival_shape: str = "poisson",
    shard_split: str = "partition",
    burst_len: int = 64,
    burst_intra_gap_ns: int = 1,
    diurnal_period_ns: int = 0,
    diurnal_multipliers: tuple = DIURNAL_DAY,
    pool_policy: str = "queue",
    start_model: str = "remote-fork",
    keepalive_ns: int = 0,
    hybrid_threshold: int = 64,
) -> ShardResult:
    """Run one shard of the decomposed scenario (picklable factory).

    Module-level so :mod:`repro.parallel` can ship it to forked workers
    and the result cache can key it: the kwargs *are* the shard's
    identity, and the outcome depends on nothing else.
    """
    from repro import perf

    config = ScaleConfig(
        invocations=invocations,
        workers=workers,
        mean_arrival_gap_ns=mean_arrival_gap_ns,
        service_log_mean=service_log_mean,
        service_log_sigma=service_log_sigma,
        lease_check_interval_ns=lease_check_interval_ns,
        seed=seed,
        scheduler=scheduler,
        granularity_bits=granularity_bits,
        admission=admission,
        lease_lane=lease_lane,
        subbits=subbits,
        shards=shards,
        shard_split=shard_split,
        arrival_shape=arrival_shape,
        burst_len=burst_len,
        burst_intra_gap_ns=burst_intra_gap_ns,
        diurnal_period_ns=diurnal_period_ns,
        diurnal_multipliers=tuple(diurnal_multipliers),
        pool_policy=pool_policy,
        start_model=start_model,
        keepalive_ns=keepalive_ns,
        hybrid_threshold=hybrid_threshold,
    )
    validate_granularity_bits(granularity_bits)
    _validate_admission(admission)
    _validate_lease_lane(lease_lane)
    _validate_pool_policy(pool_policy, start_model, keepalive_ns, hybrid_threshold)
    if not 0 <= shard < shards:
        raise ValueError(f"shard {shard} outside [0, {shards})")
    env_kwargs = {"granularity_bits": granularity_bits} if scheduler == "wheel" else {}
    env = new_environment(config.scheduler, **env_kwargs)
    driver = _ShardDriver(env, config, shard, shards)
    driver.start()

    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    started = time.perf_counter()
    try:
        driver.drive()
    finally:
        if gc_was_enabled:
            gc.enable()
    wall_s = time.perf_counter() - started
    driver.finish()
    if perf.enabled:
        perf.counters.shard_runs += 1

    if driver.completed != driver.count:
        raise RuntimeError(
            f"shard {shard}/{shards} lost invocations: "
            f"{driver.completed} of {driver.count}"
        )
    return ShardResult(
        shard=shard,
        shards=shards,
        shard_seed=shard_seed(seed, shard),
        workers=_shard_slots(workers, shards, shard),
        invocations=driver.count,
        completed=driver.completed,
        events_processed=env.events_processed,
        wall_s=wall_s,
        peak_rss_bytes=_peak_rss_bytes(),
        final_now_ns=env.now,
        max_backlog=driver.max_backlog,
        queued=driver.queued,
        timeout_pool_hits=env.timeout_pool_hits,
        stream=driver.stream,
        occupancy=dict(driver.occupancy_peaks),
        cold_starts=driver.cold_starts,
        cold_busy_ns=driver.cold_busy_ns,
        cold_reclaimed=driver.cold_reclaimed,
        cold_retained=driver.cold_retained,
        sojourn_total=driver.sojourn_total,
    )


@dataclass
class ShardedScaleResult:
    """A K-shard scenario folded back together.

    Simulated-domain fields (everything in :meth:`fingerprint`) are a
    pure function of the scenario spec -- identical across repeats,
    worker counts, and cache hits.  Wall-clock, RSS, and occupancy are
    measurement artifacts of this particular execution.
    """

    scheduler: str
    shards: int
    shard_split: str
    arrival_shape: str
    invocations: int
    workers: int
    parallel_workers: int
    cpus_available: int
    completed: int
    events_processed: int
    wall_s: float
    events_per_sec: float
    serial_wall_s: float
    shard_walls_s: list[float]
    peak_rss_bytes: int
    final_now_ns: int
    max_backlog: int
    queued: int
    timeout_pool_hits: int
    latency: SummaryStats
    stream_buckets: int
    occupancy: dict[str, int] = field(default_factory=dict)
    shard_seeds: list[int] = field(default_factory=list)
    cold_starts: int = 0
    cold_busy_ns: int = 0
    cold_reclaimed: int = 0
    cold_retained: int = 0

    def fingerprint(self) -> dict[str, Any]:
        """Simulated-domain outputs -- the same keys as
        :meth:`ScaleResult.fingerprint`, so unsharded and sharded runs
        of an equivalent scenario can be diffed directly."""
        return {
            "invocations": self.invocations,
            "completed": self.completed,
            "events_processed": self.events_processed,
            "final_now_ns": self.final_now_ns,
            "max_backlog": self.max_backlog,
            "queued": self.queued,
            "cold_starts": self.cold_starts,
            "cold_busy_ns": self.cold_busy_ns,
            "cold_reclaimed": self.cold_reclaimed,
            "cold_retained": self.cold_retained,
            "latency_median_ns": self.latency.median,
            "latency_p95_ns": self.latency.p95,
            "latency_p99_ns": self.latency.p99,
            "latency_mean_ns": self.latency.mean,
            "latency_min_ns": self.latency.minimum,
            "latency_max_ns": self.latency.maximum,
        }

    def table(self) -> Table:
        table = Table(
            f"Sharded open-loop scale run -- {self.invocations:,} invocations, "
            f"{self.shards} shard(s) ({self.scheduler} scheduler, "
            f"{self.arrival_shape} arrivals, {self.shard_split} split)",
            ["metric", "value"],
        )
        table.add_row("completed", f"{self.completed:,}")
        table.add_row("simulator events", f"{self.events_processed:,}")
        table.add_row(
            "wall clock (batch / serial-sum)",
            f"{self.wall_s:.2f} s / {self.serial_wall_s:.2f} s",
        )
        table.add_row("events/sec (merged)", f"{self.events_per_sec:,.0f}")
        table.add_row(
            "dispatch workers / cpus", f"{self.parallel_workers} / {self.cpus_available}"
        )
        table.add_row("peak shard RSS", format_bytes(self.peak_rss_bytes))
        table.add_row("simulated span", format_ns(self.final_now_ns))
        table.add_row("warm slots / peak backlog", f"{self.workers:,} / {self.max_backlog:,}")
        table.add_row("sojourn median", format_ns(self.latency.median))
        table.add_row("sojourn p95", format_ns(self.latency.p95))
        table.add_row("sojourn p99", format_ns(self.latency.p99))
        table.add_row("stream buckets (O(1) memory)", f"{self.stream_buckets:,}")
        return table


def merge_shard_results(
    results: list[ShardResult],
    *,
    scheduler: str,
    shard_split: str,
    arrival_shape: str,
    workers: int,
    wall_s: float,
    parallel_workers: int,
    cpus_available: int,
) -> ShardedScaleResult:
    """Fold per-shard accumulators, in shard order, into one result.

    Counts sum; clocks take the max (the scenario ends when its last
    shard does); the latency summary is the exact
    :meth:`StreamingSummary.merge` fold -- the same code path the
    PR 4 streaming layer was built around.
    """
    if not results:
        raise ValueError("merge of zero shards")
    if [r.shard for r in results] != list(range(len(results))):
        raise ValueError("shard results must arrive complete and in shard order")
    stream = StreamingSummary.merged([r.stream for r in results])
    occupancy: dict[str, int] = {}
    for result in results:
        for key, value in result.occupancy.items():
            if value > occupancy.get(key, -1):
                occupancy[key] = value
    events = sum(r.events_processed for r in results)
    return ShardedScaleResult(
        scheduler=scheduler,
        shards=len(results),
        shard_split=shard_split,
        arrival_shape=arrival_shape,
        invocations=sum(r.invocations for r in results),
        workers=workers,
        parallel_workers=parallel_workers,
        cpus_available=cpus_available,
        completed=sum(r.completed for r in results),
        events_processed=events,
        wall_s=wall_s,
        events_per_sec=events / wall_s if wall_s > 0 else 0.0,
        serial_wall_s=sum(r.wall_s for r in results),
        shard_walls_s=[r.wall_s for r in results],
        peak_rss_bytes=max(r.peak_rss_bytes for r in results),
        final_now_ns=max(r.final_now_ns for r in results),
        max_backlog=max(r.max_backlog for r in results),
        queued=sum(r.queued for r in results),
        timeout_pool_hits=sum(r.timeout_pool_hits for r in results),
        latency=replace(
            stream.summarize(),
            mean=sum(r.sojourn_total for r in results) / stream.count,
        ),
        stream_buckets=len(stream.histogram),
        occupancy=occupancy,
        shard_seeds=[r.shard_seed for r in results],
        cold_starts=sum(r.cold_starts for r in results),
        cold_busy_ns=sum(r.cold_busy_ns for r in results),
        cold_reclaimed=sum(r.cold_reclaimed for r in results),
        cold_retained=sum(r.cold_retained for r in results),
    )


def run_scale_sharded(
    invocations: int = 1_000_000,
    workers: int = 1 << 20,
    shards: int = 2,
    scheduler: str = "wheel",
    seed: int = 0x5CA1E,
    mean_arrival_gap_ns: int = 250,
    service_log_mean: float = 19.8,
    service_log_sigma: float = 0.6,
    lease_check_interval_ns: int = ms(64),
    granularity_bits: Union[int, str] = "auto",
    admission: str = "batch",
    lease_lane: str = "on",
    subbits: int = 8,
    arrival_shape: str = "poisson",
    shard_split: str = "partition",
    burst_len: int = 64,
    burst_intra_gap_ns: int = 1,
    diurnal_period_ns: int = 0,
    diurnal_multipliers: tuple = DIURNAL_DAY,
    pool_policy: str = "queue",
    start_model: str = "remote-fork",
    keepalive_ns: int = 0,
    hybrid_threshold: int = 64,
    parallel: int = 0,
    cache_dir: Optional[str] = None,
) -> ShardedScaleResult:
    """Decompose one scale scenario into *shards* and run them fanned out.

    ``parallel`` follows the shared :func:`repro.parallel.resolve_workers`
    chain (``0``/``None`` = one worker per usable CPU); the merged
    result is bit-identical for every value of it.  ``cache_dir`` keys
    each shard spec in the content-addressed result cache, so a
    repeated or interrupted sharded run only pays for missing shards.
    """
    from repro.parallel import FailedPoint, RunSpec, available_workers, resolve_workers, run_specs

    validate_granularity_bits(granularity_bits)
    _validate_admission(admission)
    _validate_lease_lane(lease_lane)
    _validate_pool_policy(pool_policy, start_model, keepalive_ns, hybrid_threshold)
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards > invocations:
        raise ValueError(f"{shards} shards for {invocations} invocations (some get none)")
    if shards > workers:
        raise ValueError(f"{shards} shards over {workers} warm slots (some get none)")
    shared_kwargs = dict(
        shards=shards,
        invocations=invocations,
        workers=workers,
        scheduler=scheduler,
        seed=seed,
        mean_arrival_gap_ns=mean_arrival_gap_ns,
        service_log_mean=service_log_mean,
        service_log_sigma=service_log_sigma,
        lease_check_interval_ns=lease_check_interval_ns,
        granularity_bits=granularity_bits,
        admission=admission,
        lease_lane=lease_lane,
        subbits=subbits,
        arrival_shape=arrival_shape,
        shard_split=shard_split,
        burst_len=burst_len,
        burst_intra_gap_ns=burst_intra_gap_ns,
        diurnal_period_ns=diurnal_period_ns,
        diurnal_multipliers=tuple(diurnal_multipliers),
        pool_policy=pool_policy,
        start_model=start_model,
        keepalive_ns=keepalive_ns,
        hybrid_threshold=hybrid_threshold,
    )
    specs = [
        RunSpec(
            factory="repro.experiments.scale:_run_shard",
            kwargs={"shard": shard, **shared_kwargs},
            index=shard,
            label=f"scale-shard[{shard}/{shards}]",
        )
        for shard in range(shards)
    ]
    cache = None
    if cache_dir is not None:
        from repro.cache import ResultCache

        cache = ResultCache(cache_dir)
    started = time.perf_counter()
    outcomes = run_specs(specs, parallel, cache=cache)
    wall_s = time.perf_counter() - started
    failed = [o for o in outcomes if isinstance(o, FailedPoint)]
    if failed:
        raise RuntimeError(f"sharded scale run failed: {failed[0].summary()}")
    return merge_shard_results(
        outcomes,
        scheduler=scheduler or "heap",
        shard_split=shard_split,
        arrival_shape=arrival_shape,
        workers=workers,
        wall_s=wall_s,
        parallel_workers=resolve_workers(parallel),
        cpus_available=available_workers(),
    )


#: Quick (CI) configuration: with 10^4 invocations and 2048 slots the
#: pool saturates within the burst, so the smoke run exercises the FIFO
#: queueing path the paper-scale defaults deliberately avoid.
QUICK_KWARGS = {"invocations": 10_000, "workers": 2_048, "mean_arrival_gap_ns": us(25)}

#: Quick sharding-exactness configuration: the pool never saturates
#: (slots >= invocations), the regime where a K-way partition of the
#: global streams merges back bit-identical to the 1-shard run.
QUICK_UNSATURATED_KWARGS = {
    "invocations": 4_000,
    "workers": 4_096,
    "mean_arrival_gap_ns": us(25),
}


# -- multi-tenant engine -----------------------------------------------
#
# Tenancy as a vectorized dimension of the same open-loop machine: the
# per-tenant arrival streams of a declarative TenantSpec mix are merged
# into ONE global non-decreasing calendar (np.lexsort, tenant-id column
# carried through every slab), services are drawn per tenant in
# within-tenant arrival order and scattered back to merged order, and
# the batch kernels above gain a tenant column: ``tenants[pos]`` rides
# next to ``services[pos]`` through chunk admission, and completed
# lease timers are :class:`TenantEvent`s whose (tenant, pool) slots
# drive pool-partitioned hand-off.  Admission outcomes follow the
# rFaaS/compSpot taxonomy -- SUCCESS / CONGESTION / DEADLINE_MISSED --
# with the deadline classification done purely at flush time against
# per-tenant deadline masks (no per-event Python).  The per-event heap
# FSM stays the bit-identity referee.

#: Warm-pool partition plans over the tenant mix.
PARTITIONINGS = ("pinned", "shared", "overflow")


def _validate_partitioning(partitioning: str) -> None:
    if partitioning not in PARTITIONINGS:
        raise ValueError(
            f"partitioning must be one of {PARTITIONINGS}, got {partitioning!r}"
        )


@dataclass(frozen=True)
class MultiTenantConfig:
    """Knobs of the multi-tenant open-loop scenario."""

    #: The tenant mix (ordered; merged-calendar tenant ids are indices).
    specs: tuple
    #: Total warm executor slots, carved up by ``partitioning``.
    workers: int = 1 << 21
    #: "pinned" -- every slot belongs to one tenant's private partition
    #: (weighted by ``spec.workers``, largest remainder); "shared" --
    #: one oversubscribed tier, first come first served; "overflow" --
    #: half pinned by weight, half shared.
    partitioning: str = "pinned"
    lease_check_interval_ns: int = ms(64)
    seed: int = 0x7E7A77
    scheduler: Optional[str] = "wheel"
    granularity_bits: Union[int, str] = "auto"
    #: "batch" (vectorized chunk admission) or "per-event" (the referee).
    admission: str = "batch"
    subbits: int = 8
    shards: int = 1
    #: Dry-pool arrival policy, per-tenant thresholds: "queue" (FIFO up
    #: to ``spec.queue_cap``, then CONGESTION), "cold" (every dry
    #: arrival spins a sandbox up; it joins the *shared* tier), or
    #: "hybrid" (queue until ``hybrid_threshold``, then go cold).
    pool_policy: str = "queue"
    start_model: str = "remote-fork"
    hybrid_threshold: int = 64


def _tenant_pool_plan(
    specs: tuple, workers: int, partitioning: str
) -> tuple[list[int], int]:
    """Split *workers* into per-tenant pinned partitions + a shared tier."""
    _validate_partitioning(partitioning)
    weights = [max(1, spec.workers) for spec in specs]
    if partitioning == "shared":
        return [0] * len(specs), workers
    if partitioning == "pinned":
        pinned, shared = split_by_weights(workers, weights), 0
    else:  # overflow: half pinned by weight, half shared
        half = workers // 2
        pinned, shared = split_by_weights(half, weights), workers - half
    if min(pinned) < 1:
        raise ValueError(
            f"{workers} workers spread too thin over {len(specs)} pinned partitions"
        )
    return pinned, shared


def _draw_tenant_services(rng, size: int, spec: TenantSpec):
    """*size* log-normal service times around the tenant's compute cost."""
    draws = rng.lognormal(np.log(spec.compute_ns), spec.service_log_sigma, size=size)
    return np.maximum(draws.astype(np.int64), 1)


def _tenant_chunks(config: "MultiTenantConfig", shard: int, shards: int, lists: bool = True):
    """Yield this shard's ``(times, tenants, services)`` merged chunks.

    Every shard replays the **global** merged calendar (partition
    decomposition, as in :func:`_shard_chunks`) and keeps arrivals
    whose global merged index is ``shard (mod K)`` -- so the K-shard
    union is exactly the 1-shard stream, triple for triple.  Services
    are drawn from each tenant's own RNG stream in *within-tenant
    arrival order* and scattered back to merged order through boolean
    masks (masks preserve order), which keeps a tenant's service
    sequence independent of what the co-tenants do.
    """
    specs = config.specs
    streams = RngStreams(config.seed)
    service_rngs = [streams.stream(f"service/{spec.name}") for spec in specs]
    merged = merge_tenant_streams(
        [
            spec.arrival_stream(streams.stream(f"arrivals/{spec.name}"), chunk=_RNG_CHUNK)
            for spec in specs
        ],
        chunk=_RNG_CHUNK,
    )
    index = 0
    for times, tenants in merged:
        services = np.empty(times.size, dtype=np.int64)
        for t in range(len(specs)):
            mask = tenants == t
            count = int(mask.sum())
            if count:
                services[mask] = _draw_tenant_services(service_rngs[t], count, specs[t])
        if shards != 1:
            mine = (np.arange(index, index + times.size) % shards) == shard
            index += times.size
            if not mine.any():
                continue
            times, tenants, services = times[mine], tenants[mine], services[mine]
        yield (
            (times.tolist() if lists else times),
            tenants.tolist(),
            services.tolist(),
        )


class _TenantDriver:
    """The open-loop FSM over a merged multi-tenant calendar.

    Same two admission modes as :class:`_ShardDriver` -- a per-event
    method FSM (the bit-identity referee) and a fused closure kernel
    installed by ``start()`` for batch mode -- but dispatch is
    pool-partitioned and every outcome is per-tenant:

    * an arrival tries its tenant's **pinned** partition first, then
      the **shared** tier; a dry pool queues in the tenant's own FIFO
      up to ``spec.queue_cap`` (CONGESTION beyond it, the service draw
      still consumed positionally) unless the cold-start policy says
      to spin a sandbox up instead (the new executor joins the shared
      tier);
    * a completed **pinned** slot serves its own tenant's FIFO only; a
      completed **shared** slot serves the globally-oldest waiter
      across all tenant FIFOs (ties break on the lowest tenant id);
    * sojourns are buffered *with a parallel tenant column* and
      classified at flush time: per-tenant masks feed a
      :class:`KeyedStreamingSummary`, exact integer totals, and the
      vectorized ``sojourn > deadline_ns[t]`` DEADLINE_MISSED counts.

    The per-event referee schedules its chained arrival event at
    ``_ARRIVAL_PRIO`` -- the same priority batch admission uses -- so
    lease-vs-arrival ties resolve identically in both engines by
    construction, and eids within each priority class increase in
    admission order in both.
    """

    __slots__ = (
        "env",
        "config",
        "names",
        "stream",
        "keyed",
        "backlogs",
        "pinned",
        "shared_free",
        "waiting",
        "count",
        "arrived",
        "completed",
        "arrived_by",
        "dispatched_by",
        "missed_by",
        "congested_by",
        "queued_by",
        "cold_by",
        "max_backlog_by",
        "sojourn_totals",
        "sojourn_total",
        "deadlines",
        "queue_caps",
        "occupancy_peaks",
        "_interval",
        "_chunks",
        "_times",
        "_tenants",
        "_services",
        "_pos",
        "_next_time",
        "_next_tenant",
        "_next_service",
        "_buf_tenant",
        "_buf_sojourn",
        "_batch",
        "_lease_cbs",
        "_arrival_cbs",
        "_cold_cbs",
        "_hop_cbs",
        "_schedule",
        "_kernel_sync",
        "_kernel_drive",
        "_on_arrival",
        "_on_lease",
        "_on_cold",
        "_on_hop",
        "_is_wheel",
        "_threshold",
        "_spawn",
    )

    def __init__(self, env, config: MultiTenantConfig, shard: int, shards: int) -> None:
        self.env = env
        self.config = config
        specs = config.specs
        n = len(specs)
        self.names = [spec.name for spec in specs]
        self.stream = StreamingSummary(config.subbits)
        self.keyed = KeyedStreamingSummary(config.subbits)
        self.backlogs = [deque() for _ in range(n)]
        pinned_plan, shared_plan = _tenant_pool_plan(
            specs, config.workers, config.partitioning
        )
        self.pinned = [_shard_slots(p, shards, shard) for p in pinned_plan]
        self.shared_free = _shard_slots(shared_plan, shards, shard)
        self.waiting = 0
        total = sum(spec.invocations for spec in specs)
        self.count = _shard_invocations(total, shards, shard)
        self.arrived = 0
        self.completed = 0
        self.arrived_by = [0] * n
        self.dispatched_by = [0] * n
        self.missed_by = [0] * n
        self.congested_by = [0] * n
        self.queued_by = [0] * n
        self.cold_by = [0] * n
        self.max_backlog_by = [0] * n
        self.sojourn_totals = [0] * n
        self.sojourn_total = 0
        self.deadlines = [spec.effective_deadline_ns() for spec in specs]
        self.queue_caps = [spec.queue_cap for spec in specs]
        self.occupancy_peaks: dict[str, int] = {}
        self._interval = config.lease_check_interval_ns
        self._batch = config.admission == "batch"
        self._chunks = _tenant_chunks(config, shard, shards, lists=not self._batch)
        self._times: list[int] = []
        self._tenants: list[int] = []
        self._services: list[int] = []
        self._pos = 0
        self._next_time = 0
        self._next_tenant = 0
        self._next_service = 0
        self._buf_tenant: list[int] = []
        self._buf_sojourn: list[int] = []
        self._on_arrival = self._handle_arrival
        self._on_lease = self._handle_lease
        self._on_cold = self._handle_cold
        self._on_hop = self._handle_hop
        self._lease_cbs = (self._on_lease,)
        self._arrival_cbs = (self._on_arrival,)
        self._cold_cbs = (self._on_cold,)
        self._hop_cbs = (self._on_hop,)
        self._schedule = env.schedule_timeout
        self._kernel_sync: Any = None
        self._kernel_drive: Any = None
        self._is_wheel = isinstance(env, WheelEnvironment)
        policy = config.pool_policy
        if policy == "cold":
            self._threshold = 0
        elif policy == "hybrid":
            self._threshold = config.hybrid_threshold
        else:
            self._threshold = 1 << 62
        self._spawn = SANDBOX_PROFILES[config.start_model].spawn_ns(1)

    # -- per-event referee ---------------------------------------------

    def _advance(self) -> None:
        """Prefetch the next (arrival time, tenant, service) triple."""
        pos = self._pos
        while pos >= len(self._times):
            self._times, self._tenants, self._services = next(self._chunks)
            pos = 0
        self._next_time = self._times[pos]
        self._next_tenant = self._tenants[pos]
        self._next_service = self._services[pos]
        self._pos = pos + 1

    def start(self) -> None:
        if self.count < 1:
            raise ValueError("tenant shard needs at least one invocation")
        if self._batch:
            self._install_tenant_kernel()
            return
        self._advance()
        event = BatchEvent(self.env, self._arrival_cbs, 0)
        self.env.schedule(event, self._next_time, _ARRIVAL_PRIO)

    def drive(self) -> None:
        kernel = self._kernel_drive
        if kernel is not None:
            kernel()
        else:
            self.env.run()

    def _handle_arrival(self, event) -> None:
        env = self.env
        now = env._now
        tenant = self._next_tenant
        service = self._next_service
        self.arrived += 1
        self.arrived_by[tenant] += 1
        if self.arrived < self.count:
            self._advance()
            # Reused chained arrival event, same priority as batch
            # admission: tie order is engine-independent.
            env.schedule(event, self._next_time - now, _ARRIVAL_PRIO)
        if self.pinned[tenant]:
            self.pinned[tenant] -= 1
            self._begin(tenant, 0, now, service)
        elif self.shared_free:
            self.shared_free -= 1
            self._begin(tenant, 1, now, service)
        elif len(self.backlogs[tenant]) >= self._threshold:
            self._cold_start(tenant, service)
        elif len(self.backlogs[tenant]) >= self.queue_caps[tenant]:
            self.congested_by[tenant] += 1
        else:
            backlog = self.backlogs[tenant]
            backlog.append((now, service))
            self.waiting += 1
            self.queued_by[tenant] += 1
            if len(backlog) > self.max_backlog_by[tenant]:
                self.max_backlog_by[tenant] = len(backlog)

    def _begin(self, tenant: int, pool: int, arrival_ns: int, service: int) -> None:
        """Dispatch into a slot: one completion event at the finish time
        (its eid drawn *here*, at the dispatch sequence point -- the
        anchor of the cross-engine tie-break contract) plus, for leases
        longer than one check interval, a renewal-check hop chain.  The
        hops are pure bookkeeping (each re-arms only its own chain), so
        their fire order -- and their eids -- are unobservable; the
        batch-wheel kernel counts them arithmetically instead of
        walking them."""
        now = self.env._now
        self._buf_tenant.append(tenant)
        self._buf_sojourn.append(now - arrival_ns + service)
        if len(self._buf_sojourn) >= _FLUSH_BATCH:
            self._flush()
        event = TenantEvent(self.env, self._lease_cbs, now + service, tenant, pool)
        self._schedule(event, service)
        if service > self._interval:
            hop = BatchEvent(self.env, self._hop_cbs, now + service)
            self._schedule(hop, self._interval)

    def _redispatch(self, event, tenant: int, arrival_ns: int, service: int) -> None:
        """Reuse a completed slot's event for the waiter it serves."""
        now = self.env._now
        self._buf_tenant.append(tenant)
        self._buf_sojourn.append(now - arrival_ns + service)
        if len(self._buf_sojourn) >= _FLUSH_BATCH:
            self._flush()
        event._value = now + service
        self._schedule(event, service)
        if service > self._interval:
            hop = BatchEvent(self.env, self._hop_cbs, now + service)
            self._schedule(hop, self._interval)

    def _handle_hop(self, event) -> None:
        """Per-interval lease-renewal check: re-arm while the next check
        still lands strictly before the lease's finish, then vanish.
        Fires exactly ``(service - 1) // interval`` times per lease."""
        if self.env._now + self._interval < event._value:
            self._schedule(event, self._interval)

    def _handle_lease(self, event) -> None:
        completed = self.completed + 1
        self.completed = completed
        if not completed & 0x3FF and self._is_wheel:
            self._sample_wheel()
        if event.pool:
            if self.waiting:
                backlogs = self.backlogs
                best = -1
                best_key = 0
                for t in range(len(backlogs)):
                    b = backlogs[t]
                    if b and (best < 0 or b[0][0] < best_key):
                        best_key = b[0][0]
                        best = t
                arrival_ns, service = backlogs[best].popleft()
                self.waiting -= 1
                event.tenant = best
                self._redispatch(event, best, arrival_ns, service)
            else:
                self.shared_free += 1
        else:
            tenant = event.tenant
            backlog = self.backlogs[tenant]
            if backlog:
                arrival_ns, service = backlog.popleft()
                self.waiting -= 1
                self._redispatch(event, tenant, arrival_ns, service)
            else:
                self.pinned[tenant] += 1

    def _cold_start(self, tenant: int, service: int) -> None:
        self.cold_by[tenant] += 1
        event = TenantEvent(self.env, self._cold_cbs, service, tenant, 1)
        self._schedule(event, self._spawn)

    def _handle_cold(self, event) -> None:
        """Sandbox ready: the cold executor joins the *shared* tier --
        its spin-up event becomes the invocation's completion event, and
        at completion it serves shared-tier hand-off like any other
        slot."""
        now = self.env._now
        service = event._value
        self._buf_tenant.append(event.tenant)
        self._buf_sojourn.append(self._spawn + service)
        if len(self._buf_sojourn) >= _FLUSH_BATCH:
            self._flush()
        event._value = now + service
        event.callbacks = self._lease_cbs
        self._schedule(event, service)
        if service > self._interval:
            hop = BatchEvent(self.env, self._hop_cbs, now + service)
            self._schedule(hop, self._interval)

    # -- vectorized flush: the admission-outcome classifier ------------

    def _flush(self) -> None:
        buf = self._buf_sojourn
        if buf:
            vals = np.asarray(buf, dtype=np.int64)
            tens = np.asarray(self._buf_tenant, dtype=np.int64)
            self.sojourn_total += int(vals.sum())
            self.stream.observe_many(vals.astype(np.float64))
            keyed = self.keyed
            for t, name in enumerate(self.names):
                mask = tens == t
                count = int(mask.sum())
                if not count:
                    continue
                slab = vals[mask]
                self.dispatched_by[t] += count
                self.sojourn_totals[t] += int(slab.sum())
                # The deadline mask IS the outcome classifier: a
                # dispatched invocation either makes its sojourn budget
                # (SUCCESS) or misses it (DEADLINE_MISSED).
                self.missed_by[t] += int((slab > self.deadlines[t]).sum())
                keyed.observe_many(name, slab.astype(np.float64))
            buf.clear()
            self._buf_tenant.clear()
        if self._is_wheel:
            self._sample_wheel(force=True)

    _sample_wheel = _OpenLoopDriver._sample_wheel

    def finish(self) -> None:
        if self._kernel_sync is not None:
            self._kernel_sync()
        self._flush()

    # -- fused batch kernel --------------------------------------------

    def _install_tenant_kernel(self) -> None:
        """Build the tenant-aware batch FSM as closures and admit chunk 0.

        Structurally :meth:`_ShardDriver._install_batch_kernel` with a
        tenant column: chunk admission schedules :class:`TenantEvent`
        slabs (``cls=TenantEvent`` through ``schedule_batch``), the
        arrival handler reads ``tenants[pos]`` next to
        ``services[pos]``, dispatch stamps ``(tenant, pool)`` into the
        event it reuses as the completion event, and completion hands
        the slot off by pool tier.  Per-tenant counters live in the
        driver's own lists (shared mutable state, no sync needed);
        scalar gauges are closure cells written back by ``sync()``.
        The fused wheel loop replicates the run loop's pop order and
        accounting exactly as the single-stream kernel does.

        This kernel's lane-equivalent: lease renewal-check hops are
        *virtualized*.  A dispatched lease's finish is fully determined
        at dispatch, so the kernel schedules the completion event at
        ``start + service`` directly and adds the per-event engines'
        ``(service - 1) // interval`` renewal fires to
        ``events_processed`` in closed form -- the hops it never walks.
        Exactness: a hop re-arms only its own chain (no shared state),
        so hop fire order and hop eids are unobservable; completion
        eids are drawn at the dispatch sequence point in *every*
        engine (see :meth:`_begin`), so completion eids ascend in
        dispatch order everywhere and every tie-break class
        (completion-vs-completion by eid, completion-vs-arrival by
        priority) resolves identically.  Cold-start spin-ups keep real
        hop chains on all engines (they are rare and foreign-dispatched
        here), so their counts match by construction.
        """
        env = self.env
        schedule = env.schedule_timeout
        schedule_batch = env.schedule_batch
        interval = self._interval
        flush_batch = _FLUSH_BATCH
        flush = self._flush
        sample = self._sample_wheel
        buf_tenant = self._buf_tenant
        buf_sojourn = self._buf_sojourn
        backlogs = self.backlogs
        ntenants = len(backlogs)
        pinned = self.pinned
        arrived_by = self.arrived_by
        congested_by = self.congested_by
        queued_by = self.queued_by
        cold_by = self.cold_by
        max_backlog_by = self.max_backlog_by
        queue_caps = self.queue_caps
        chunks = self._chunks
        total = self.count
        is_wheel = self._is_wheel
        if is_wheel:
            slots0 = env._slots0
            mask0 = env._mask0
            eid = env._eid
            # Bound once: _eid is never rebound (no lane reservations).
            eidn = eid.__next__
        else:
            slots0 = mask0 = eid = eidn = None
        shared_free = self.shared_free
        waiting = 0
        arrived = 0
        completed = 0
        tenants: list[int] = []
        services: list[int] = []
        nservices = 0
        pos = 0
        lease_cbs: tuple = ()
        cold_cbs: tuple = ()
        hop_cbs: tuple = ()
        spawn = self._spawn
        threshold = self._threshold

        def admit_chunk() -> None:
            nonlocal tenants, services, nservices, pos
            times, tenants, services = next(chunks)
            nservices = len(services)
            pos = 0
            schedule_batch(times, on_arrival, _ARRIVAL_PRIO, TenantEvent)

        def on_arrival(event) -> None:
            nonlocal pos, arrived, shared_free, waiting
            now = env._now
            tenant = tenants[pos]
            service = services[pos]
            pos += 1
            arrived += 1
            arrived_by[tenant] += 1
            if pos == nservices and arrived < total:
                admit_chunk()
            if pinned[tenant]:
                pinned[tenant] -= 1
                pool = 0
            elif shared_free:
                shared_free -= 1
                pool = 1
            elif len(backlogs[tenant]) >= threshold:
                cold_by[tenant] += 1
                schedule(TenantEvent(env, cold_cbs, service, tenant, 1), spawn)
                return
            elif len(backlogs[tenant]) >= queue_caps[tenant]:
                congested_by[tenant] += 1
                return
            else:
                backlog = backlogs[tenant]
                backlog.append((now, service))
                waiting += 1
                queued_by[tenant] += 1
                if len(backlog) > max_backlog_by[tenant]:
                    max_backlog_by[tenant] = len(backlog)
                return
            buf_tenant.append(tenant)
            buf_sojourn.append(service)  # zero wait + service
            if len(buf_sojourn) >= flush_batch:
                flush()
            when = now + service
            event.tenant = tenant
            event.pool = pool
            event._value = when
            event.callbacks = lease_cbs
            if is_wheel:
                s0 = when >> env._gbits
                d0 = s0 - env._cursor
                if 0 < d0 <= mask0:
                    slots0[s0 & mask0].append((when, 1, next(eid), event))
                    env._l0_count += 1
                else:
                    schedule(event, service)
            else:
                schedule(event, service)
            if service > interval:
                schedule(BatchEvent(env, hop_cbs, when), interval)

        def on_hop(event) -> None:
            """Lease-renewal check chain (real events on the per-event
            engines; the fused wheel loop counts these arithmetically)."""
            if env._now + interval < event._value:
                schedule(event, interval)

        def on_lease(event) -> None:
            nonlocal completed, shared_free, waiting
            now = env._now
            completed += 1
            if not completed & 0x3FF and is_wheel:
                sample()
            if event.pool:
                if waiting:
                    best = -1
                    best_key = 0
                    for t in range(ntenants):
                        b = backlogs[t]
                        if b and (best < 0 or b[0][0] < best_key):
                            best_key = b[0][0]
                            best = t
                    arrival_ns, service = backlogs[best].popleft()
                    waiting -= 1
                    event.tenant = best
                else:
                    shared_free += 1
                    return
            else:
                tenant = event.tenant
                backlog = backlogs[tenant]
                if backlog:
                    arrival_ns, service = backlog.popleft()
                    waiting -= 1
                else:
                    pinned[tenant] += 1
                    return
            buf_tenant.append(event.tenant)
            buf_sojourn.append(now - arrival_ns + service)
            if len(buf_sojourn) >= flush_batch:
                flush()
            when = now + service
            event._value = when
            if is_wheel:
                s0 = when >> env._gbits
                d0 = s0 - env._cursor
                if 0 < d0 <= mask0:
                    slots0[s0 & mask0].append((when, 1, next(eid), event))
                    env._l0_count += 1
                else:
                    schedule(event, service)
            else:
                schedule(event, service)
            if service > interval:
                schedule(BatchEvent(env, hop_cbs, when), interval)

        def on_cold(event) -> None:
            """Sandbox ready: dispatched through the generic/foreign
            path -- cold events are rare by construction."""
            now = env._now
            service = event._value
            buf_tenant.append(event.tenant)
            buf_sojourn.append(spawn + service)
            if len(buf_sojourn) >= flush_batch:
                flush()
            when = now + service
            event._value = when
            event.callbacks = lease_cbs
            schedule(event, service)
            if service > interval:
                schedule(BatchEvent(env, hop_cbs, when), interval)

        def drive() -> None:
            """Fused event loop: the wheel pop fast path with the tenant
            arrival/lease handlers inlined (see
            :meth:`_ShardDriver._install_batch_kernel` for the shadowing
            and sync discipline this replicates verbatim)."""
            nonlocal pos, arrived, completed, shared_free, waiting
            pop = env._pop
            spill = env._spill
            overflow = env._queue
            active = env._active
            ai = env._ai
            alen = len(active)
            processed = 0
            now = env._now
            gbits = env._gbits
            cursor = env._cursor
            l0_add = 0
            clear = not spill and not overflow
            try:
                while True:
                    if ai < alen:
                        if clear:
                            entry = active[ai]
                            active[ai] = None
                            ai += 1
                        else:
                            entry = active[ai]
                            if spill and spill[0] < entry:
                                head = spill[0]
                                if overflow and overflow[0] < head:
                                    entry = heappop(overflow)
                                else:
                                    entry = heappop(spill)
                                clear = not spill and not overflow
                            elif overflow and overflow[0] < entry:
                                entry = heappop(overflow)
                                clear = not spill and not overflow
                            else:
                                active[ai] = None
                                ai += 1
                    else:
                        env._ai = ai
                        env._now = now
                        if l0_add:
                            env._l0_count += l0_add
                            l0_add = 0
                        try:
                            entry = pop()
                        except IndexError:
                            return
                        active = env._active
                        ai = env._ai
                        alen = len(active)
                        gbits = env._gbits
                        cursor = env._cursor
                        clear = not spill and not overflow
                    now = entry[0]
                    event = entry[3]
                    processed += 1
                    cbs = event.callbacks
                    if cbs is lease_cbs:
                        # Completion events fire exactly at their stored
                        # finish: the renewal-check hops the per-event
                        # engines walk were already counted
                        # arithmetically at dispatch, so there is no
                        # re-arm branch on this path.
                        completed += 1
                        if not completed & 0x3FF:
                            env._now = now
                            env._ai = ai
                            if l0_add:
                                env._l0_count += l0_add
                                l0_add = 0
                            sample()
                        if event.pool:
                            if waiting:
                                best = -1
                                best_key = 0
                                for t in range(ntenants):
                                    b = backlogs[t]
                                    if b and (best < 0 or b[0][0] < best_key):
                                        best_key = b[0][0]
                                        best = t
                                arrival_ns, service = backlogs[best].popleft()
                                waiting -= 1
                                event.tenant = best
                                tenant = best
                            else:
                                shared_free += 1
                                continue
                        else:
                            tenant = event.tenant
                            backlog = backlogs[tenant]
                            if backlog:
                                arrival_ns, service = backlog.popleft()
                                waiting -= 1
                            else:
                                pinned[tenant] += 1
                                continue
                        buf_tenant.append(tenant)
                        buf_sojourn.append(now - arrival_ns + service)
                        if len(buf_sojourn) >= flush_batch:
                            env._now = now
                            env._ai = ai
                            if l0_add:
                                env._l0_count += l0_add
                                l0_add = 0
                            flush()
                        when = now + service
                        event._value = when
                        processed += (service - 1) // interval
                        s0 = when >> gbits
                        d0 = s0 - cursor
                        if 0 < d0 <= mask0:
                            slots0[s0 & mask0].append((when, 1, eidn(), event))
                            l0_add += 1
                        else:
                            env._now = now
                            env._ai = ai
                            if l0_add:
                                env._l0_count += l0_add
                                l0_add = 0
                            schedule(event, service)
                            gbits = env._gbits
                            cursor = env._cursor
                            clear = not spill and not overflow
                        continue
                    if cbs.__class__ is tuple and cbs[0] is on_arrival:
                        tenant = tenants[pos]
                        service = services[pos]
                        pos += 1
                        arrived += 1
                        arrived_by[tenant] += 1
                        if pos == nservices and arrived < total:
                            env._now = now
                            env._ai = ai
                            if l0_add:
                                env._l0_count += l0_add
                                l0_add = 0
                            admit_chunk()
                            gbits = env._gbits
                            cursor = env._cursor
                            clear = not spill and not overflow
                        if pinned[tenant]:
                            pinned[tenant] -= 1
                            pool = 0
                        elif shared_free:
                            shared_free -= 1
                            pool = 1
                        elif len(backlogs[tenant]) >= threshold:
                            cold_by[tenant] += 1
                            env._now = now
                            env._ai = ai
                            if l0_add:
                                env._l0_count += l0_add
                                l0_add = 0
                            schedule(TenantEvent(env, cold_cbs, service, tenant, 1), spawn)
                            gbits = env._gbits
                            cursor = env._cursor
                            clear = not spill and not overflow
                            continue
                        elif len(backlogs[tenant]) >= queue_caps[tenant]:
                            congested_by[tenant] += 1
                            continue
                        else:
                            backlog = backlogs[tenant]
                            backlog.append((now, service))
                            waiting += 1
                            queued_by[tenant] += 1
                            blen = len(backlog)
                            if blen > max_backlog_by[tenant]:
                                max_backlog_by[tenant] = blen
                            continue
                        buf_tenant.append(tenant)
                        buf_sojourn.append(service)
                        if len(buf_sojourn) >= flush_batch:
                            env._now = now
                            env._ai = ai
                            if l0_add:
                                env._l0_count += l0_add
                                l0_add = 0
                            flush()
                        when = now + service
                        event.tenant = tenant
                        event.pool = pool
                        event._value = when
                        event.callbacks = lease_cbs
                        processed += (service - 1) // interval
                        s0 = when >> gbits
                        d0 = s0 - cursor
                        if 0 < d0 <= mask0:
                            slots0[s0 & mask0].append((when, 1, eidn(), event))
                            l0_add += 1
                        else:
                            env._now = now
                            env._ai = ai
                            if l0_add:
                                env._l0_count += l0_add
                                l0_add = 0
                            schedule(event, service)
                            gbits = env._gbits
                            cursor = env._cursor
                            clear = not spill and not overflow
                        continue
                    # Foreign event (cold spin-ups included): full
                    # generic run-loop semantics.
                    env._now = now
                    env._ai = ai
                    if l0_add:
                        env._l0_count += l0_add
                        l0_add = 0
                    if cbs.__class__ is tuple:
                        cbs[0](event)
                    else:
                        event.callbacks = None
                        for callback in cbs:
                            callback(event)
                    if not event._ok and not event._defused:
                        exc = event._value
                        if isinstance(exc, BaseException):
                            raise exc
                        raise RuntimeError(f"event failed with non-exception {exc!r}")
                    gbits = env._gbits
                    cursor = env._cursor
                    clear = not spill and not overflow
            finally:
                env._ai = ai
                env._now = now
                if l0_add:
                    env._l0_count += l0_add
                env.events_processed += processed

        def sync() -> None:
            self.arrived = arrived
            self.completed = completed
            self.shared_free = shared_free
            self.waiting = waiting

        lease_cbs = (on_lease,)
        cold_cbs = (on_cold,)
        hop_cbs = (on_hop,)
        self._on_arrival = on_arrival
        self._on_lease = on_lease
        self._on_cold = on_cold
        self._on_hop = on_hop
        self._lease_cbs = lease_cbs
        self._cold_cbs = cold_cbs
        self._hop_cbs = hop_cbs
        self._kernel_sync = sync
        self._kernel_drive = drive if is_wheel else None
        admit_chunk()


@dataclass
class TenantShardResult:
    """One shard of the multi-tenant scenario: per-tenant accumulators
    (exact integer counters + keyed streaming summaries) plus the
    per-environment measurement."""

    shard: int
    shards: int
    names: list[str]
    invocations: int
    completed: int
    arrived_by: list[int]
    dispatched_by: list[int]
    missed_by: list[int]
    congested_by: list[int]
    queued_by: list[int]
    cold_by: list[int]
    max_backlog_by: list[int]
    sojourn_totals: list[int]
    sojourn_total: int
    events_processed: int
    wall_s: float
    peak_rss_bytes: int
    final_now_ns: int
    timeout_pool_hits: int
    stream: StreamingSummary
    keyed: KeyedStreamingSummary
    occupancy: dict[str, int] = field(default_factory=dict)


@dataclass
class TenantStats:
    """One tenant's admission outcomes and sojourn tail over a run."""

    name: str
    arrived: int
    dispatched: int
    missed: int
    congested: int
    queued: int
    cold_starts: int
    max_backlog: int
    sojourn_total: int
    latency: Optional[SummaryStats]

    @property
    def succeeded(self) -> int:
        """SUCCESS outcomes: dispatched and made the deadline."""
        return self.dispatched - self.missed

    @property
    def miss_rate(self) -> float:
        """DEADLINE_MISSED per dispatched invocation."""
        return self.missed / self.dispatched if self.dispatched else 0.0

    @property
    def congestion_rate(self) -> float:
        """CONGESTION rejections per arrival."""
        return self.congested / self.arrived if self.arrived else 0.0


@dataclass
class TenantScaleResult:
    """A multi-tenant open-loop run (merged across shards)."""

    scheduler: str
    admission: str
    partitioning: str
    pool_policy: str
    shards: int
    invocations: int
    workers: int
    completed: int
    events_processed: int
    wall_s: float
    events_per_sec: float
    peak_rss_bytes: int
    final_now_ns: int
    queued: int
    congested: int
    missed: int
    cold_starts: int
    latency: SummaryStats
    tenants: dict[str, TenantStats]
    stream_buckets: int
    occupancy: dict[str, int] = field(default_factory=dict)

    def fingerprint(self) -> dict[str, Any]:
        """Simulated-domain outputs: identical across heap/wheel engines
        and (in the unsaturated regime) across K=1/K=2 shard splits."""
        per_tenant = {}
        for name, t in self.tenants.items():
            stats = {
                "arrived": t.arrived,
                "dispatched": t.dispatched,
                "missed": t.missed,
                "congested": t.congested,
                "queued": t.queued,
                "cold_starts": t.cold_starts,
                "sojourn_total": t.sojourn_total,
            }
            if t.latency is not None:
                stats.update(
                    latency_median_ns=t.latency.median,
                    latency_p95_ns=t.latency.p95,
                    latency_p99_ns=t.latency.p99,
                    latency_min_ns=t.latency.minimum,
                    latency_max_ns=t.latency.maximum,
                )
            per_tenant[name] = stats
        return {
            "invocations": self.invocations,
            "completed": self.completed,
            "events_processed": self.events_processed,
            "final_now_ns": self.final_now_ns,
            "queued": self.queued,
            "congested": self.congested,
            "missed": self.missed,
            "cold_starts": self.cold_starts,
            "latency_p99_ns": self.latency.p99,
            "latency_mean_ns": self.latency.mean,
            "tenants": per_tenant,
        }

    def table(self) -> Table:
        table = Table(
            f"Multi-tenant scale run -- {self.invocations:,} invocations, "
            f"{self.partitioning} partitioning ({self.scheduler} scheduler, "
            f"{self.admission} admission)",
            [
                "tenant",
                "arrived",
                "p95 sojourn",
                "p99 sojourn",
                "miss rate",
                "congestion",
                "queued",
                "cold",
            ],
        )
        for name, t in self.tenants.items():
            table.add_row(
                name,
                f"{t.arrived:,}",
                format_ns(t.latency.p95) if t.latency else "-",
                format_ns(t.latency.p99) if t.latency else "-",
                f"{t.miss_rate:.4f}",
                f"{t.congestion_rate:.4f}",
                f"{t.queued:,}",
                f"{t.cold_starts:,}",
            )
        table.add_row(
            "(all)",
            f"{self.invocations:,}",
            format_ns(self.latency.p95),
            format_ns(self.latency.p99),
            f"{self.missed / max(1, self.completed):.4f}",
            f"{self.congested / max(1, self.invocations):.4f}",
            f"{self.queued:,}",
            f"{self.cold_starts:,}",
        )
        return table


def _run_tenant_shard(
    shard: int,
    shards: int,
    specs: tuple,
    workers: int = 1 << 21,
    partitioning: str = "pinned",
    scheduler: str = "wheel",
    admission: str = "batch",
    pool_policy: str = "queue",
    start_model: str = "remote-fork",
    hybrid_threshold: int = 64,
    lease_check_interval_ns: int = ms(64),
    granularity_bits: Union[int, str] = "auto",
    seed: int = 0x7E7A77,
    subbits: int = 8,
) -> TenantShardResult:
    """Run one shard of the multi-tenant scenario (picklable factory)."""
    validate_granularity_bits(granularity_bits)
    _validate_admission(admission)
    _validate_partitioning(partitioning)
    _validate_pool_policy(pool_policy, start_model, 0, hybrid_threshold)
    if not 0 <= shard < shards:
        raise ValueError(f"shard {shard} outside [0, {shards})")
    config = MultiTenantConfig(
        specs=tuple(specs),
        workers=workers,
        partitioning=partitioning,
        lease_check_interval_ns=lease_check_interval_ns,
        seed=seed,
        scheduler=scheduler,
        granularity_bits=granularity_bits,
        admission=admission,
        subbits=subbits,
        shards=shards,
        pool_policy=pool_policy,
        start_model=start_model,
        hybrid_threshold=hybrid_threshold,
    )
    env_kwargs = {"granularity_bits": granularity_bits} if scheduler == "wheel" else {}
    env = new_environment(config.scheduler, **env_kwargs)
    driver = _TenantDriver(env, config, shard, shards)
    driver.start()

    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    started = time.perf_counter()
    try:
        driver.drive()
    finally:
        if gc_was_enabled:
            gc.enable()
    wall_s = time.perf_counter() - started
    driver.finish()

    congested = sum(driver.congested_by)
    if driver.completed + congested != driver.count:
        raise RuntimeError(
            f"tenant shard {shard}/{shards} lost invocations: "
            f"{driver.completed} completed + {congested} congested "
            f"of {driver.count}"
        )
    return TenantShardResult(
        shard=shard,
        shards=shards,
        names=list(driver.names),
        invocations=driver.count,
        completed=driver.completed,
        arrived_by=list(driver.arrived_by),
        dispatched_by=list(driver.dispatched_by),
        missed_by=list(driver.missed_by),
        congested_by=list(driver.congested_by),
        queued_by=list(driver.queued_by),
        cold_by=list(driver.cold_by),
        max_backlog_by=list(driver.max_backlog_by),
        sojourn_totals=list(driver.sojourn_totals),
        sojourn_total=driver.sojourn_total,
        events_processed=env.events_processed,
        wall_s=wall_s,
        peak_rss_bytes=_peak_rss_bytes(),
        final_now_ns=env.now,
        timeout_pool_hits=env.timeout_pool_hits,
        stream=driver.stream,
        keyed=driver.keyed,
        occupancy=dict(driver.occupancy_peaks),
    )


def merge_tenant_shards(
    results: list[TenantShardResult],
    *,
    scheduler: str,
    admission: str,
    partitioning: str,
    pool_policy: str,
    workers: int,
    wall_s: float,
) -> TenantScaleResult:
    """Fold per-shard tenant accumulators, in shard order, into one result.

    Counts sum per tenant; clocks take the max; the keyed summaries
    fold with the exact :meth:`KeyedStreamingSummary.merge` path, and
    every per-tenant mean comes from summed exact integer totals."""
    if not results:
        raise ValueError("merge of zero tenant shards")
    if [r.shard for r in results] != list(range(len(results))):
        raise ValueError("tenant shard results must arrive complete and in shard order")
    names = results[0].names
    stream = StreamingSummary.merged([r.stream for r in results])
    keyed = KeyedStreamingSummary.merged([r.keyed for r in results])
    occupancy: dict[str, int] = {}
    for result in results:
        for key, value in result.occupancy.items():
            if value > occupancy.get(key, -1):
                occupancy[key] = value
    tenants: dict[str, TenantStats] = {}
    for t, name in enumerate(names):
        dispatched = sum(r.dispatched_by[t] for r in results)
        sojourn_total = sum(r.sojourn_totals[t] for r in results)
        if dispatched:
            latency = replace(
                keyed.summarize(name), mean=sojourn_total / dispatched
            )
        else:
            latency = None
        tenants[name] = TenantStats(
            name=name,
            arrived=sum(r.arrived_by[t] for r in results),
            dispatched=dispatched,
            missed=sum(r.missed_by[t] for r in results),
            congested=sum(r.congested_by[t] for r in results),
            queued=sum(r.queued_by[t] for r in results),
            cold_starts=sum(r.cold_by[t] for r in results),
            max_backlog=max(r.max_backlog_by[t] for r in results),
            sojourn_total=sojourn_total,
            latency=latency,
        )
    events = sum(r.events_processed for r in results)
    completed = sum(r.completed for r in results)
    return TenantScaleResult(
        scheduler=scheduler,
        admission=admission,
        partitioning=partitioning,
        pool_policy=pool_policy,
        shards=len(results),
        invocations=sum(r.invocations for r in results),
        workers=workers,
        completed=completed,
        events_processed=events,
        wall_s=wall_s,
        events_per_sec=events / wall_s if wall_s > 0 else 0.0,
        peak_rss_bytes=max(r.peak_rss_bytes for r in results),
        final_now_ns=max(r.final_now_ns for r in results),
        queued=sum(sum(r.queued_by) for r in results),
        congested=sum(sum(r.congested_by) for r in results),
        missed=sum(sum(r.missed_by) for r in results),
        cold_starts=sum(sum(r.cold_by) for r in results),
        latency=replace(
            stream.summarize(),
            mean=sum(r.sojourn_total for r in results) / stream.count,
        ),
        tenants=tenants,
        stream_buckets=len(stream.histogram) + keyed.buckets(),
        occupancy=occupancy,
    )


def run_tenant_scale(
    specs=None,
    invocations: Optional[int] = None,
    rate_scale: float = 1.0,
    compute_scale: float = 1.0,
    workers: int = 1 << 21,
    partitioning: str = "pinned",
    scheduler: str = "wheel",
    admission: str = "batch",
    pool_policy: str = "queue",
    start_model: str = "remote-fork",
    hybrid_threshold: int = 64,
    lease_check_interval_ns: int = ms(64),
    granularity_bits: Union[int, str] = "auto",
    seed: int = 0x7E7A77,
    subbits: int = 8,
    shards: int = 1,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
) -> TenantScaleResult:
    """Drive the multi-tenant open-loop scenario once and measure it.

    *specs* defaults to :func:`repro.workloads.tenants.standard_mix`
    rescaled by (*invocations*, *rate_scale*, *compute_scale*); pass an
    explicit mix to override.  ``shards > 1`` decomposes the one merged
    calendar by global arrival index (partition split) and fans the
    shards out over ``parallel`` worker processes -- exact in the
    unsaturated regime, where the K-shard merge is bit-identical to
    the 1-shard run.
    """
    if specs is None:
        specs = standard_mix(invocations, rate_scale, compute_scale)
    specs = tuple(specs)
    if not specs:
        raise ValueError("multi-tenant run needs at least one tenant spec")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"tenant names must be unique, got {names}")
    validate_granularity_bits(granularity_bits)
    _validate_admission(admission)
    _validate_partitioning(partitioning)
    _validate_pool_policy(pool_policy, start_model, 0, hybrid_threshold)
    _tenant_pool_plan(specs, workers, partitioning)  # fail fast on thin pools
    total = sum(spec.invocations for spec in specs)
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards > total:
        raise ValueError(f"{shards} shards for {total} invocations (some get none)")
    shared_kwargs = dict(
        shards=shards,
        specs=specs,
        workers=workers,
        partitioning=partitioning,
        scheduler=scheduler,
        admission=admission,
        pool_policy=pool_policy,
        start_model=start_model,
        hybrid_threshold=hybrid_threshold,
        lease_check_interval_ns=lease_check_interval_ns,
        granularity_bits=granularity_bits,
        seed=seed,
        subbits=subbits,
    )
    if shards == 1:
        started = time.perf_counter()
        outcomes: list = [_run_tenant_shard(shard=0, **shared_kwargs)]
        wall_s = time.perf_counter() - started
    else:
        from repro.parallel import FailedPoint, RunSpec, run_specs

        run_spec_list = [
            RunSpec(
                factory="repro.experiments.scale:_run_tenant_shard",
                kwargs={"shard": shard, **shared_kwargs},
                index=shard,
                label=f"tenant-shard[{shard}/{shards}]",
            )
            for shard in range(shards)
        ]
        cache = None
        if cache_dir is not None:
            from repro.cache import ResultCache

            cache = ResultCache(cache_dir)
        started = time.perf_counter()
        outcomes = run_specs(run_spec_list, parallel, cache=cache)
        wall_s = time.perf_counter() - started
        failed = [o for o in outcomes if isinstance(o, FailedPoint)]
        if failed:
            raise RuntimeError(f"multi-tenant run failed: {failed[0].summary()}")
    return merge_tenant_shards(
        outcomes,
        scheduler=scheduler or "heap",
        admission=admission,
        partitioning=partitioning,
        pool_policy=pool_policy,
        workers=workers,
        wall_s=wall_s,
    )
