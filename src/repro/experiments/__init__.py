"""Experiment harnesses: one module per table/figure of the paper.

Each harness regenerates its figure's rows/series from scratch --
workload generation, parameter sweep, baselines, statistics -- and
returns a result object with a ``table()`` for printing and raw series
for assertions.  The benchmark suite (``benchmarks/``) wraps these in
pytest-benchmark targets; EXPERIMENTS.md records paper-vs-measured.

=============  ====================================================
experiment     what it reproduces
=============  ====================================================
``fig1``       platform comparison: rFaaS vs Lambda/OpenWhisk/Nightcore
``fig2``       Piz Daint utilization (motivation)
``fig8``       hot/warm invocation latency vs RDMA and TCP
``fig9``       cold-start breakdown, bare-metal vs Docker
``fig10``      parallel scalability, 1-32 workers
``fig11``      SeBS thumbnailer + ResNet inference vs Lambda
``fig12``      Black-Scholes: OpenMP vs rFaaS vs hybrid
``fig13``      MPI GEMM + Jacobi acceleration
``table1``     the requirements matrix, checked programmatically
``billing``    the Sec. IV-C cost model (ablation)
``leases``     leases vs centralized scheduling (ablation)
=============  ====================================================
"""

from repro.experiments import registry
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["EXPERIMENTS", "registry", "run_experiment"]
