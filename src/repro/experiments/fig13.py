"""Fig. 13: HPC applications -- MPI GEMM (a) and Jacobi (b).

Per-rank kernels on two 36-core MPI nodes, optionally accelerated by
one rFaaS function per rank on separate executor nodes.  Expected
speedup bands from the paper: 1.88-1.94x (GEMM), 1.7-2.2x (Jacobi).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import Table, format_ns
from repro.hpc.apps import GemmScenario, JacobiScenario

DEFAULT_RANKS = (2, 4, 8, 18, 36)


@dataclass
class Fig13Result:
    ranks: tuple[int, ...]
    gemm: dict[str, dict[int, int]] = field(default_factory=dict)
    jacobi: dict[str, dict[int, int]] = field(default_factory=dict)

    def gemm_speedup(self, ranks: int) -> float:
        return self.gemm["mpi"][ranks] / self.gemm["mpi+rfaas"][ranks]

    def jacobi_speedup(self, ranks: int) -> float:
        return self.jacobi["mpi"][ranks] / self.jacobi["mpi+rfaas"][ranks]

    def table(self) -> Table:
        table = Table(
            "Fig. 13 -- MPI applications (median kernel time across ranks)",
            ["ranks", "gemm mpi", "gemm +rfaas", "speedup", "jacobi mpi", "jacobi +rfaas", "speedup"],
        )
        for p in self.ranks:
            table.add_row(
                p,
                format_ns(self.gemm["mpi"][p]),
                format_ns(self.gemm["mpi+rfaas"][p]),
                f"{self.gemm_speedup(p):.2f}x",
                format_ns(self.jacobi["mpi"][p]),
                format_ns(self.jacobi["mpi+rfaas"][p]),
                f"{self.jacobi_speedup(p):.2f}x",
            )
        return table


def run_fig13(
    ranks: tuple[int, ...] = DEFAULT_RANKS,
    gemm_n: int = 4096,
    gemm_repetitions: int = 3,
    jacobi_n: int = 2000,
    jacobi_iterations: int = 500,
) -> Fig13Result:
    result = Fig13Result(ranks=tuple(ranks))
    gemm = GemmScenario(n=gemm_n, repetitions=gemm_repetitions)
    jacobi = JacobiScenario(n=jacobi_n, iterations=jacobi_iterations)
    result.gemm["mpi"] = {p: gemm.mpi_ns(p) for p in ranks}
    result.gemm["mpi+rfaas"] = {p: gemm.mpi_rfaas_ns(p) for p in ranks}
    result.jacobi["mpi"] = {p: jacobi.mpi_ns(p) for p in ranks}
    result.jacobi["mpi+rfaas"] = {p: jacobi.mpi_rfaas_ns(p) for p in ranks}
    return result
