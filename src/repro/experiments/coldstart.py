"""Cold-start spectrum sweep: what does provisioned concurrency buy?

The paper's Fig. 9 measures *one* cold start (bare-metal ~25 ms vs
Docker ~2.7 s); MITOSIS ("No Provisioned Concurrency", PAPERS.md)
argues an RDMA remote-fork start path (~1 ms) collapses the
warm-vs-cold tradeoff entirely.  This experiment asks the question at
scale: drive the open-loop scenario (10^6 invocations by default) over
the spectrum {provisioned pool size x start model x arrival shape}
with a dry-pool cold-start policy, and report per point

* the **cold-start fraction** -- how many invocations paid a spawn,
* the **p95/p99 sojourn** -- what the tail felt like,
* the **executor-seconds provisioned** -- what the capacity cost:
  ``pool x simulated span`` for the warm slots, plus the busy time the
  cold starts bought, plus the keepalive each reclaimed cold executor
  idled before teardown.

Together these are the capacity-planning tool the ROADMAP envisions: a
small pool + remote-fork buys Docker-pool tail latency at a fraction
of the executor-seconds, while a Docker cold path needs a pool ~the
full concurrency to hide its 2.7 s spawns.

Engine notes: every point runs the wheel scheduler's vectorized cold
lane (see :mod:`repro.sim.wheel`); ``verify=True`` replays each point
on the per-event heap referee and records bit-identity.  Profiling a
sweep is refused with a pointer at the single-run path -- see
``--profile`` on the ``scale`` experiment, which covers the cold
driver (``scale --pool-policy cold --profile``).

Run it::

    python -m repro.experiments coldstart --quick
    python -m repro.experiments coldstart --pool-policy hybrid
    python -m repro.experiments scale --pool-policy cold --profile
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional, Union

from repro.analysis.reporting import Table, format_ns
from repro.core.sandbox import SANDBOX_PROFILES
from repro.experiments.scale import run_scale
from repro.sim.clock import us


@dataclass(frozen=True)
class ColdstartPoint:
    """One spectrum point: a full open-loop run's cold-start economics."""

    pool_size: int
    start_model: str
    arrival_shape: str
    spawn_ns: int
    invocations: int
    cold_starts: int
    cold_fraction: float
    cold_reclaimed: int
    cold_retained: int
    max_backlog: int
    p50_ns: int
    p95_ns: int
    p99_ns: int
    #: Capacity cost: warm-pool slot-time + cold busy time + keepalive
    #: idled by reclaimed cold executors, in seconds of executor time.
    executor_seconds: float
    wall_s: float
    events_per_sec: float
    #: Heap-referee agreement (``None`` unless ``verify=True``).
    bit_identical: Optional[bool] = None


@dataclass
class ColdstartResult:
    """The swept spectrum plus the scenario-level knobs."""

    invocations: int
    pool_policy: str
    keepalive_ns: int
    scheduler: str
    points: list[ColdstartPoint] = field(default_factory=list)
    wall_s: float = 0.0

    def fingerprint(self) -> dict[str, Any]:
        """Simulated-domain outputs per point -- scheduler-independent."""
        out: dict[str, Any] = {}
        for p in self.points:
            key = f"pool={p.pool_size}|model={p.start_model}|shape={p.arrival_shape}"
            out[key] = {
                "cold_starts": p.cold_starts,
                "cold_reclaimed": p.cold_reclaimed,
                "cold_retained": p.cold_retained,
                "max_backlog": p.max_backlog,
                "p50_ns": p.p50_ns,
                "p95_ns": p.p95_ns,
                "p99_ns": p.p99_ns,
            }
        return out

    def table(self) -> Table:
        table = Table(
            f"Cold-start spectrum -- {self.invocations:,} invocations, "
            f"policy={self.pool_policy}, keepalive={format_ns(self.keepalive_ns)} "
            f"({self.scheduler} scheduler)",
            [
                "pool",
                "start model",
                "arrivals",
                "cold %",
                "p95",
                "p99",
                "exec-sec",
                "verified",
            ],
        )
        for p in self.points:
            table.add_row(
                f"{p.pool_size:,}",
                p.start_model,
                p.arrival_shape,
                f"{100.0 * p.cold_fraction:.2f}%",
                format_ns(p.p95_ns),
                format_ns(p.p99_ns),
                f"{p.executor_seconds:,.1f}",
                {True: "yes", False: "MISMATCH"}.get(p.bit_identical, "-"),
            )
        return table


def executor_seconds(
    workers: int, final_now_ns: int, cold_busy_ns: int, cold_reclaimed: int, keepalive_ns: int
) -> float:
    """Executor-seconds provisioned for one run.

    Warm slots are paid for the whole simulated span whether busy or
    not (that is what "provisioned" means); cold executors are paid
    for their spawn+service busy time, plus -- when idle-reclaim is on
    -- the keepalive each reclaimed one idled before teardown.
    Retained cold executors have already been counted busy.
    """
    return (
        workers * final_now_ns + cold_busy_ns + cold_reclaimed * keepalive_ns
    ) / 1e9


def run_coldstart(
    invocations: int = 1_000_000,
    pool_sizes: tuple = (1 << 12, 1 << 14, 1 << 16),
    start_models: tuple = ("remote-fork", "microvm", "bare-metal", "docker"),
    arrival_shapes: tuple = ("poisson", "bursty"),
    pool_policy: str = "cold",
    keepalive_ns: int = 0,
    hybrid_threshold: int = 64,
    mean_arrival_gap_ns: int = 250,
    seed: int = 0x0C01D,
    scheduler: str = "wheel",
    verify: bool = False,
    profile: Union[bool, str, None] = None,
) -> ColdstartResult:
    """Sweep the cold-start spectrum and fold the per-point economics.

    Every point is one full open-loop run (:func:`run_scale`) with the
    dry-pool cold-start path enabled; non-Poisson shapes route through
    the sharded engine exactly as ``scale`` does.  ``verify=True``
    replays each point on the per-event heap referee and asserts the
    fingerprints agree (recorded per point, raising on mismatch).

    ``keepalive_ns`` defaults to 0 -- no idle-reclaim, the regime where
    spin-up fires commute and the wheel engine runs its whole-backlog
    slab kernel (see ``scale``).  Pass a positive keepalive to let the
    pool breathe under bursty/diurnal shapes; those runs take the
    strict-interleave kernel, still bit-identical to the referee.
    """
    if profile:
        raise ValueError(
            "coldstart sweeps many runs and cannot profile them as one; "
            "profile the cold driver on a single run instead: "
            "python -m repro.experiments scale --pool-policy cold --profile"
        )
    unknown = [model for model in start_models if model not in SANDBOX_PROFILES]
    if unknown:
        raise ValueError(
            f"unknown start model(s) {unknown}; choose from {sorted(SANDBOX_PROFILES)}"
        )
    points: list[ColdstartPoint] = []
    started = time.perf_counter()
    for shape in arrival_shapes:
        for pool in pool_sizes:
            for model in start_models:
                kwargs = dict(
                    invocations=invocations,
                    workers=pool,
                    scheduler=scheduler,
                    seed=seed,
                    mean_arrival_gap_ns=mean_arrival_gap_ns,
                    arrival_shape=shape,
                    pool_policy=pool_policy,
                    start_model=model,
                    keepalive_ns=keepalive_ns,
                    hybrid_threshold=hybrid_threshold,
                )
                result = run_scale(**kwargs)
                bit_identical: Optional[bool] = None
                if verify:
                    referee = run_scale(
                        **{
                            **kwargs,
                            "scheduler": "heap",
                            "admission": "per-event",
                        }
                    )
                    bit_identical = referee.fingerprint() == result.fingerprint()
                    if not bit_identical:
                        raise RuntimeError(
                            "cold-start fingerprint mismatch vs heap referee at "
                            f"pool={pool} model={model} shape={shape}"
                        )
                points.append(
                    ColdstartPoint(
                        pool_size=pool,
                        start_model=model,
                        arrival_shape=shape,
                        spawn_ns=SANDBOX_PROFILES[model].spawn_ns(1),
                        invocations=result.invocations,
                        cold_starts=result.cold_starts,
                        cold_fraction=result.cold_starts / max(1, result.completed),
                        cold_reclaimed=result.cold_reclaimed,
                        cold_retained=result.cold_retained,
                        max_backlog=result.max_backlog,
                        p50_ns=result.latency.median,
                        p95_ns=result.latency.p95,
                        p99_ns=result.latency.p99,
                        executor_seconds=executor_seconds(
                            pool,
                            result.final_now_ns,
                            result.cold_busy_ns,
                            result.cold_reclaimed,
                            keepalive_ns,
                        ),
                        wall_s=result.wall_s,
                        events_per_sec=result.events_per_sec,
                        bit_identical=bit_identical,
                    )
                )
    return ColdstartResult(
        invocations=invocations,
        pool_policy=pool_policy,
        keepalive_ns=keepalive_ns,
        scheduler=scheduler,
        points=points,
        wall_s=time.perf_counter() - started,
    )


#: Quick (CI) spectrum: small pools saturate within the burst so the
#: cold path is exercised hard, and the heap referee re-runs every
#: point (verify) -- the smoke contract of the cold-start engine.
QUICK_KWARGS = {
    "invocations": 6_000,
    "pool_sizes": (64, 512),
    "start_models": ("remote-fork", "docker"),
    "arrival_shapes": ("poisson",),
    "mean_arrival_gap_ns": us(25),
    "verify": True,
}
