"""Experiment registry: ids -> harness callables.

``quick`` kwargs shrink sweeps for CI-sized runs; the defaults of each
``run_*`` are the paper-scale parameters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.experiments.billing import run_billing
from repro.experiments.coldstart import QUICK_KWARGS as COLDSTART_QUICK_KWARGS
from repro.experiments.coldstart import run_coldstart
from repro.experiments.concurrency import run_concurrency
from repro.experiments.control import QUICK_KWARGS as CONTROL_QUICK_KWARGS
from repro.experiments.control import run_control
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import run_fig11
from repro.experiments.fig12 import run_fig12
from repro.experiments.fig13 import run_fig13
from repro.experiments.leases import run_leases
from repro.experiments.multitenant import QUICK_KWARGS as MULTITENANT_QUICK_KWARGS
from repro.experiments.multitenant import run_multitenant, run_multitenant_scale
from repro.experiments.pipelining import run_pipelining
from repro.experiments.scale import QUICK_KWARGS as SCALE_QUICK_KWARGS
from repro.experiments.scale import run_scale
from repro.experiments.softroce import run_softroce
from repro.experiments.suite import run_suite
from repro.experiments.table1 import run_table1
from repro.experiments.warmpool import run_warmpool


@dataclass(frozen=True)
class Experiment:
    """One reproducible table/figure."""

    experiment_id: str
    description: str
    run: Callable[..., Any]
    quick_kwargs: dict


EXPERIMENTS: dict[str, Experiment] = {
    exp.experiment_id: exp
    for exp in (
        Experiment(
            "fig1",
            "Platform comparison: rFaaS vs Lambda/OpenWhisk/Nightcore",
            run_fig1,
            {"sizes": (1_000, 100_000, 1_000_000), "repetitions": 5},
        ),
        Experiment(
            "fig2",
            "Piz Daint utilization (motivation)",
            run_fig2,
            {"total_nodes": 200, "days": 1.0},
        ),
        Experiment(
            "fig8",
            "Invocation latency vs raw RDMA and TCP",
            run_fig8,
            {"sizes": (2, 128, 1024, 16384), "repetitions": 8},
        ),
        Experiment("fig9", "Cold-start breakdown", run_fig9, {"repetitions": 2}),
        Experiment(
            "fig10",
            "Parallel scalability 1-32 workers",
            run_fig10,
            {"workers": (1, 4, 16), "repetitions": 3},
        ),
        Experiment("fig11", "SeBS thumbnailer + ResNet inference", run_fig11, {"repetitions": 5}),
        Experiment(
            "fig12",
            "Black-Scholes offloading",
            run_fig12,
            {"workers": (1, 4, 16, 32)},
        ),
        Experiment(
            "fig13",
            "MPI GEMM + Jacobi acceleration",
            run_fig13,
            {"ranks": (2, 8), "gemm_n": 2048, "gemm_repetitions": 2, "jacobi_iterations": 200},
        ),
        Experiment("table1", "Requirements matrix checks", run_table1, {}),
        Experiment("billing", "Hot-vs-warm cost ablation", run_billing, {"invocations": 20}),
        Experiment("leases", "Leases vs centralized scheduling ablation", run_leases, {}),
        Experiment(
            "softroce",
            "rFaaS on software RDMA (Sec. III-F modularity ablation)",
            run_softroce,
            {"sizes": (64, 65536), "repetitions": 5},
        ),
        Experiment(
            "multitenant",
            "Multi-tenant scale engine: per-tenant deadlines over the "
            "isolation spectrum (--partitioning pinned|shared|overflow)",
            run_multitenant_scale,
            dict(MULTITENANT_QUICK_KWARGS),
        ),
        Experiment(
            "multitenant-rpc",
            "Three tenant profiles sharing executors (Sec. III-D)",
            run_multitenant,
            {},
        ),
        Experiment(
            "suite",
            "Five real SeBS-style functions: rFaaS vs AWS Lambda",
            run_suite,
            {"repetitions": 4},
        ),
        Experiment(
            "warmpool",
            "Warm container pool bypassing Docker boot (Sec. V-B)",
            run_warmpool,
            {"repetitions": 2},
        ),
        Experiment(
            "concurrency",
            "Latency/throughput under concurrent clients (decentralization)",
            run_concurrency,
            {"client_counts": (1, 8), "calls_per_client": 10},
        ),
        Experiment(
            "pipelining",
            "Per-worker invocation pipelining throughput ablation",
            run_pipelining,
            {"sizes": (1_024, 1_048_576), "depths": (1, 4), "burst": 12},
        ),
        Experiment(
            "scale",
            "Open-loop million-invocation load over a leased warm pool "
            "(shardable across cores: --shards K)",
            run_scale,
            dict(SCALE_QUICK_KWARGS),
        ),
        Experiment(
            "control",
            "Cluster-scale lease brokering under executor churn "
            "(--driver kernel|reference)",
            run_control,
            dict(CONTROL_QUICK_KWARGS),
        ),
        Experiment(
            "coldstart",
            "Cold-start spectrum: pool size x start model x arrival shape "
            "(--pool-policy cold|hybrid, --start-model remote-fork|...)",
            run_coldstart,
            dict(COLDSTART_QUICK_KWARGS),
        ),
    )
}


def experiment_ids() -> list[str]:
    """All registered experiment ids, sorted."""
    return sorted(EXPERIMENTS)


def run_experiment(experiment_id: str, quick: bool = False, **overrides: Any):
    """Run one experiment by id; ``quick=True`` uses CI-sized sweeps."""
    experiment = EXPERIMENTS[experiment_id]
    kwargs = dict(experiment.quick_kwargs) if quick else {}
    kwargs.update(overrides)
    return experiment.run(**kwargs)


@dataclass
class TimedRun:
    """An experiment's result plus the wall-clock seconds it took.

    Timing happens *inside* the process that ran the experiment, so the
    per-experiment numbers stay comparable whether the batch executed
    serially or fanned out across workers.
    """

    experiment_id: str
    wall_s: float
    result: Any


def run_experiment_timed(experiment_id: str, quick: bool = False, **overrides: Any) -> TimedRun:
    """Like :func:`run_experiment`, wrapped with a wall-clock measurement.

    Module-level on purpose: this is the picklable factory that
    ``python -m repro.experiments all --parallel N`` ships to workers.
    """
    started = time.perf_counter()
    result = run_experiment(experiment_id, quick=quick, **overrides)
    return TimedRun(experiment_id, time.perf_counter() - started, result)
