"""Billing ablation (Sec. IV-C): what hot polling actually costs.

Two identical sparse workloads (N invocations, fixed think time), one
on an always-hot worker, one on an always-warm worker.  Hot buys
~4.3 us lower latency per call; the billing database charges the hot
worker for every nanosecond of polling -- "applications requiring the
highest performance pay the premium".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import Table, format_ns
from repro.analysis.stats import median
from repro.core.billing import BillingAccount, BillingRates
from repro.core.config import RFaaSConfig
from repro.core.deployment import Deployment
from repro.sim.clock import GiB, ms
from repro.workloads.noop import noop_package


@dataclass
class PolicyOutcome:
    median_rtt_ns: float
    account: BillingAccount
    cost: float


@dataclass
class BillingResult:
    hot: PolicyOutcome
    warm: PolicyOutcome
    invocations: int
    think_time_ns: int

    @property
    def latency_advantage_ns(self) -> float:
        return self.warm.median_rtt_ns - self.hot.median_rtt_ns

    @property
    def cost_premium(self) -> float:
        return self.hot.cost / self.warm.cost if self.warm.cost else float("inf")

    def table(self) -> Table:
        table = Table(
            "Billing ablation -- hot vs warm on a sparse workload",
            ["policy", "median RTT", "compute s", "hot-poll s", "cost USD"],
        )
        for name, outcome in (("hot", self.hot), ("warm", self.warm)):
            table.add_row(
                name,
                format_ns(outcome.median_rtt_ns),
                f"{outcome.account.compute_s:.4f}",
                f"{outcome.account.hotpoll_s:.4f}",
                f"{outcome.cost:.6f}",
            )
        return table


def _run_policy(mode: str, invocations: int, think_time_ns: int) -> PolicyOutcome:
    hot_timeout = None if mode == "hot" else 0
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    invoker = dep.new_invoker(name=f"tenant-{mode}")

    def driver():
        yield from invoker.allocate(
            noop_package(), workers=1, memory_bytes=1 * GiB, hot_timeout_ns=hot_timeout
        )
        in_buf = invoker.alloc_input(64)
        out_buf = invoker.alloc_output(64)
        in_buf.write(b"xx")
        rtts = []
        for _ in range(invocations):
            future = invoker.submit("echo", in_buf, 2, out_buf)
            result = yield future.wait()
            rtts.append(result.rtt_ns)
            yield dep.env.timeout(think_time_ns)
        yield from invoker.deallocate()
        yield dep.env.timeout(ms(10))  # final billing flush lands
        return rtts

    rtts = dep.run(driver())
    account = dep.managers[0].billing.read_account(f"tenant-{mode}")
    rates = BillingRates()
    return PolicyOutcome(
        median_rtt_ns=median(rtts), account=account, cost=account.cost(rates)
    )


def run_billing(invocations: int = 50, think_time_ns: int = ms(10)) -> BillingResult:
    return BillingResult(
        hot=_run_policy("hot", invocations, think_time_ns),
        warm=_run_policy("warm", invocations, think_time_ns),
        invocations=invocations,
        think_time_ns=think_time_ns,
    )
