"""Result serialization: persist experiment outputs as JSON.

Every harness returns a small dataclass tree of numbers; this module
flattens them into JSON so sweeps can be archived, diffed across code
versions, or plotted elsewhere.  Non-JSON keys (int-keyed series,
tuple keys) are stringified deterministically.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any


def to_jsonable(value: Any) -> Any:
    """Recursively convert a harness result into JSON-safe data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
            if not field.name.startswith("_")
        }
    if isinstance(value, dict):
        return {_key(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if hasattr(value, "__dict__"):
        return {
            key: to_jsonable(item)
            for key, item in vars(value).items()
            if not key.startswith("_")
        }
    return repr(value)


def _key(key: Any) -> str:
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def save_result(result: Any, path: str | Path, experiment_id: str = "") -> Path:
    """Write *result* as pretty JSON; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"experiment": experiment_id, "result": to_jsonable(result)}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path
