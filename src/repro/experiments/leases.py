"""Lease ablation: decentralized leases vs per-invocation scheduling.

The core architectural claim (Sec. III-B): moving the resource manager
out of the invocation path is what makes microsecond invocations
possible.  This ablation measures the same invocation stream in two
modes:

* **leases (rFaaS)** -- manager contacted once, then direct RDMA;
* **centralized** -- every invocation first performs a placement RPC at
  the manager (what OpenWhisk/Lambda-style control planes do on every
  call), then runs the identical data path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import Table, format_ns
from repro.analysis.stats import median
from repro.core.deployment import Deployment
from repro.workloads.noop import noop_package


@dataclass
class LeaseAblationResult:
    lease_rtt_ns: float
    centralized_rtt_ns: float
    invocations: int

    @property
    def slowdown(self) -> float:
        return self.centralized_rtt_ns / self.lease_rtt_ns

    def table(self) -> Table:
        table = Table(
            "Lease ablation -- scheduling on vs off the invocation path",
            ["mode", "median RTT", "relative"],
        )
        table.add_row("leases (rFaaS)", format_ns(self.lease_rtt_ns), "1.0x")
        table.add_row(
            "centralized placement", format_ns(self.centralized_rtt_ns), f"{self.slowdown:.1f}x"
        )
        return table


def run_leases(invocations: int = 25) -> LeaseAblationResult:
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    invoker = dep.new_invoker()

    def driver():
        yield from invoker.allocate(noop_package(), workers=1)
        in_buf = invoker.alloc_input(64)
        out_buf = invoker.alloc_output(64)
        in_buf.write(b"xx")

        lease_rtts = []
        for _ in range(invocations):
            future = invoker.submit("echo", in_buf, 2, out_buf)
            result = yield future.wait()
            lease_rtts.append(result.rtt_ns)

        # Centralized mode: a placement RPC precedes every invocation.
        manager_client = next(iter(invoker._manager_clients.values()))
        central_rtts = []
        for _ in range(invocations):
            start = dep.env.now
            response = yield from manager_client.request(
                {
                    "type": "lease_request",
                    "client": invoker.name,
                    "cores": 0,
                    "memory_bytes": 0,
                    "timeout_ns": 1,
                }
            )
            assert response.get("type") == "lease_granted"
            future = invoker.submit("echo", in_buf, 2, out_buf)
            yield future.wait()
            central_rtts.append(dep.env.now - start)
        return median(lease_rtts), median(central_rtts)

    lease_rtt, central_rtt = dep.run(driver())
    return LeaseAblationResult(
        lease_rtt_ns=lease_rtt, centralized_rtt_ns=central_rtt, invocations=invocations
    )
