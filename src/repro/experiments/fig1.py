"""Fig. 1 / Sec. V-C: rFaaS vs AWS Lambda, OpenWhisk, Nightcore.

The no-op echo over payloads 1 kB .. 5 MB.  Baselines receive base64
payloads (their APIs cannot take raw bytes); OpenWhisk is capped at
125 kB by its argv input path.  Expected speedup bands from the paper:
Lambda 695-3692x, OpenWhisk 5904-22406x, Nightcore 23-39x.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.reporting import Table, format_bytes, format_ns
from repro.analysis.stats import summarize
from repro.baselines import AwsLambda, Nightcore, OpenWhisk
from repro.experiments.common import measure_rfaas_rtts
from repro.sim.core import Environment

DEFAULT_SIZES = (1_000, 10_000, 100_000, 1_000_000, 5_000_000)

_PLATFORMS = {
    "aws-lambda": AwsLambda,
    "openwhisk": OpenWhisk,
    "nightcore": Nightcore,
}


@dataclass
class Fig1Result:
    sizes: tuple[int, ...]
    #: series -> {size: median ns}; missing sizes = over platform cap.
    series: dict[str, dict[int, float]] = field(default_factory=dict)
    p99: dict[str, dict[int, float]] = field(default_factory=dict)

    def speedups(self, platform: str) -> dict[int, float]:
        """rFaaS speedup per size (only where the platform has data)."""
        return {
            size: self.series[platform][size] / self.series["rfaas"][size]
            for size in self.sizes
            if size in self.series[platform]
        }

    def speedup_range(self, platform: str) -> tuple[float, float]:
        values = list(self.speedups(platform).values())
        return min(values), max(values)

    def table(self) -> Table:
        table = Table(
            "Fig. 1 -- platform comparison, no-op echo (median RTT)",
            ["size", "rfaas"] + [f"{p} (speedup)" for p in _PLATFORMS],
        )
        for size in self.sizes:
            cells = [format_bytes(size), format_ns(self.series["rfaas"][size])]
            for platform in _PLATFORMS:
                if size in self.series[platform]:
                    rtt = self.series[platform][size]
                    speedup = rtt / self.series["rfaas"][size]
                    cells.append(f"{format_ns(rtt)} ({speedup:,.0f}x)")
                else:
                    cells.append("over cap")
            table.add_row(*cells)
        return table


def _measure_platform(platform_cls, size: int, repetitions: int) -> Optional[float]:
    env = Environment()
    platform = platform_cls(env)
    rtts: list[int] = []

    def driver():
        try:
            # First invocation is cold; it is discarded.
            yield from platform.invoke("echo", None, size, compute_ns=0)
            for _ in range(repetitions):
                result = yield from platform.invoke("echo", None, size, compute_ns=0)
                rtts.append(result.rtt_ns)
        except ValueError:
            rtts.clear()

    env.process(driver())
    env.run()
    if not rtts:
        return None
    return summarize(rtts).median


def run_fig1(sizes: tuple[int, ...] = DEFAULT_SIZES, repetitions: int = 15) -> Fig1Result:
    result = Fig1Result(sizes=tuple(sizes))
    result.series["rfaas"] = {}
    result.p99["rfaas"] = {}
    for size in sizes:
        run = measure_rfaas_rtts(size, mode="hot", repetitions=repetitions)
        result.series["rfaas"][size] = run.stats.median
        result.p99["rfaas"][size] = run.stats.p99
    for name, platform_cls in _PLATFORMS.items():
        result.series[name] = {}
        for size in sizes:
            median = _measure_platform(platform_cls, size, repetitions)
            if median is not None:
                result.series[name][size] = median
    return result
