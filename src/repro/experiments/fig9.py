"""Fig. 9: cold invocation breakdown, bare-metal (a) vs Docker (b).

Repeated cold starts of the 7.88 kB no-op package; every run tears the
allocation down so the next one is cold again.  Expected: worker
creation dominates; every other step is single-digit milliseconds;
totals ~25 ms bare-metal and ~2.7 s Docker.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import Table, format_ns
from repro.analysis.stats import median
from repro.core.config import ColdStartBreakdown
from repro.core.deployment import Deployment
from repro.workloads.noop import noop_package

STEPS = (
    "connect_manager",
    "lease_grant",
    "connect_allocator",
    "submit_code",
    "spawn_workers",
    "connect_workers",
    "first_invocation",
)


@dataclass
class Fig9Result:
    #: sandbox -> step -> median ns
    breakdowns: dict[str, dict[str, float]] = field(default_factory=dict)

    def total_ns(self, sandbox: str) -> float:
        return sum(self.breakdowns[sandbox].values())

    def dominant_step(self, sandbox: str) -> str:
        steps = self.breakdowns[sandbox]
        return max(steps, key=steps.get)

    def table(self) -> Table:
        table = Table("Fig. 9 -- cold start breakdown (median)", ["step", *self.breakdowns])
        for step in STEPS:
            table.add_row(step, *[format_ns(self.breakdowns[s][step]) for s in self.breakdowns])
        table.add_row("TOTAL", *[format_ns(self.total_ns(s)) for s in self.breakdowns])
        return table


def _cold_starts(sandbox: str, repetitions: int) -> dict[str, float]:
    samples: dict[str, list[int]] = {step: [] for step in STEPS}
    for _ in range(repetitions):
        dep = Deployment.build(executors=1, clients=1)
        dep.settle()
        invoker = dep.new_invoker()
        package = noop_package()

        def driver():
            breakdown: ColdStartBreakdown = yield from invoker.allocate(
                package, workers=1, sandbox=sandbox
            )
            start = dep.env.now
            output = yield from invoker.invoke("echo", b"cold")
            assert output == b"cold"
            breakdown.first_invocation = dep.env.now - start
            return breakdown

        breakdown = dep.run(driver())
        for step, value in breakdown.as_dict().items():
            samples[step].append(value)
    return {step: median(values) for step, values in samples.items()}


def run_fig9(repetitions: int = 5) -> Fig9Result:
    result = Fig9Result()
    for sandbox in ("bare-metal", "docker"):
        result.breakdowns[sandbox] = _cold_starts(sandbox, repetitions)
    return result
