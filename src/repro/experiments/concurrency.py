"""Concurrency scaling: where decentralization pays (extension).

Fig. 1 compares single-client latency; this experiment sweeps the
number of closed-loop clients and measures per-invocation latency and
aggregate throughput on:

* **rFaaS** -- every client holds leases on its own workers; there is
  no shared control-plane component on the invocation path, so latency
  stays flat and throughput scales with clients,
* **OpenWhisk (queued)** -- the single Kafka broker saturates at a few
  dozen invocations/s; latency grows linearly with clients,
* **Nightcore (queued)** -- the lean gateway holds on much longer but
  is still a shared chokepoint,
* **Lambda (queued)** -- scales horizontally but every call pays the
  cloud's fixed tens-of-milliseconds path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.reporting import Table, format_ns
from repro.analysis.stats import median
from repro.baselines.queueing import queued_lambda, queued_nightcore, queued_openwhisk
from repro.core.deployment import Deployment
from repro.sim.core import Environment
from repro.workloads.noop import noop_package

DEFAULT_CLIENTS = (1, 4, 16, 64)
PAYLOAD = 1_024
CALLS_PER_CLIENT = 20


@dataclass
class ConcurrencyResult:
    client_counts: tuple[int, ...]
    #: platform -> {clients: median latency ns}
    latency: dict[str, dict[int, float]] = field(default_factory=dict)
    #: platform -> {clients: aggregate invocations/s}
    throughput: dict[str, dict[int, float]] = field(default_factory=dict)

    def latency_inflation(self, platform: str) -> float:
        series = self.latency[platform]
        return series[max(self.client_counts)] / series[min(self.client_counts)]

    def table(self) -> Table:
        table = Table(
            "Concurrency scaling -- median latency (aggregate throughput/s)",
            ["platform"] + [f"c={c}" for c in self.client_counts],
        )
        for platform in self.latency:
            cells = [platform]
            for clients in self.client_counts:
                lat = format_ns(self.latency[platform][clients])
                thr = self.throughput[platform][clients]
                cells.append(f"{lat} ({thr:,.0f}/s)")
            table.add_row(*cells)
        return table


def _measure_rfaas(clients: int, calls: int) -> tuple[float, float]:
    executors = max(1, -(-clients // 36))
    dep = Deployment.build(executors=executors, clients=1)
    dep.settle()
    rtts: list[int] = []
    finished = []

    def client_main(index: int):
        invoker = dep.new_invoker(name=f"c{index}")
        yield from invoker.allocate(noop_package(), workers=1)
        in_buf = invoker.alloc_input(PAYLOAD)
        in_buf.write(bytes(PAYLOAD))
        out_buf = invoker.alloc_output(PAYLOAD)
        for _ in range(calls):
            future = invoker.submit("echo", in_buf, PAYLOAD, out_buf)
            result = yield future.wait()
            rtts.append(result.rtt_ns)
        finished.append(dep.env.now)

    def supervisor():
        processes = [
            dep.env.process(client_main(index), name=f"client{index}")
            for index in range(clients)
        ]
        for process in processes:
            yield process
        return None

    start = dep.env.now
    dep.run(supervisor())
    elapsed = max(finished) - start
    return median(rtts), clients * calls / (elapsed / 1e9)


def _measure_queued(factory: Callable, clients: int, calls: int) -> tuple[float, float]:
    env = Environment()
    platform = factory(env)
    rtts: list[int] = []
    finished: list[int] = []

    def client_main():
        for _ in range(calls):
            rtt = yield from platform.invoke(PAYLOAD)
            rtts.append(rtt)
        finished.append(env.now)

    for _ in range(clients):
        env.process(client_main())
    env.run()
    elapsed = max(finished)
    return median(rtts), clients * calls / (elapsed / 1e9)


def run_concurrency(
    client_counts: tuple[int, ...] = DEFAULT_CLIENTS,
    calls_per_client: int = CALLS_PER_CLIENT,
) -> ConcurrencyResult:
    result = ConcurrencyResult(client_counts=tuple(client_counts))
    platforms = {
        "rfaas": lambda c: _measure_rfaas(c, calls_per_client),
        "openwhisk-queued": lambda c: _measure_queued(queued_openwhisk, c, calls_per_client),
        "nightcore-queued": lambda c: _measure_queued(queued_nightcore, c, calls_per_client),
        "aws-lambda-queued": lambda c: _measure_queued(queued_lambda, c, calls_per_client),
    }
    for name, measure in platforms.items():
        result.latency[name] = {}
        result.throughput[name] = {}
        for clients in client_counts:
            latency, throughput = measure(clients)
            result.latency[name][clients] = latency
            result.throughput[name][clients] = throughput
    return result
