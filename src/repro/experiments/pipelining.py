"""Throughput ablation: per-worker invocation pipelining.

The paper's executor handles one invocation at a time per worker thread
(one input buffer).  This extension slices the buffer into slots so the
*transfer* of queued requests overlaps the current *execution*, and
measures the throughput effect on a single worker under a closed-loop
burst workload across payload sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import Table, format_bytes
from repro.core.config import RFaaSConfig
from repro.core.deployment import Deployment
from repro.core.functions import CodePackage, FunctionSpec
from repro.sim.clock import us

DEFAULT_SIZES = (1_024, 65_536, 1_048_576)
DEFAULT_DEPTHS = (1, 2, 4, 8)


@dataclass
class PipeliningResult:
    sizes: tuple[int, ...]
    depths: tuple[int, ...]
    #: (size, depth) -> invocations per second
    throughput: dict[tuple[int, int], float]

    def gain(self, size: int, depth: int) -> float:
        return self.throughput[(size, depth)] / self.throughput[(size, 1)]

    def table(self) -> Table:
        table = Table(
            "Pipelining ablation -- single-worker throughput (invocations/s)",
            ["payload"] + [f"depth={d}" for d in self.depths],
        )
        for size in self.sizes:
            table.add_row(
                format_bytes(size),
                *[f"{self.throughput[(size, d)]:,.0f}" for d in self.depths],
            )
        return table


def _burst_throughput(size: int, depth: int, n: int, compute_ns: int) -> float:
    config = RFaaSConfig(worker_pipeline_depth=depth)
    dep = Deployment.build(executors=1, clients=1, config=config)
    dep.settle()
    invoker = dep.new_invoker()
    package = CodePackage(name="tp")
    package.add(
        FunctionSpec(
            name="work",
            handler=lambda d: d[:8],
            cost_ns=lambda s: compute_ns,
            output_size=lambda s: 8,
        )
    )

    def driver():
        yield from invoker.allocate(
            package, workers=1, worker_buffer_bytes=depth * (size + 64)
        )
        # One input buffer per in-flight request: the header region must
        # stay stable until the NIC has read it (same rule as any
        # RDMA send buffer).
        in_bufs = []
        for _ in range(n):
            in_buf = invoker.alloc_input(size)
            in_buf.write(bytes(size))
            in_bufs.append(in_buf)
        out_bufs = [invoker.alloc_output(16) for _ in range(n)]
        start = dep.env.now
        futures = [
            invoker.submit("work", in_bufs[i], size, out_bufs[i], worker=0) for i in range(n)
        ]
        for future in futures:
            yield future.wait()
        return dep.env.now - start

    elapsed_ns = dep.run(driver())
    return n / (elapsed_ns / 1e9)


def run_pipelining(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    depths: tuple[int, ...] = DEFAULT_DEPTHS,
    burst: int = 24,
    compute_ns: int = us(30),
) -> PipeliningResult:
    throughput: dict[tuple[int, int], float] = {}
    for size in sizes:
        for depth in depths:
            throughput[(size, depth)] = _burst_throughput(size, depth, burst, compute_ns)
    return PipeliningResult(sizes=tuple(sizes), depths=tuple(depths), throughput=throughput)
