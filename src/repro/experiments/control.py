"""Cluster-scale control plane: lease brokering under executor churn.

PRs 4-7 scaled the *data path* (invocations over a leased warm pool);
this scenario scales the paper's other half -- the lease-based control
plane of Sec. III-B.  One resource manager brokers thousands of spot
executors and millions of lease events: acquire, periodic renew,
release, expiry after abandonment, and -- the spot-market signature --
node churn, where an executor death terminates every lease it hosts
(mass reclamation), the affected clients re-acquire (steal recovery),
and the node later revives at full capacity.

Two drivers replay the *same* deterministic calendar:

* ``reference`` -- per-event, through the real
  :class:`~repro.core.resource_manager.ResourceManager` RPC path: every
  request is an ``env.process`` yielding the manager's decision delay,
  every renewal a chained timeout feeding ``lease_renew``, every expiry
  the manager's own ``_expire_later`` process, churn a
  ``deregister_executor`` RPC whose termination announcements fan out
  to the clients.  This is the bit-identity referee.
* ``kernel`` -- the struct-of-arrays fast path: executor capacity as
  parallel numpy arrays with masked-argmax placement
  (:class:`repro.core.placement.SoACapacity`), the whole lease calendar
  (placements, lease ends, deaths) admitted in sorted cohorts through
  ``schedule_batch``, churn applied as vectorized masks over the lease
  table, and renewals never entering the event queue at all -- their
  count and timestamps are closed-form per lease, emitted vectorized
  after the run.

Both produce identical fingerprints (the wheel-vs-heap contract,
extended to a whole subsystem), including runs with churn enabled.

Determinism without tie-break coupling
--------------------------------------
The drivers use different event engines with different entry-id
spaces, so equal-timestamp ordering must never matter.  The calendar
guarantees that with a residue grid (mod ``QUANT`` = 16): every event
class that mutates shared state lands on its own residue --

====================  ========================  =======
event                 construction              residue
====================  ========================  =======
arrival / grant       ``16 * cumsum(gaps)``        0
renewal               period ``R == 0 (16)``       0
release               lifetime ``L == 1 (16)``     1
abandon expiry        timeout ``T == 2 (16)``      2
node death            churn stream residue         4
re-acquire / grant    delay ``delta == 1 (16)``    5
re-acquire release    ``L' == 1 (16)``             6
node revival          downtime ``== 4 (16)``       8
====================  ========================  =======

Classes sharing a residue commute: renewals never touch capacity, and
equal-time releases only *return* capacity.  Within a class, arrivals
and deaths are strictly increasing by construction, and same-instant
re-acquisitions are issued in lease-grant order by both drivers (the
order ``_declare_dead`` walks a record's lease list).

Latency is a shared post-pass (:mod:`repro.analysis.latency`): the
manager is modeled as one FIFO server over the logged RPC events, so
renewal storms and post-churn re-acquire bursts surface in the
allocation and steal tails -- computed from identical logs by identical
code, hence bit-identical statistics.
"""

from __future__ import annotations

import gc
import resource
import time
from collections import deque
from dataclasses import dataclass
from functools import partial
from typing import Any, Optional

import numpy as np

from repro import perf
from repro.analysis.latency import sojourn_by_kind
from repro.analysis.reporting import Table, format_bytes, format_ns
from repro.analysis.stats import SummaryStats
from repro.analysis.streams import StreamingSummary
from repro.cluster.churn import ChurnStream, churn_stream
from repro.cluster.node import NodeSpec
from repro.core.config import RFaaSConfig, RFaaSTimings
from repro.core.placement import SoACapacity
from repro.core.resource_manager import ResourceManager
from repro.rdma.fabric import Fabric
from repro.sim.clock import ms, us
from repro.sim.wheel import new_environment

#: Residue grid modulus (see the module docstring).
QUANT = 16

#: Manager-event kinds, in FIFO tie-rank order.
KIND_GRANT, KIND_DENY, KIND_RENEW, KIND_RELEASE, KIND_STEAL_GRANT, KIND_STEAL_DENY = range(6)
KIND_COUNT = 6

#: Per-kind service cost of the FIFO manager model (ns): lease
#: decisions are the heavyweight step, renewals and releases are
#: lookups.
SERVICE_NS = np.array([2_000, 2_000, 300, 250, 2_000, 2_000], dtype=np.int64)

#: Cohort size for batch admission of the setup calendars.
_ADMIT_CHUNK = 1 << 16

_SPEC = NodeSpec()


def _exec_name(index: int) -> str:
    # Zero-padded so sorted(name) order == numeric order == SoA index.
    return f"x{index:06d}"


@dataclass(frozen=True)
class ControlConfig:
    """One control-plane scenario (all times integer ns)."""

    executors: int = 2_048
    requests: int = 120_000
    seed: int = 0xC7A1
    #: Mean inter-arrival gap of lease requests.
    mean_arrival_gap_ns: int = us(50)
    #: Per-executor envelope (defaults: the Piz Daint node model).
    cores_per_executor: int = _SPEC.cores
    memory_per_executor: int = _SPEC.memory_bytes
    #: Request sizes: 1..max cores, memory proportional.
    max_request_cores: int = 8
    memory_per_core: int = 8 << 30
    #: Lease lifetime draw (lognormal, ns) and floor.
    lifetime_log_mean: float = 20.7
    lifetime_log_sigma: float = 0.7
    min_lifetime_ns: int = ms(1)
    #: Client renewal period (== 0 mod QUANT).
    renew_period_ns: int = ms(100)
    #: Manager-granted lease timeout (== 2 mod QUANT, > renew period).
    lease_timeout_ns: int = ms(150) + 2
    #: Fraction of clients that abandon (stop renewing, let the lease
    #: expire) instead of releasing, and how many renewals they send.
    abandon_fraction: float = 0.08
    max_abandon_renewals: int = 12
    #: Distinct client names (billing accounts).
    clients: int = 64
    #: Manager decision latency (== 0 mod QUANT; ~ the paper's 15 us).
    decision_ns: int = 15_008
    #: Churn: node deaths over the arrival span, constant re-acquire
    #: delay (== 1 mod QUANT) and downtime (== 4 mod QUANT).
    churn: bool = True
    deaths: int = 300
    reacquire_delay_ns: int = us(100) + 1
    downtime_ns: int = ms(50) + 4
    #: Remaining lifetime below which a stolen lease is not re-acquired.
    min_relifetime_ns: int = ms(1)
    subbits: int = 8

    def __post_init__(self) -> None:
        if self.executors < 1 or self.requests < 1:
            raise ValueError("executors and requests must be >= 1")
        grid = {
            "renew_period_ns": (self.renew_period_ns, 0),
            "lease_timeout_ns": (self.lease_timeout_ns, 2),
            "decision_ns": (self.decision_ns, 0),
            "reacquire_delay_ns": (self.reacquire_delay_ns, 1),
            "downtime_ns": (self.downtime_ns, 4),
        }
        for name, (value, residue) in grid.items():
            if value % QUANT != residue:
                raise ValueError(
                    f"{name}={value} must be == {residue} (mod {QUANT}); "
                    "the residue grid is what makes the two drivers "
                    "order-independent"
                )
        if not self.lease_timeout_ns > self.renew_period_ns:
            raise ValueError("lease_timeout_ns must exceed renew_period_ns")
        if not self.renew_period_ns > self.decision_ns:
            raise ValueError("renew_period_ns must exceed decision_ns")
        if not self.min_lifetime_ns > self.decision_ns:
            raise ValueError("min_lifetime_ns must exceed decision_ns")
        if not self.min_relifetime_ns > self.decision_ns:
            raise ValueError("min_relifetime_ns must exceed decision_ns")
        if not 0 <= self.abandon_fraction <= 1:
            raise ValueError("abandon_fraction must be in [0, 1]")


@dataclass(frozen=True)
class ControlStreams:
    """The pre-drawn calendar both drivers replay."""

    times: np.ndarray  # arrival instants, strictly increasing, == 0 (16)
    cores: np.ndarray
    memory: np.ndarray
    abandon: np.ndarray  # bool
    planned_renewals: np.ndarray  # renewals each client will send
    end_planned: np.ndarray  # release instant, or expiry for abandoners
    clients: np.ndarray
    churn: ChurnStream
    horizon_ns: int


def control_streams(config: ControlConfig) -> ControlStreams:
    """Draw the deterministic request + churn calendar for *config*."""
    rng = np.random.default_rng(config.seed)
    n = config.requests
    gaps = np.maximum(
        rng.exponential(config.mean_arrival_gap_ns / QUANT, size=n).astype(np.int64), 1
    )
    times = QUANT * np.cumsum(gaps)
    cores = rng.integers(1, config.max_request_cores + 1, size=n, dtype=np.int64)
    memory = cores * config.memory_per_core
    life = rng.lognormal(config.lifetime_log_mean, config.lifetime_log_sigma, size=n)
    life = np.maximum(life.astype(np.int64), config.min_lifetime_ns)
    life = (life // QUANT) * QUANT + 1  # residue 1: releases never collide
    abandon = rng.random(n) < config.abandon_fraction
    abandon_renewals = rng.integers(
        0, config.max_abandon_renewals + 1, size=n, dtype=np.int64
    )
    period = config.renew_period_ns
    planned = np.where(abandon, abandon_renewals, (life - 1) // period)
    # An abandoned lease expires one timeout after its last clock
    # restart: the final renewal, or -- with no renewals at all -- the
    # grant itself, which lands at arrival + decision delay.
    last_restart = np.where(planned > 0, planned * period, config.decision_ns)
    end_planned = np.where(
        abandon, times + last_restart + config.lease_timeout_ns, times + life
    )
    clients = np.arange(n, dtype=np.int64) % config.clients
    churn = churn_stream(
        rng,
        config.deaths if config.churn else 0,
        config.executors,
        int(times[-1]),
        config.downtime_ns,
        quantum=QUANT,
        death_residue=4,
    )
    horizon = int(end_planned.max())
    if len(churn):
        horizon = max(horizon, int(churn.death_times_ns[-1]) + config.downtime_ns)
    horizon += config.decision_ns + config.reacquire_delay_ns + 4 * QUANT
    return ControlStreams(
        times=times,
        cores=cores,
        memory=memory,
        abandon=abandon,
        planned_renewals=planned,
        end_planned=end_planned,
        clients=clients,
        churn=churn,
        horizon_ns=horizon,
    )


@dataclass
class ControlResult:
    """One control-plane run: counts, latencies, throughput."""

    driver: str
    engine: str
    executors: int
    requests: int
    lease_events: int
    counts: dict[str, int]
    leases_active_peak: int
    placement_checksum: int
    final_free_cores: int
    final_free_memory: int
    alloc: Optional[SummaryStats]
    steal: Optional[SummaryStats]
    renew: Optional[SummaryStats]
    events_processed: int
    wall_s: float
    lease_events_per_sec: float
    grants_per_sec: float
    peak_rss_bytes: int

    def fingerprint(self) -> dict[str, Any]:
        """Simulated-domain outputs -- identical across drivers/engines.

        Wall-clock, RSS, and raw simulator event counts are measurement
        artifacts of the driver and excluded.
        """
        out: dict[str, Any] = dict(self.counts)
        out["lease_events"] = self.lease_events
        out["leases_active_peak"] = self.leases_active_peak
        out["placement_checksum"] = self.placement_checksum
        out["final_free_cores"] = self.final_free_cores
        out["final_free_memory"] = self.final_free_memory
        for label, stats in (("alloc", self.alloc), ("steal", self.steal), ("renew", self.renew)):
            if stats is None:
                out[f"{label}_count"] = 0
                continue
            out[f"{label}_count"] = stats.count
            out[f"{label}_median_ns"] = stats.median
            out[f"{label}_p95_ns"] = stats.p95
            out[f"{label}_p99_ns"] = stats.p99
            out[f"{label}_mean_ns"] = stats.mean
            out[f"{label}_min_ns"] = stats.minimum
            out[f"{label}_max_ns"] = stats.maximum
        return out

    def table(self) -> Table:
        counts = self.counts
        table = Table(
            f"Control plane -- {self.lease_events:,} lease events over "
            f"{self.executors:,} executors ({self.driver} driver, "
            f"{self.engine} engine)",
            ["metric", "value"],
        )
        table.add_row("requests", f"{self.requests:,}")
        table.add_row(
            "grants / denials", f"{counts['grants']:,} / {counts['denials']:,}"
        )
        table.add_row("renewals", f"{counts['renewals']:,}")
        table.add_row(
            "releases / expiries", f"{counts['releases']:,} / {counts['expiries']:,}"
        )
        table.add_row(
            "node deaths (no-ops) / revives",
            f"{counts['dead_nodes']:,} ({counts['churn_noops']:,}) / {counts['revives']:,}",
        )
        table.add_row(
            "leases stolen -> re-acquired / denied / skipped",
            f"{counts['steals']:,} -> {counts['steal_grants']:,} / "
            f"{counts['steal_denials']:,} / {counts['steal_skipped']:,}",
        )
        table.add_row("active leases peak", f"{self.leases_active_peak:,}")
        if self.alloc is not None:
            table.add_row("alloc latency median", format_ns(self.alloc.median))
            table.add_row("alloc latency p99", format_ns(self.alloc.p99))
        if self.steal is not None:
            table.add_row("steal latency p99", format_ns(self.steal.p99))
        table.add_row("wall clock", f"{self.wall_s:.2f} s")
        table.add_row("lease events/sec", f"{self.lease_events_per_sec:,.0f}")
        table.add_row("grants/sec", f"{self.grants_per_sec:,.0f}")
        table.add_row("peak RSS", format_bytes(self.peak_rss_bytes))
        table.add_row("simulator events", f"{self.events_processed:,}")
        return table


_COUNT_KEYS = (
    "grants",
    "denials",
    "renewals",
    "releases",
    "expiries",
    "steals",
    "steal_grants",
    "steal_denials",
    "steal_skipped",
    "dead_nodes",
    "churn_noops",
    "revives",
)


def _peak_rss_bytes() -> int:
    """Lifetime peak RSS of this process (Linux reports KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _finish(
    config: ControlConfig,
    driver: str,
    engine: str,
    counts: dict[str, int],
    checksum: int,
    log_times: np.ndarray,
    log_kinds: np.ndarray,
    log_keys: np.ndarray,
    leases_active_peak: int,
    final_free_cores: int,
    final_free_memory: int,
    events_processed: int,
    wall_s: float,
) -> ControlResult:
    """Shared result assembly: FIFO replay + summaries from the log."""
    per_kind = sojourn_by_kind(log_times, log_kinds, log_keys, SERVICE_NS, KIND_COUNT)

    def summarize(values: np.ndarray) -> Optional[SummaryStats]:
        if values.size == 0:
            return None
        stream = StreamingSummary(config.subbits)
        stream.observe_many(values)
        return stream.summarize()

    alloc = summarize(per_kind[KIND_GRANT])
    # Steal latency runs from the node death, one constant re-acquire
    # delay before the request the FIFO model served.
    steal = summarize(per_kind[KIND_STEAL_GRANT] + config.reacquire_delay_ns)
    renew = summarize(per_kind[KIND_RENEW])
    lease_events = sum(counts[key] for key in _COUNT_KEYS[:9])
    wall = max(wall_s, 1e-9)
    if perf.enabled:
        perf.counters.lease_grants += counts["grants"] + counts["steal_grants"]
        perf.counters.lease_renewals += counts["renewals"]
        perf.counters.lease_steals += counts["steals"]
        perf.counters.dead_nodes += counts["dead_nodes"]
        if leases_active_peak > perf.counters.leases_active_peak:
            perf.counters.leases_active_peak = leases_active_peak
    return ControlResult(
        driver=driver,
        engine=engine,
        executors=config.executors,
        requests=config.requests,
        lease_events=lease_events,
        counts=counts,
        leases_active_peak=leases_active_peak,
        placement_checksum=checksum % (1 << 61),
        final_free_cores=final_free_cores,
        final_free_memory=final_free_memory,
        alloc=alloc,
        steal=steal,
        renew=renew,
        events_processed=events_processed,
        wall_s=wall_s,
        lease_events_per_sec=lease_events / wall,
        grants_per_sec=(counts["grants"] + counts["steal_grants"]) / wall,
        peak_rss_bytes=_peak_rss_bytes(),
    )


# ---------------------------------------------------------------------------
# Reference driver: the real ResourceManager, one RPC per event.
# ---------------------------------------------------------------------------


class _LoopbackConn:
    """Zero-latency stand-in for the client side of an RpcConnection.

    The manager only ever calls ``.alive`` and ``.notify`` on client
    connections; routing both to the driver keeps the announcement path
    (lease terminations on death/expiry) intact without a fabric
    round-trip per event.
    """

    __slots__ = ("_handler",)
    alive = True

    def __init__(self, handler: Any) -> None:
        self._handler = handler

    def notify(self, message: Any) -> None:
        self._handler(message)


class _ReferenceDriver:
    """Per-event replay through the ResourceManager RPC path."""

    def __init__(self, config: ControlConfig, streams: ControlStreams, engine: str) -> None:
        self.config = config
        self.streams = streams
        self.engine = engine
        self.env = new_environment(engine)
        fabric = Fabric(self.env)
        self.manager = ResourceManager(
            fabric.attach("control-manager"),
            RFaaSConfig(
                timings=RFaaSTimings(manager_decision_ns=config.decision_ns),
                lease_timeout_ns=config.lease_timeout_ns,
            ),
            name="control-manager",
        )
        for index in range(config.executors):
            self.manager.register_record(
                _exec_name(index),
                host=_exec_name(index),
                port=10_000,
                cores=config.cores_per_executor,
                memory_bytes=config.memory_per_executor,
            )
        self.conn = _LoopbackConn(self._on_notify)
        # Scalar-access copies of the calendar (lists are faster than
        # numpy element reads in a per-event loop).
        self.times = streams.times.tolist()
        self.cores = streams.cores.tolist()
        self.memory = streams.memory.tolist()
        self.abandon = streams.abandon.tolist()
        self.planned_renewals = streams.planned_renewals.tolist()
        self.end_planned = streams.end_planned.tolist()
        self.clients = streams.clients.tolist()
        # Per-lease state, indexed by the manager's sequential lease id.
        cap = 2 * config.requests + 2
        self.lease_end = [0] * cap
        self.lease_cores = [0] * cap
        self.lease_memory = [0] * cap
        self.lease_client = [0] * cap
        self.lease_live = bytearray(cap)
        self.lease_retry = bytearray(cap)
        self.renews_left = [0] * cap
        self.counts = dict.fromkeys(_COUNT_KEYS, 0)
        self.checksum = 0
        self.active_now = 0
        self.active_peak = 0
        self.log_times: list[int] = []
        self.log_kinds: list[int] = []
        self.log_keys: list[int] = []
        self._arrival_index = 0
        self._death_index = 0
        self._pending_reacq: list[int] = []

    # -- client-side event handlers ------------------------------------

    def _arrival_cb(self, _event: Any) -> None:
        i = self._arrival_index
        self._arrival_index = i + 1
        self.env.process(self._request_proc(i))

    def _request_proc(self, i: int):
        t = self.times[i]
        response = yield from self.manager._handle_rpc(
            {
                "type": "lease_request",
                "client": f"c{self.clients[i]}",
                "cores": self.cores[i],
                "memory_bytes": self.memory[i],
                "timeout_ns": self.config.lease_timeout_ns,
            },
            self.conn,
        )
        counts = self.counts
        if response["type"] != "lease_granted":
            counts["denials"] += 1
            self._log(t, KIND_DENY, i)
            return
        lid = response["lease_id"]
        executor_index = int(response["executor_name"][1:])
        counts["grants"] += 1
        self.checksum += lid * (executor_index + 1)
        self._log(t, KIND_GRANT, lid)
        self.lease_end[lid] = self.end_planned[i]
        self.lease_cores[lid] = self.cores[i]
        self.lease_memory[lid] = self.memory[i]
        self.lease_client[lid] = self.clients[i]
        self.lease_live[lid] = 1
        self.active_now += 1
        if self.active_now > self.active_peak:
            self.active_peak = self.active_now
        planned = self.planned_renewals[i]
        if planned:
            self.renews_left[lid] = planned
            renew = self.env.timeout(self.config.renew_period_ns - self.config.decision_ns)
            renew.callbacks.append(partial(self._renew_cb, lid))
        if not self.abandon[i]:
            release = self.env.timeout(self.end_planned[i] - self.env.now)
            release.callbacks.append(partial(self._release_cb, lid))

    def _renew_cb(self, lid: int, _event: Any) -> None:
        if not self.lease_live[lid]:
            return
        response = self.manager._handle_rpc({"type": "lease_renew", "lease_id": lid}, None)
        assert response["type"] == "lease_renewed", response
        self.counts["renewals"] += 1
        self._log(self.env.now, KIND_RENEW, lid)
        self.renews_left[lid] -= 1
        if self.renews_left[lid] > 0:
            renew = self.env.timeout(self.config.renew_period_ns)
            renew.callbacks.append(partial(self._renew_cb, lid))

    def _release_cb(self, lid: int, _event: Any) -> None:
        if not self.lease_live[lid]:
            return
        self.lease_live[lid] = 0
        self.manager._handle_rpc({"type": "lease_release", "lease_id": lid}, None)
        self.counts["releases"] += 1
        self.active_now -= 1
        self._log(self.env.now, KIND_RELEASE, lid)

    def _on_notify(self, message: Any) -> None:
        if message.get("type") != "lease_terminated":
            return
        lid = message["lease_id"]
        if not self.lease_live[lid]:
            return
        self.lease_live[lid] = 0
        self.active_now -= 1
        if message.get("reason") == "expired":
            self.counts["expiries"] += 1
            return
        # Executor death: steal.  Non-retried leases with enough
        # lifetime left re-acquire after the constant client delay.
        self.counts["steals"] += 1
        if self.lease_retry[lid]:
            return
        remaining = self.lease_end[lid] - (self.env.now + self.config.reacquire_delay_ns)
        if remaining >= self.config.min_relifetime_ns:
            self._pending_reacq.append(lid)
        else:
            self.counts["steal_skipped"] += 1

    def _death_cb(self, _event: Any) -> None:
        j = self._death_index
        self._death_index = j + 1
        name = _exec_name(int(self.streams.churn.victims[j]))
        if not self.manager.executors[name].alive:
            self.counts["churn_noops"] += 1
            return
        self.counts["dead_nodes"] += 1
        self._pending_reacq = []
        death_ns = self.env.now
        # The RPC path for retirement/failure: terminates every hosted
        # lease and announces each one through the client connection
        # (which fills _pending_reacq, in the record's lease order).
        self.manager._handle_rpc({"type": "deregister_executor", "name": name}, None)
        for lid in self._pending_reacq:
            reacquire = self.env.timeout(self.config.reacquire_delay_ns)
            reacquire.callbacks.append(partial(self._reacq_cb, lid, death_ns))
        revive = self.env.timeout(self.config.downtime_ns)
        revive.callbacks.append(partial(self._revive_cb, name))

    def _revive_cb(self, name: str, _event: Any) -> None:
        self.manager.revive_executor(name)
        self.counts["revives"] += 1

    def _reacq_cb(self, lid: int, death_ns: int, _event: Any) -> None:
        self.env.process(self._reacq_proc(lid, death_ns))

    def _reacq_proc(self, lid: int, death_ns: int):
        config = self.config
        reacquire_ns = self.env.now
        remaining = self.lease_end[lid] - reacquire_ns
        relifetime = (remaining // QUANT) * QUANT + 1
        response = yield from self.manager._handle_rpc(
            {
                "type": "lease_request",
                "client": f"c{self.lease_client[lid]}",
                "cores": self.lease_cores[lid],
                "memory_bytes": self.lease_memory[lid],
                "timeout_ns": relifetime + config.lease_timeout_ns,
            },
            self.conn,
        )
        if response["type"] != "lease_granted":
            self.counts["steal_denials"] += 1
            self._log(reacquire_ns, KIND_STEAL_DENY, lid)
            return
        new_lid = response["lease_id"]
        executor_index = int(response["executor_name"][1:])
        self.counts["steal_grants"] += 1
        self.checksum += new_lid * (executor_index + 1)
        self._log(reacquire_ns, KIND_STEAL_GRANT, lid)
        self.lease_end[new_lid] = reacquire_ns + relifetime
        self.lease_cores[new_lid] = self.lease_cores[lid]
        self.lease_memory[new_lid] = self.lease_memory[lid]
        self.lease_client[new_lid] = self.lease_client[lid]
        self.lease_live[new_lid] = 1
        self.lease_retry[new_lid] = 1
        self.active_now += 1
        if self.active_now > self.active_peak:
            self.active_peak = self.active_now
        release = self.env.timeout(relifetime - self.config.decision_ns)
        release.callbacks.append(partial(self._release_cb, new_lid))

    def _log(self, when: int, kind: int, key: int) -> None:
        self.log_times.append(int(when))
        self.log_kinds.append(kind)
        self.log_keys.append(int(key))

    # -- run -----------------------------------------------------------

    def run(self) -> ControlResult:
        env = self.env
        streams = self.streams
        env.schedule_batch(streams.times, self._arrival_cb)
        if len(streams.churn):
            env.schedule_batch(streams.churn.death_times_ns, self._death_cb)
        gc_was_enabled = gc.isenabled()
        gc.disable()
        started = time.perf_counter()
        try:
            env.run(until=streams.horizon_ns)
        finally:
            if gc_was_enabled:
                gc.enable()
        wall_s = time.perf_counter() - started
        self.manager.kill()
        records = self.manager.executors.values()
        return _finish(
            self.config,
            "reference",
            self.engine,
            self.counts,
            self.checksum,
            np.asarray(self.log_times, dtype=np.int64),
            np.asarray(self.log_kinds, dtype=np.int64),
            np.asarray(self.log_keys, dtype=np.int64),
            self.active_peak,
            sum(record.free_cores for record in records),
            sum(record.free_memory for record in records),
            env.events_processed,
            wall_s,
        )


# ---------------------------------------------------------------------------
# Vectorized kernel driver: struct-of-arrays manager state.
# ---------------------------------------------------------------------------


class _KernelDriver:
    """Struct-of-arrays replay: cohort admission, masked churn,
    closed-form renewals."""

    def __init__(self, config: ControlConfig, streams: ControlStreams, engine: str) -> None:
        self.config = config
        self.streams = streams
        self.engine = engine
        self.env = new_environment(engine)
        self.soa = SoACapacity.uniform(
            config.executors, config.cores_per_executor, config.memory_per_executor
        )
        # Scalar-access calendar copies for the per-grant loop.
        self.times = streams.times.tolist()
        self.cores = streams.cores.tolist()
        self.memory = streams.memory.tolist()
        self.abandon = streams.abandon.tolist()
        self.end_planned = streams.end_planned.tolist()
        # Lease table (struct of arrays), indexed by lease id.
        cap = 2 * config.requests + 2
        self.l_exec = np.zeros(cap, dtype=np.int64)
        self.l_end = np.zeros(cap, dtype=np.int64)
        self.l_cut = np.zeros(cap, dtype=np.int64)  # renewal cutoff
        self.l_cores = np.zeros(cap, dtype=np.int64)
        self.l_memory = np.zeros(cap, dtype=np.int64)
        self.l_active = np.zeros(cap, dtype=bool)
        self.l_retry = np.zeros(cap, dtype=bool)
        self.request_lease = [0] * config.requests  # request -> lease id (0 = denied)
        self.next_lid = 1
        self.counts = dict.fromkeys(_COUNT_KEYS, 0)
        self.checksum = 0
        self.active_now = 0
        self.active_peak = 0
        # Live log (grants/denies/releases/steal rows); renewals are
        # emitted vectorized after the run.
        log_cap = 4 * config.requests + 64
        self.log_times = np.zeros(log_cap, dtype=np.int64)
        self.log_kinds = np.zeros(log_cap, dtype=np.int64)
        self.log_keys = np.zeros(log_cap, dtype=np.int64)
        self.log_cursor = 0
        self._grant_index = 0
        self._end_index = 0
        self._death_index = 0
        self._end_order = np.argsort(streams.end_planned, kind="stable")
        self._end_order_list = self._end_order.tolist()
        self._pending_reacq: deque = deque()

    def _log(self, when: int, kind: int, key: int) -> None:
        cursor = self.log_cursor
        self.log_times[cursor] = when
        self.log_kinds[cursor] = kind
        self.log_keys[cursor] = key
        self.log_cursor = cursor + 1

    def _grant_cb(self, _event: Any) -> None:
        i = self._grant_index
        self._grant_index = i + 1
        cores = self.cores[i]
        memory = self.memory[i]
        index = self.soa.pick(cores, memory)
        t = self.times[i]
        if index < 0:
            self.counts["denials"] += 1
            self._log(t, KIND_DENY, i)
            return
        self.soa.grant(index, cores, memory)
        lid = self.next_lid
        self.next_lid = lid + 1
        self.request_lease[i] = lid
        end = self.end_planned[i]
        self.l_exec[lid] = index
        self.l_end[lid] = end
        self.l_cut[lid] = end
        self.l_cores[lid] = cores
        self.l_memory[lid] = memory
        self.l_active[lid] = True
        self.counts["grants"] += 1
        self.checksum += lid * (index + 1)
        self._log(t, KIND_GRANT, lid)
        self.active_now += 1
        if self.active_now > self.active_peak:
            self.active_peak = self.active_now

    def _end_cb(self, _event: Any) -> None:
        k = self._end_index
        self._end_index = k + 1
        i = self._end_order_list[k]
        lid = self.request_lease[i]
        if lid == 0 or not self.l_active[lid]:
            return
        self.l_active[lid] = False
        self.soa.reclaim(int(self.l_exec[lid]), self.cores[i], self.memory[i])
        self.active_now -= 1
        if self.abandon[i]:
            self.counts["expiries"] += 1
        else:
            self.counts["releases"] += 1
            self._log(self.end_planned[i], KIND_RELEASE, lid)

    def _death_cb(self, _event: Any) -> None:
        j = self._death_index
        self._death_index = j + 1
        victim = int(self.streams.churn.victims[j])
        soa = self.soa
        if not soa.alive[victim]:
            self.counts["churn_noops"] += 1
            return
        soa.kill(victim)
        self.counts["dead_nodes"] += 1
        death_ns = self.env.now
        high = self.next_lid
        # Mass reclamation as one vectorized mask over the lease table.
        stolen = np.flatnonzero(self.l_active[:high] & (self.l_exec[:high] == victim))
        if stolen.size:
            self.l_active[stolen] = False
            self.l_cut[stolen] = death_ns
            self.counts["steals"] += int(stolen.size)
            self.active_now -= int(stolen.size)
            reacquire_ns = death_ns + self.config.reacquire_delay_ns
            remaining = self.l_end[stolen] - reacquire_ns
            fresh = ~self.l_retry[stolen]
            retryable = fresh & (remaining >= self.config.min_relifetime_ns)
            self.counts["steal_skipped"] += int(np.count_nonzero(fresh & ~retryable))
            candidates = stolen[retryable]
            if candidates.size:
                for lid in candidates.tolist():
                    self._pending_reacq.append((lid, death_ns))
                self.env.schedule_batch(
                    np.full(
                        candidates.size,
                        reacquire_ns + self.config.decision_ns,
                        dtype=np.int64,
                    ),
                    self._reacq_cb,
                )
        revive = self.env.timeout(self.config.downtime_ns)
        revive.callbacks.append(partial(self._revive_cb, victim))

    def _revive_cb(self, victim: int, _event: Any) -> None:
        self.soa.revive(victim)
        self.counts["revives"] += 1

    def _reacq_cb(self, _event: Any) -> None:
        lid, death_ns = self._pending_reacq.popleft()
        reacquire_ns = death_ns + self.config.reacquire_delay_ns
        cores = int(self.l_cores[lid])
        memory = int(self.l_memory[lid])
        index = self.soa.pick(cores, memory)
        if index < 0:
            self.counts["steal_denials"] += 1
            self._log(reacquire_ns, KIND_STEAL_DENY, lid)
            return
        self.soa.grant(index, cores, memory)
        relifetime = ((int(self.l_end[lid]) - reacquire_ns) // QUANT) * QUANT + 1
        new_lid = self.next_lid
        self.next_lid = new_lid + 1
        end = reacquire_ns + relifetime
        self.l_exec[new_lid] = index
        self.l_end[new_lid] = end
        self.l_cut[new_lid] = end
        self.l_cores[new_lid] = cores
        self.l_memory[new_lid] = memory
        self.l_active[new_lid] = True
        self.l_retry[new_lid] = True
        self.counts["steal_grants"] += 1
        self.checksum += new_lid * (index + 1)
        self._log(reacquire_ns, KIND_STEAL_GRANT, lid)
        self.active_now += 1
        if self.active_now > self.active_peak:
            self.active_peak = self.active_now
        release = self.env.timeout(relifetime - self.config.decision_ns)
        release.callbacks.append(partial(self._reacq_end_cb, new_lid))

    def _reacq_end_cb(self, lid: int, _event: Any) -> None:
        if not self.l_active[lid]:
            return
        self.l_active[lid] = False
        self.soa.reclaim(int(self.l_exec[lid]), int(self.l_cores[lid]), int(self.l_memory[lid]))
        self.counts["releases"] += 1
        self.active_now -= 1
        self._log(int(self.l_end[lid]), KIND_RELEASE, lid)

    def _admit(self, times: np.ndarray, callback: Any) -> None:
        for start in range(0, times.size, _ADMIT_CHUNK):
            self.env.schedule_batch(times[start : start + _ADMIT_CHUNK], callback)

    def _emit_renewals(self) -> tuple[np.ndarray, np.ndarray]:
        """Closed-form renewal log: per granted primary lease, the
        renewals sent strictly before its cutoff (natural end, or the
        node death that terminated it)."""
        streams = self.streams
        lease_ids = np.asarray(self.request_lease, dtype=np.int64)
        granted = lease_ids > 0
        lids = lease_ids[granted]
        starts = streams.times[granted]
        period = self.config.renew_period_ns
        planned = streams.planned_renewals[granted]
        cut = self.l_cut[lids]
        sent = np.minimum(planned, (cut - starts - 1) // period)
        sent = np.maximum(sent, 0)
        total = int(sent.sum())
        self.counts["renewals"] = total
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        offsets = np.repeat(np.cumsum(sent) - sent, sent)
        k = np.arange(total, dtype=np.int64) - offsets + 1
        renew_times = np.repeat(starts, sent) + k * period
        renew_keys = np.repeat(lids, sent)
        return renew_times, renew_keys

    def run(self) -> ControlResult:
        env = self.env
        streams = self.streams
        config = self.config
        # The whole static calendar goes in as sorted cohorts: grant
        # decisions at arrival + decision delay, lease ends in end
        # order, deaths in death order.
        self._admit(streams.times + config.decision_ns, self._grant_cb)
        self._admit(streams.end_planned[self._end_order], self._end_cb)
        if len(streams.churn):
            self._admit(streams.churn.death_times_ns, self._death_cb)
        gc_was_enabled = gc.isenabled()
        gc.disable()
        started = time.perf_counter()
        try:
            env.run(until=streams.horizon_ns)
        finally:
            if gc_was_enabled:
                gc.enable()
        wall_s = time.perf_counter() - started
        renew_times, renew_keys = self._emit_renewals()
        cursor = self.log_cursor
        log_times = np.concatenate([self.log_times[:cursor], renew_times])
        log_kinds = np.concatenate(
            [self.log_kinds[:cursor], np.full(renew_times.size, KIND_RENEW, dtype=np.int64)]
        )
        log_keys = np.concatenate([self.log_keys[:cursor], renew_keys])
        return _finish(
            config,
            "kernel",
            self.engine,
            self.counts,
            self.checksum,
            log_times,
            log_kinds,
            log_keys,
            self.active_peak,
            int(self.soa.free_cores.sum()),
            int(self.soa.free_memory.sum()),
            env.events_processed,
            wall_s,
        )


DRIVERS = ("kernel", "reference")

#: CI-sized scenario (registry --quick and the control-smoke job).
QUICK_KWARGS = {"executors": 256, "requests": 6_000, "deaths": 24, "verify": True}


def run_control(
    driver: str = "kernel",
    engine: Optional[str] = None,
    verify: bool = False,
    **overrides: Any,
) -> ControlResult:
    """Run the control-plane scenario with one driver.

    ``driver`` is ``"kernel"`` (struct-of-arrays fast path, default) or
    ``"reference"`` (per-event ResourceManager RPC replay).  ``engine``
    picks the event scheduler underneath (kernel defaults to the timer
    wheel, reference to the heap); simulated results are identical for
    every combination.  ``verify=True`` additionally runs the *other*
    driver and raises if the fingerprints differ.
    """
    if driver not in DRIVERS:
        raise ValueError(f"driver must be one of {DRIVERS}, got {driver!r}")
    config = ControlConfig(**overrides)
    streams = control_streams(config)
    result = _run_one(driver, config, streams, engine)
    if verify:
        other = DRIVERS[1 - DRIVERS.index(driver)]
        referee = _run_one(other, config, streams, None)
        if referee.fingerprint() != result.fingerprint():
            raise AssertionError(
                f"control drivers diverged: {driver} vs {other}\n"
                f"{result.fingerprint()}\n{referee.fingerprint()}"
            )
    return result


def _run_one(
    driver: str, config: ControlConfig, streams: ControlStreams, engine: Optional[str]
) -> ControlResult:
    if driver == "kernel":
        return _KernelDriver(config, streams, engine or "wheel").run()
    return _ReferenceDriver(config, streams, engine or "heap").run()
