"""Fig. 12: Black-Scholes parallel offloading.

OpenMP vs rFaaS (entire work offloaded) vs OpenMP+rFaaS (half/half) on
the PARSEC workload (229 MB in, 38 MB out).  The paper's takeaways:

* offloading scales efficiently until per-thread work approaches the
  ~20 ms network transmission time of the inputs,
* the hybrid beats both at every worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import Table, format_ns
from repro.hpc.apps import BlackScholesScenario
from repro.sim.clock import ms
from repro.workloads.black_scholes import PAPER_NUM_OPTIONS

DEFAULT_WORKERS = (1, 2, 4, 8, 16, 32)


@dataclass
class Fig12Result:
    workers: tuple[int, ...]
    n_options: int
    series: dict[str, dict[int, int]] = field(default_factory=dict)

    @property
    def transfer_wall_ns(self) -> int:
        """The ~20 ms it takes the inputs to cross the client link."""
        from repro.rdma.latency import LatencyModel
        from repro.workloads.black_scholes import BYTES_PER_OPTION

        return LatencyModel().serialization_ns(self.n_options * BYTES_PER_OPTION)

    def table(self) -> Table:
        table = Table(
            "Fig. 12 -- Black-Scholes offloading (runtime)",
            ["workers", "openmp", "rfaas", "openmp+rfaas"],
        )
        for w in self.workers:
            table.add_row(
                w,
                format_ns(self.series["openmp"][w]),
                format_ns(self.series["rfaas"][w]),
                format_ns(self.series["openmp+rfaas"][w]),
            )
        return table


def run_fig12(
    workers: tuple[int, ...] = DEFAULT_WORKERS,
    n_options: int = PAPER_NUM_OPTIONS,
) -> Fig12Result:
    scenario = BlackScholesScenario(n_options=n_options)
    result = Fig12Result(workers=tuple(workers), n_options=n_options)
    result.series["openmp"] = {w: scenario.openmp_ns(w) for w in workers}
    result.series["rfaas"] = {w: scenario.rfaas_ns(w) for w in workers}
    result.series["openmp+rfaas"] = {w: scenario.hybrid_ns(w) for w in workers}
    return result
