"""Table I: the high-performance FaaS requirements matrix.

The paper marks each requirement as *solved*, *enabled*, or *open*.
This harness re-checks every claim programmatically against the built
system instead of just restating the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import Table
from repro.core.deployment import Deployment
from repro.experiments.common import measure_rfaas_rtts
from repro.rdma.latency import LatencyModel
from repro.rdma.microbench import ib_write_bw
from repro.sim.clock import MiB, us
from repro.workloads.noop import noop_package


@dataclass
class RequirementCheck:
    requirement: str
    paper_status: str  # solved | enabled | open
    passed: bool
    evidence: str


@dataclass
class Table1Result:
    checks: list[RequirementCheck] = field(default_factory=list)

    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def table(self) -> Table:
        table = Table(
            "Table I -- requirements of high-performance FaaS",
            ["requirement", "paper", "check", "evidence"],
        )
        for check in self.checks:
            table.add_row(
                check.requirement,
                check.paper_status,
                "PASS" if check.passed else "FAIL",
                check.evidence,
            )
        return table


def _check_low_latency() -> RequirementCheck:
    run = measure_rfaas_rtts(64, mode="hot", repetitions=10)
    overhead = run.stats.median - LatencyModel().pingpong_rtt_ns(64)
    return RequirementCheck(
        "low-latency invocations",
        "solved",
        overhead < 1_000,
        f"hot overhead over raw RDMA = {overhead:.0f} ns (<1 us)",
    )


def _check_direct_allocations() -> RequirementCheck:
    """After the lease, the manager sees no data-path traffic."""
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    invoker = dep.new_invoker()
    manager_nic = dep.managers[0].nic

    def driver():
        yield from invoker.allocate(noop_package(), workers=1)
        before = manager_nic.attachment.ingress.bytes_carried
        for _ in range(20):
            yield from invoker.invoke("echo", b"direct")
        after = manager_nic.attachment.ingress.bytes_carried
        return after - before

    manager_bytes = dep.run(driver())
    return RequirementCheck(
        "direct allocations",
        "solved",
        manager_bytes == 0,
        f"manager ingress during 20 warm invocations: {manager_bytes} B",
    )


def _check_high_speed_network() -> RequirementCheck:
    bw = ib_write_bw(1 * MiB, iterations=50).mib_per_sec
    return RequirementCheck(
        "high-speed networks",
        "solved",
        bw > 0.9 * 11_686.4,
        f"achieved {bw:,.0f} MiB/s of the 11,686 MiB/s link",
    )


def _check_decentralized_scheduling() -> RequirementCheck:
    dep = Deployment.build(executors=2, managers=2, clients=1)
    dep.settle()
    invoker = dep.new_invoker()

    def driver():
        yield from invoker.allocate(noop_package(), workers=1)
        yield from invoker.allocate(noop_package(), workers=1)
        return {lease.manager_host for lease in invoker.leases.values()}

    executors_used = dep.run(driver())
    return RequirementCheck(
        "decentralized scheduling",
        "solved",
        len(executors_used) == 2,
        f"leases served by {len(executors_used)} independent manager pools",
    )


def _check_function_chaining() -> RequirementCheck:
    """'Efficient workflows / direct communication' are *enabled*: a
    function's node can itself run an invoker and call a peer."""
    dep = Deployment.build(executors=2, clients=1)
    dep.settle()
    # An invoker living on executor0's node calls a worker on executor1.
    from repro.core.invoker import Invoker

    peer_invoker = Invoker(
        dep.executors[0].nic,
        managers=[(m.nic.name, m.port) for m in dep.managers],
        config=dep.config,
        name="function-as-client",
        package_registry=dep.package_registry,
    )

    def driver():
        yield from peer_invoker.allocate(noop_package(), workers=1)
        output = yield from peer_invoker.invoke("echo", b"chained")
        return output

    output = dep.run(driver())
    return RequirementCheck(
        "efficient workflows / direct communication",
        "enabled",
        output == b"chained",
        "executor-side invoker chained a call to a peer worker",
    )


def _check_open_problems() -> list[RequirementCheck]:
    return [
        RequirementCheck(
            "fast and shared storage", "open", True, "out of scope (open problem in the paper)"
        ),
        RequirementCheck(
            "affordable costs", "open", True, "billing model implemented; economics out of scope"
        ),
        RequirementCheck(
            "consistent performance", "open", True, "deterministic simulation; not a claim"
        ),
    ]


def run_table1() -> Table1Result:
    result = Table1Result()
    result.checks.append(_check_low_latency())
    result.checks.append(_check_direct_allocations())
    result.checks.append(_check_high_speed_network())
    result.checks.append(_check_decentralized_scheduling())
    result.checks.append(_check_function_chaining())
    result.checks.extend(_check_open_problems())
    return result
