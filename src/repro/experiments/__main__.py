"""Command-line experiment runner.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig8
    python -m repro.experiments fig13 --quick
    python -m repro.experiments all --quick
    python -m repro.experiments bench --json BENCH_PR1.json --label pr1
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'all', 'report', 'bench', or 'list'",
    )
    parser.add_argument(
        "--out",
        default="report.md",
        help="output path for 'report' (default: report.md)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized sweeps instead of paper scale"
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        help="also write each result as DIR/<experiment>.json "
        "(for 'bench': the trajectory FILE to merge into)",
    )
    parser.add_argument(
        "--label",
        default=None,
        help="for 'bench': entry name in the trajectory file (e.g. pr1)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        width = max(len(key) for key in EXPERIMENTS)
        for key, experiment in EXPERIMENTS.items():
            print(f"{key:<{width}}  {experiment.description}")
        return 0

    if args.experiment == "bench":
        from repro.experiments.bench import run_bench, show, write_bench

        results = run_bench(quick=args.quick)
        show(results)
        if args.json:
            written = write_bench(args.json, results, label=args.label)
            print(f"[wrote {written}]")
        return 0

    if args.experiment == "report":
        from repro.experiments.report import write_report

        path = write_report(args.out, quick=args.quick)
        print(f"wrote {path}")
        return 0

    targets = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("use 'list' to see the available ids", file=sys.stderr)
        return 2

    for target in targets:
        started = time.perf_counter()
        result = run_experiment(target, quick=args.quick)
        result.table().show()
        if args.json:
            from repro.experiments.io import save_result

            written = save_result(result, f"{args.json}/{target}.json", target)
            print(f"[wrote {written}]")
        print(f"[{target}: {time.perf_counter() - started:.1f}s wall]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
