"""Command-line experiment runner.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig8
    python -m repro.experiments fig13 --quick
    python -m repro.experiments all --quick
    python -m repro.experiments all --quick --parallel auto
    python -m repro.experiments all --quick --cache
    python -m repro.experiments cache stats
    python -m repro.experiments cache verify --sample 5
    python -m repro.experiments bench --json BENCH_PR1.json --label pr1
    python -m repro.experiments bench --quick --parallel 2
    python -m repro.experiments scale --shards 4 --parallel auto
    python -m repro.experiments scale --arrival-shape diurnal --quick
    python -m repro.experiments scale --granularity-bits 16 --admission per-event
    python -m repro.experiments bench --ten-million --json BENCH_PR6.json --label pr6
    python -m repro.experiments control --quick --verify
    python -m repro.experiments control --driver reference --no-churn
    python -m repro.experiments multitenant --quick --partitioning shared
    python -m repro.experiments multitenant --shards 4 --parallel auto

``--parallel N`` fans independent work out across N worker processes
via :mod:`repro.parallel` (``auto`` or ``0`` = one per usable CPU,
``1`` = serial): for ``all`` each experiment runs in its own worker;
for ``bench`` the repetitions of each hot-loop benchmark run
concurrently (each run is wall-clock-timed inside its own process, so
medians stay comparable) and a multi-experiment batch is timed
serial-vs-parallel.  Simulated results are bit-identical to serial
runs; a crashed or raising experiment is reported and the rest of the
batch completes.

``--cache`` consults the content-addressed result cache
(:mod:`repro.cache`, default ``.repro-cache/``, override with
``--cache-dir`` or ``$REPRO_CACHE_DIR``) before running anything:
experiments whose code + parameters are unchanged come back from disk,
so repeated batches cost O(changed points).  ``--no-cache`` (the
default) touches no cache state at all.  The ``cache`` subcommand
manages the store: ``stats``, ``clear``, and ``verify`` (re-runs a
sample of entries and diffs them against the stored artifacts).
``bench`` ignores ``--cache`` for its timed loops -- reusing a stored
wall-clock measurement would defeat the point -- but measures the
cache's own cold-vs-warm speedup as ``cache_batch``.

``--shards K`` decomposes the ``scale`` scenario into K deterministic
shards (see :mod:`repro.experiments.scale`); merged results are
bit-identical for every ``--parallel`` value.  A single ``scale`` run
fans its shards out over ``--parallel`` workers directly; in an
``all`` batch the outer pool already owns the workers, so shards run
serially inside scale's worker.  ``--arrival-shape`` picks the arrival
process (``poisson``, ``bursty``, ``diurnal``) and ``--shard-split``
the decomposition (``partition`` = exact thinning of the global
stream, ``thin`` = independent per-shard streams at rate/K).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.analysis.reporting import Table
from repro.core.sandbox import SANDBOX_PROFILES
from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_experiment_timed
from repro.parallel import FailedPoint, RunSpec, run_specs


def _batch_specs(
    targets: list[str],
    quick: bool,
    scale_overrides: dict | None = None,
    control_overrides: dict | None = None,
    coldstart_overrides: dict | None = None,
    multitenant_overrides: dict | None = None,
) -> list[RunSpec]:
    specs = []
    for index, target in enumerate(targets):
        kwargs: dict = {"experiment_id": target, "quick": quick}
        if target == "scale" and scale_overrides:
            kwargs.update(scale_overrides)
        if target == "control" and control_overrides:
            kwargs.update(control_overrides)
        if target == "coldstart" and coldstart_overrides:
            kwargs.update(coldstart_overrides)
        if target == "multitenant" and multitenant_overrides:
            kwargs.update(multitenant_overrides)
        specs.append(
            RunSpec(
                factory="repro.experiments.registry:run_experiment_timed",
                kwargs=kwargs,
                index=index,
                label=target,
            )
        )
    return specs


def _parallel_workers(value: str) -> int:
    """Parse ``--parallel``: an integer, or ``auto`` = one per usable CPU."""
    if value.strip().lower() == "auto":
        return 0
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None


def _granularity_bits(value: str):
    """Parse ``--granularity-bits``: ``auto`` or an int in [1, 40].

    Validation happens here, at the CLI boundary, via the same
    :func:`repro.sim.wheel.validate_granularity_bits` the config layer
    uses -- the error names the limit instead of failing deep inside
    the wheel geometry.
    """
    from repro.sim.wheel import validate_granularity_bits

    text = value.strip().lower()
    if text != "auto":
        try:
            parsed: object = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"expected 'auto' or an integer, got {value!r}"
            ) from None
    else:
        parsed = "auto"
    try:
        return validate_granularity_bits(parsed)  # type: ignore[arg-type]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _open_cache(args: argparse.Namespace):
    from repro.cache import ResultCache

    return ResultCache(args.cache_dir)


def _cache_command(args: argparse.Namespace) -> int:
    """``cache stats|clear|verify`` management subcommand."""
    cache = _open_cache(args)
    action = args.action or "stats"
    if action == "stats":
        print(json.dumps(cache.stats(), indent=2, sort_keys=True))
        return 0
    if action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached result(s) from {cache.root}")
        return 0
    if action == "verify":
        from repro.cache import verify_cache

        report = verify_cache(cache, sample=args.sample)
        for name in report.mismatched:
            print(f"MISMATCH: {name}", file=sys.stderr)
        for detail in report.errored:
            print(f"ERROR: {detail}", file=sys.stderr)
        print(report.summary())
        return 0 if report.ok else 1
    print(f"unknown cache action {action!r} (use stats, clear, or verify)", file=sys.stderr)
    return 2


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'all', 'report', 'bench', 'cache', or 'list'",
    )
    parser.add_argument(
        "action",
        nargs="?",
        default=None,
        help="for 'cache': stats (default), clear, or verify",
    )
    parser.add_argument(
        "--out",
        default="report.md",
        help="output path for 'report' (default: report.md)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized sweeps instead of paper scale"
    )
    parser.add_argument(
        "--parallel",
        type=_parallel_workers,
        default=1,
        metavar="N",
        help="worker processes for independent runs "
        "('auto' or 0 = one per usable CPU, 1 = serial; default 1)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help="for 'scale': decompose the scenario into K deterministic "
        "shards (merged result is identical for every --parallel); "
        "for 'bench': shard count of the scale_sharded entry (default 2)",
    )
    parser.add_argument(
        "--arrival-shape",
        choices=("poisson", "bursty", "diurnal"),
        default="poisson",
        help="for 'scale': arrival process shape (default poisson)",
    )
    parser.add_argument(
        "--shard-split",
        choices=("partition", "thin"),
        default="partition",
        help="for 'scale': shard decomposition -- 'partition' thins the "
        "global stream exactly, 'thin' draws independent per-shard "
        "streams at rate/K (default partition)",
    )
    parser.add_argument(
        "--granularity-bits",
        type=_granularity_bits,
        default="auto",
        metavar="BITS",
        help="for 'scale': wheel slot width as a power of two of ns -- "
        "'auto' (default) adapts to observed occupancy at runtime, an "
        "integer in [1, 40] pins it",
    )
    parser.add_argument(
        "--admission",
        choices=("batch", "per-event"),
        default="batch",
        help="for 'scale': arrival admission -- 'batch' (default) "
        "bucket-sorts whole numpy arrival chunks in one vectorized "
        "pass, 'per-event' schedules each arrival individually "
        "(the PR 4/5 baseline engine)",
    )
    parser.add_argument(
        "--lease-lane",
        choices=("on", "off"),
        default="on",
        help="for 'scale': keep periodic lease timers in the vectorized "
        "struct-of-arrays lane ('on', default) or as individual wheel "
        "events ('off', the PR 6 engine); effective only with "
        "--admission batch on the wheel scheduler",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const=True,
        default=None,
        metavar="FILE",
        help="for 'scale' (any --pool-policy): wrap the drive loop in "
        "cProfile and print the top-25 cumulative entries; with FILE, "
        "also dump pstats to FILE and the text report to FILE.txt "
        "(single-shard poisson path only; other paths refuse with a "
        "pointer instead of silently ignoring the flag)",
    )
    parser.add_argument(
        "--pool-policy",
        choices=("queue", "cold", "hybrid"),
        default=None,
        help="for 'scale'/'coldstart'/'multitenant': what a dry-pool "
        "arrival does -- 'queue' waits FIFO (scale default), 'cold' "
        "spins a sandbox up, 'hybrid' queues until the backlog hits "
        "--hybrid-threshold (coldstart default: cold)",
    )
    parser.add_argument(
        "--partitioning",
        choices=("pinned", "shared", "overflow"),
        default=None,
        help="for 'multitenant': warm-pool partition plan -- 'pinned' "
        "gives every tenant a private weighted partition (strong "
        "isolation, default), 'shared' one oversubscribed tier, "
        "'overflow' half pinned + half shared",
    )
    parser.add_argument(
        "--start-model",
        choices=tuple(sorted(SANDBOX_PROFILES)),
        default=None,
        help="for 'scale'/'coldstart': sandbox profile priced for cold "
        "spin-ups (remote-fork ~1 ms, microvm ~125 ms, bare-metal "
        "~20 ms, docker ~2.7 s)",
    )
    parser.add_argument(
        "--keepalive-ms",
        type=int,
        default=None,
        metavar="MS",
        help="for 'scale'/'coldstart': idle-reclaim keepalive for "
        "cold-started executors in milliseconds (0 = keep forever)",
    )
    parser.add_argument(
        "--hybrid-threshold",
        type=int,
        default=None,
        metavar="N",
        help="for 'scale'/'coldstart': backlog depth at which the "
        "'hybrid' policy stops queueing and goes cold (default 64)",
    )
    parser.add_argument(
        "--driver",
        choices=("kernel", "reference"),
        default="kernel",
        help="for 'control': lease-brokering driver -- 'kernel' (default) "
        "is the vectorized struct-of-arrays fast path, 'reference' the "
        "per-event ResourceManager RPC replay",
    )
    parser.add_argument(
        "--churn",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="for 'control': executor churn (deaths/revivals) on "
        "(default) or off (--no-churn)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="for 'control': also run the other driver and fail unless "
        "the fingerprints agree (implied by --quick)",
    )
    parser.add_argument(
        "--ten-million",
        action="store_true",
        help="for 'bench': also run the 10^7-invocation single-shard "
        "stress scenario (several minutes; records speedup, "
        "bit-identity, and the RSS guard verdict as 'scale_10m')",
    )
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="reuse cached results for unchanged code+parameters "
        "(--no-cache, the default, runs everything fresh)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result-cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--sample",
        type=int,
        default=5,
        metavar="N",
        help="for 'cache verify': entries to re-run (default 5)",
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        help="also write each result as DIR/<experiment>.json "
        "(for 'bench': the trajectory FILE to merge into)",
    )
    parser.add_argument(
        "--label",
        default=None,
        help="for 'bench': entry name in the trajectory file (e.g. pr1)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="for 'bench': trajectory file holding the baseline entry "
        "to guard against perf regressions",
    )
    parser.add_argument(
        "--baseline-label",
        default=None,
        help="for 'bench': baseline entry name inside --baseline",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="for 'bench': allowed fractional events/s drop vs the "
        "baseline before failing (default 0.30)",
    )
    parser.add_argument(
        "--max-rss-growth",
        type=float,
        default=0.20,
        help="for 'bench': allowed fractional peak-RSS growth of the "
        "scale run vs the baseline before failing (default 0.20)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        width = max(len(key) for key in EXPERIMENTS)
        for key in experiment_ids():
            print(f"{key:<{width}}  {EXPERIMENTS[key].description}")
        return 0

    if args.experiment == "cache":
        return _cache_command(args)

    if args.experiment == "bench":
        from repro.experiments.bench import check_regression, run_bench, show, write_bench

        results = run_bench(
            quick=args.quick,
            parallel=args.parallel,
            shards=args.shards if args.shards is not None else 2,
            ten_million=args.ten_million,
        )
        show(results)
        if args.json:
            written = write_bench(args.json, results, label=args.label)
            print(f"[wrote {written}]")
        if args.baseline:
            problems = check_regression(
                results,
                args.baseline,
                args.baseline_label,
                max_regression=args.max_regression,
                max_rss_growth=args.max_rss_growth,
            )
            if problems:
                for problem in problems:
                    print(f"PERF REGRESSION: {problem}", file=sys.stderr)
                return 1
            print(f"[no perf regression vs {args.baseline_label or 'baseline'}]")
        return 0

    if args.experiment == "report":
        from repro.experiments.report import write_report

        path = write_report(args.out, quick=args.quick)
        print(f"wrote {path}")
        return 0

    batch = args.experiment == "all"
    targets = experiment_ids() if batch else [args.experiment]
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("use 'list' to see the available ids", file=sys.stderr)
        return 2

    scale_overrides: dict = {}
    if args.shards is not None:
        scale_overrides["shards"] = args.shards
    if args.arrival_shape != "poisson":
        scale_overrides["arrival_shape"] = args.arrival_shape
    if args.shard_split != "partition":
        scale_overrides["shard_split"] = args.shard_split
    if args.granularity_bits != "auto":
        scale_overrides["granularity_bits"] = args.granularity_bits
    if args.admission != "batch":
        scale_overrides["admission"] = args.admission
    if args.lease_lane != "on":
        scale_overrides["lease_lane"] = args.lease_lane
    if args.profile is not None:
        scale_overrides["profile"] = args.profile
    if args.pool_policy is not None:
        scale_overrides["pool_policy"] = args.pool_policy
    if args.start_model is not None:
        scale_overrides["start_model"] = args.start_model
    if args.keepalive_ms is not None:
        scale_overrides["keepalive_ns"] = args.keepalive_ms * 1_000_000
    if args.hybrid_threshold is not None:
        scale_overrides["hybrid_threshold"] = args.hybrid_threshold

    coldstart_overrides: dict = {}
    if args.pool_policy is not None:
        coldstart_overrides["pool_policy"] = args.pool_policy
    if args.start_model is not None:
        coldstart_overrides["start_models"] = (args.start_model,)
    if args.keepalive_ms is not None:
        coldstart_overrides["keepalive_ns"] = args.keepalive_ms * 1_000_000
    if args.hybrid_threshold is not None:
        coldstart_overrides["hybrid_threshold"] = args.hybrid_threshold
    if args.arrival_shape != "poisson":
        coldstart_overrides["arrival_shapes"] = (args.arrival_shape,)
    if args.profile is not None:
        # run_coldstart refuses the flag with a pointer at the
        # single-run path rather than silently ignoring it.
        coldstart_overrides["profile"] = args.profile

    control_overrides: dict = {}
    if args.driver != "kernel":
        control_overrides["driver"] = args.driver
    if not args.churn:
        control_overrides["churn"] = False
    if args.verify:
        control_overrides["verify"] = True

    multitenant_overrides: dict = {}
    if args.partitioning is not None:
        multitenant_overrides["partitioning"] = args.partitioning
    if args.shards is not None:
        multitenant_overrides["shards"] = args.shards
    if args.admission != "batch":
        multitenant_overrides["admission"] = args.admission
    if args.granularity_bits != "auto":
        multitenant_overrides["granularity_bits"] = args.granularity_bits
    if args.pool_policy is not None:
        multitenant_overrides["pool_policy"] = args.pool_policy
    if args.start_model is not None:
        multitenant_overrides["start_model"] = args.start_model
    if args.hybrid_threshold is not None:
        multitenant_overrides["hybrid_threshold"] = args.hybrid_threshold

    cache = _open_cache(args) if args.cache else None
    outer_workers = args.parallel
    if scale_overrides and not batch:
        # A sharded single 'scale' run owns the fan-out itself: the
        # shards go through repro.parallel directly (with per-shard
        # cache keys), so the outer dispatch stays inline rather than
        # nesting a pool inside a pool worker.
        scale_overrides["parallel"] = args.parallel
        if cache is not None:
            scale_overrides["cache_dir"] = str(cache.root)
        outer_workers = 1
    if multitenant_overrides and not batch and targets == ["multitenant"]:
        # Same inline-fan-out rule for a sharded multitenant run.
        multitenant_overrides["parallel"] = args.parallel
        if cache is not None:
            multitenant_overrides["cache_dir"] = str(cache.root)
        outer_workers = 1
    batch_started = time.perf_counter()
    outcomes = run_specs(
        _batch_specs(
            targets,
            args.quick,
            scale_overrides,
            control_overrides,
            coldstart_overrides,
            multitenant_overrides,
        ),
        outer_workers,
        cache=cache,
    )
    batch_wall = time.perf_counter() - batch_started

    failures: list[FailedPoint] = []
    timings: list[tuple[str, float]] = []
    for target, outcome in zip(targets, outcomes):
        if isinstance(outcome, FailedPoint):
            failures.append(outcome)
            print(f"[{outcome.summary()}]", file=sys.stderr)
            if outcome.traceback:
                print(outcome.traceback, file=sys.stderr)
            continue
        outcome.result.table().show()
        timings.append((target, outcome.wall_s))
        if args.json:
            from repro.experiments.io import save_result

            written = save_result(outcome.result, f"{args.json}/{target}.json", target)
            print(f"[wrote {written}]")
        print(f"[{target}: {outcome.wall_s:.1f}s wall]")

    if batch:
        summary = Table("Wall-clock per experiment", ["experiment", "wall"])
        for target, wall_s in timings:
            summary.add_row(target, f"{wall_s:.1f}s")
        for failure in failures:
            summary.add_row(failure.label, f"FAILED ({failure.error_type})")
        summary.add_row("total (sum)", f"{sum(w for _, w in timings):.1f}s")
        summary.add_row(f"batch (parallel={args.parallel})", f"{batch_wall:.1f}s")
        summary.show()
    if cache is not None:
        stats = cache.stats()
        session = stats["session"]
        print(
            "[cache {root}: {hits} hit(s), {misses} miss(es), "
            "{entries} entr(ies), {total_bytes:,} bytes]".format(
                root=stats["root"],
                hits=session["hits"],
                misses=session["misses"],
                entries=stats["entries"],
                total_bytes=stats["total_bytes"],
            )
        )
    if failures:
        print(f"{len(failures)} experiment(s) failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
