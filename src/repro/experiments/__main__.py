"""Command-line experiment runner.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig8
    python -m repro.experiments fig13 --quick
    python -m repro.experiments all --quick
    python -m repro.experiments all --quick --parallel 4
    python -m repro.experiments bench --json BENCH_PR1.json --label pr1
    python -m repro.experiments bench --quick --parallel 2

``--parallel N`` fans independent work out across N worker processes
via :mod:`repro.parallel` (``0`` = one per CPU core, ``1`` = serial):
for ``all`` each experiment runs in its own worker; for ``bench`` the
repetitions of each hot-loop benchmark run concurrently (each run is
wall-clock-timed inside its own process, so medians stay comparable)
and a multi-experiment batch is timed serial-vs-parallel.  Simulated
results are bit-identical to serial runs; a crashed or raising
experiment is reported and the rest of the batch completes.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.reporting import Table
from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_experiment_timed
from repro.parallel import FailedPoint, RunSpec, run_specs


def _batch_specs(targets: list[str], quick: bool) -> list[RunSpec]:
    return [
        RunSpec(
            factory="repro.experiments.registry:run_experiment_timed",
            kwargs={"experiment_id": target, "quick": quick},
            index=index,
            label=target,
        )
        for index, target in enumerate(targets)
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'all', 'report', 'bench', or 'list'",
    )
    parser.add_argument(
        "--out",
        default="report.md",
        help="output path for 'report' (default: report.md)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized sweeps instead of paper scale"
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for independent runs "
        "(0 = one per CPU core, 1 = serial; default 1)",
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        help="also write each result as DIR/<experiment>.json "
        "(for 'bench': the trajectory FILE to merge into)",
    )
    parser.add_argument(
        "--label",
        default=None,
        help="for 'bench': entry name in the trajectory file (e.g. pr1)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        width = max(len(key) for key in EXPERIMENTS)
        for key in experiment_ids():
            print(f"{key:<{width}}  {EXPERIMENTS[key].description}")
        return 0

    if args.experiment == "bench":
        from repro.experiments.bench import run_bench, show, write_bench

        results = run_bench(quick=args.quick, parallel=args.parallel)
        show(results)
        if args.json:
            written = write_bench(args.json, results, label=args.label)
            print(f"[wrote {written}]")
        return 0

    if args.experiment == "report":
        from repro.experiments.report import write_report

        path = write_report(args.out, quick=args.quick)
        print(f"wrote {path}")
        return 0

    batch = args.experiment == "all"
    targets = experiment_ids() if batch else [args.experiment]
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("use 'list' to see the available ids", file=sys.stderr)
        return 2

    batch_started = time.perf_counter()
    outcomes = run_specs(_batch_specs(targets, args.quick), args.parallel)
    batch_wall = time.perf_counter() - batch_started

    failures: list[FailedPoint] = []
    timings: list[tuple[str, float]] = []
    for target, outcome in zip(targets, outcomes):
        if isinstance(outcome, FailedPoint):
            failures.append(outcome)
            print(f"[{outcome.summary()}]", file=sys.stderr)
            if outcome.traceback:
                print(outcome.traceback, file=sys.stderr)
            continue
        outcome.result.table().show()
        timings.append((target, outcome.wall_s))
        if args.json:
            from repro.experiments.io import save_result

            written = save_result(outcome.result, f"{args.json}/{target}.json", target)
            print(f"[wrote {written}]")
        print(f"[{target}: {outcome.wall_s:.1f}s wall]")

    if batch:
        summary = Table("Wall-clock per experiment", ["experiment", "wall"])
        for target, wall_s in timings:
            summary.add_row(target, f"{wall_s:.1f}s")
        for failure in failures:
            summary.add_row(failure.label, f"FAILED ({failure.error_type})")
        summary.add_row("total (sum)", f"{sum(w for _, w in timings):.1f}s")
        summary.add_row(f"batch (parallel={args.parallel})", f"{batch_wall:.1f}s")
        summary.show()
    if failures:
        print(f"{len(failures)} experiment(s) failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
