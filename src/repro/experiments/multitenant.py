"""Multi-tenant sharing experiment (Sec. III-D oversubscription).

Three tenants with very different profiles share two spot executors:

* a *latency-critical* tenant paying for always-hot workers,
* a *bursty service* that goes hot inside bursts and warm between,
* a *batch* tenant running warm, big-payload, long invocations.

Claims quantified: the hot tenant keeps single-digit-microsecond-class
latencies while sharing nodes; warm tenants are orders of magnitude
cheaper per the billing model; the mix coexists without rejections as
long as cores suffice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import Table, format_ns
from repro.analysis.stats import median, percentile
from repro.core.billing import BillingRates
from repro.core.config import RFaaSConfig
from repro.core.deployment import Deployment
from repro.sim.clock import GiB, ms
from repro.sim.rng import RngStreams
from repro.workloads.tenants import TenantOutcome, TenantSpec, standard_mix


@dataclass
class MultiTenantResult:
    outcomes: dict[str, TenantOutcome]
    duration_ns: int

    def median_rtt(self, tenant: str) -> float:
        return median(self.outcomes[tenant].rtts_ns)

    def p99_rtt(self, tenant: str) -> float:
        return percentile(self.outcomes[tenant].rtts_ns, 99)

    def table(self) -> Table:
        table = Table(
            "Multi-tenant sharing -- three profiles on two spot executors",
            ["tenant", "calls", "median RTT", "p99 RTT", "redirects", "hot-poll s", "cost USD"],
        )
        for name, outcome in self.outcomes.items():
            table.add_row(
                name,
                len(outcome.rtts_ns),
                format_ns(median(outcome.rtts_ns)),
                format_ns(percentile(outcome.rtts_ns, 99)),
                outcome.redirects,
                f"{outcome.hotpoll_s:.3f}",
                f"{outcome.cost:.6f}",
            )
        return table


def run_multitenant(
    specs: list[TenantSpec] | None = None,
    seed: int = 11,
) -> MultiTenantResult:
    specs = specs or standard_mix()
    config = RFaaSConfig()
    dep = Deployment.build(executors=2, clients=len(specs), config=config)
    dep.settle()
    rng_streams = RngStreams(seed)
    outcomes: dict[str, TenantOutcome] = {spec.name: TenantOutcome(spec=spec) for spec in specs}

    def tenant_main(index: int, spec: TenantSpec):
        invoker = dep.new_invoker(client_index=index, name=spec.name)
        rng = rng_streams.stream(spec.name)
        outcome = outcomes[spec.name]
        package = spec.package()
        yield from invoker.allocate(
            package,
            workers=spec.workers,
            memory_bytes=2 * GiB,
            hot_timeout_ns=spec.hot_timeout_ns,
            timeout_ns=dep.config.lease_timeout_ns * 10,
            worker_buffer_bytes=2 * spec.payload_bytes + 64,
        )
        in_buf = invoker.alloc_input(spec.payload_bytes)
        in_buf.write(bytes(spec.payload_bytes))
        out_buf = invoker.alloc_output(64)
        sent = 0
        while sent < spec.invocations:
            burst = spec.burst_len if spec.arrival == "bursty" else 1
            for _ in range(min(burst, spec.invocations - sent)):
                future = invoker.submit("work", in_buf, spec.payload_bytes, out_buf)
                result = yield future.wait()
                outcome.rtts_ns.append(result.rtt_ns)
                outcome.redirects += future.redirects
                sent += 1
            yield dep.env.timeout(spec.interarrival_ns(rng))
        yield from invoker.deallocate()
        yield dep.env.timeout(ms(10))

    drivers = [
        dep.env.process(tenant_main(index, spec), name=f"tenant-{spec.name}")
        for index, spec in enumerate(specs)
    ]

    def supervisor():
        for driver in drivers:
            yield driver
        return None

    started = dep.env.now
    dep.run(supervisor())
    duration = dep.env.now - started

    rates = BillingRates()
    for spec in specs:
        account = dep.managers[0].billing.read_account(spec.name)
        outcome = outcomes[spec.name]
        outcome.cost = account.cost(rates)
        outcome.hotpoll_s = account.hotpoll_s
        outcome.compute_s = account.compute_s
    return MultiTenantResult(outcomes=outcomes, duration_ns=duration)
