"""Multi-tenant experiments (Sec. III-D oversubscription).

Two harnesses over the same declarative three-profile mix
(:func:`repro.workloads.tenants.standard_mix`):

* :func:`run_multitenant` -- the RPC-level experiment: three tenants
  share two spot executors through the full deployment stack (leases,
  billing, hot/warm accounting).  Claims quantified: the hot tenant
  keeps single-digit-microsecond-class latencies while sharing nodes;
  warm tenants are orders of magnitude cheaper per the billing model;
  the mix coexists without rejections as long as cores suffice.
* :func:`run_multitenant_scale` -- the million-invocation isolation
  spectrum: the same mix rescaled through the vectorized multi-tenant
  scale engine (:func:`repro.experiments.scale.run_tenant_scale`),
  sweeping the warm-pool partitioning from fully ``pinned`` (strong
  isolation, stranded capacity) through ``overflow`` to fully
  ``shared`` (best utilization, noisy neighbours), with per-tenant
  p95/p99 sojourn, deadline-miss and congestion-rejection rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import Table, format_ns
from repro.analysis.stats import median, percentile
from repro.core.billing import BillingRates
from repro.core.config import RFaaSConfig
from repro.core.deployment import Deployment
from repro.experiments.scale import TenantScaleResult, run_tenant_scale
from repro.sim.clock import GiB, ms
from repro.sim.rng import RngStreams
from repro.workloads.tenants import TenantOutcome, TenantSpec, standard_mix


@dataclass
class MultiTenantResult:
    outcomes: dict[str, TenantOutcome]
    duration_ns: int

    def median_rtt(self, tenant: str) -> float:
        return median(self.outcomes[tenant].rtts_ns)

    def p99_rtt(self, tenant: str) -> float:
        return percentile(self.outcomes[tenant].rtts_ns, 99)

    def table(self) -> Table:
        table = Table(
            "Multi-tenant sharing -- three profiles on two spot executors",
            ["tenant", "calls", "median RTT", "p99 RTT", "redirects", "hot-poll s", "cost USD"],
        )
        for name, outcome in self.outcomes.items():
            table.add_row(
                name,
                len(outcome.rtts_ns),
                format_ns(median(outcome.rtts_ns)),
                format_ns(percentile(outcome.rtts_ns, 99)),
                outcome.redirects,
                f"{outcome.hotpoll_s:.3f}",
                f"{outcome.cost:.6f}",
            )
        return table


def run_multitenant(
    specs: list[TenantSpec] | None = None,
    seed: int = 11,
) -> MultiTenantResult:
    specs = specs or standard_mix()
    config = RFaaSConfig()
    dep = Deployment.build(executors=2, clients=len(specs), config=config)
    dep.settle()
    rng_streams = RngStreams(seed)
    outcomes: dict[str, TenantOutcome] = {spec.name: TenantOutcome(spec=spec) for spec in specs}

    def tenant_main(index: int, spec: TenantSpec):
        invoker = dep.new_invoker(client_index=index, name=spec.name)
        rng = rng_streams.stream(spec.name)
        outcome = outcomes[spec.name]
        package = spec.package()
        yield from invoker.allocate(
            package,
            workers=spec.workers,
            memory_bytes=2 * GiB,
            hot_timeout_ns=spec.hot_timeout_ns,
            timeout_ns=dep.config.lease_timeout_ns * 10,
            worker_buffer_bytes=2 * spec.payload_bytes + 64,
        )
        in_buf = invoker.alloc_input(spec.payload_bytes)
        in_buf.write(bytes(spec.payload_bytes))
        out_buf = invoker.alloc_output(64)
        # The declared profile IS the arrival calendar: absolute times
        # from sim.arrivals (bursts come pre-packed 1 ns apart, so a
        # burst submits back-to-back, throttled only by each RTT).
        started_ns = dep.env.now
        for chunk in spec.arrival_stream(rng):
            for target_ns in chunk.tolist():
                behind = target_ns - (dep.env.now - started_ns)
                if behind > 0:
                    yield dep.env.timeout(behind)
                future = invoker.submit("work", in_buf, spec.payload_bytes, out_buf)
                result = yield future.wait()
                outcome.rtts_ns.append(result.rtt_ns)
                outcome.redirects += future.redirects
        yield from invoker.deallocate()
        yield dep.env.timeout(ms(10))

    drivers = [
        dep.env.process(tenant_main(index, spec), name=f"tenant-{spec.name}")
        for index, spec in enumerate(specs)
    ]

    def supervisor():
        for driver in drivers:
            yield driver
        return None

    started = dep.env.now
    dep.run(supervisor())
    duration = dep.env.now - started

    rates = BillingRates()
    for spec in specs:
        account = dep.managers[0].billing.read_account(spec.name)
        outcome = outcomes[spec.name]
        outcome.cost = account.cost(rates)
        outcome.hotpoll_s = account.hotpoll_s
        outcome.compute_s = account.compute_s
    return MultiTenantResult(outcomes=outcomes, duration_ns=duration)


#: CI-sized multi-tenant scale scenario: ~2x10^4 invocations on a pool
#: just large enough to stay unsaturated (queued == 0), so the K-shard
#: partition split is bit-exact and the quick bench can assert the same
#: shard-identity contract as the paper-scale run.  Deadline misses
#: still occur (tight deadlines, not backlog), so the per-tenant
#: miss-rate guard has real signal; the isolation scenario saturates
#: the pool separately with its own worker count.
QUICK_KWARGS = {
    "invocations": 20_000,
    "rate_scale": 2_000.0,
    "compute_scale": 100.0,
    "workers": 1 << 15,
}


def run_multitenant_scale(
    invocations: int = 1_000_000,
    rate_scale: float = 17_500.0,
    compute_scale: float = 1_000.0,
    workers: int = 1 << 21,
    **kwargs,
) -> TenantScaleResult:
    """Million-invocation multi-tenant isolation run (the scale engine).

    Thin registry/CLI entry over :func:`repro.experiments.scale.
    run_tenant_scale`: the defaults rescale :func:`standard_mix` to
    10^6 invocations over a 2^21-slot warm pool -- arrival rates high
    enough that the bursty profile's burst epochs stress its partition
    while the mix stays unsaturated overall -- and every engine knob
    (``partitioning``, ``scheduler``, ``admission``, ``pool_policy``,
    ``shards``, ``parallel``, ...) passes straight through.
    """
    return run_tenant_scale(
        invocations=invocations,
        rate_scale=rate_scale,
        compute_scale=compute_scale,
        workers=workers,
        **kwargs,
    )
