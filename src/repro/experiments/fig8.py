"""Fig. 8: RTT of the no-op function vs raw RDMA and TCP.

Series: rFaaS hot/warm x bare-metal/Docker, ``ib_write_lat`` RDMA
baseline, netperf TCP baseline; sizes 2 B .. 64 KiB.

Headline checks (Sec. V-A):

* hot overhead over RDMA ~326 ns (bare-metal), +~50 ns with Docker,
* the 630 ns bump where the 12-byte header defeats inlining (128 B),
* warm overhead ~4.67 us, +~650 ns with Docker.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import Table, format_bytes, format_ns
from repro.experiments.common import measure_rfaas_rtts
from repro.rdma.microbench import ib_write_lat
from repro.tcp.netperf import netperf_rr

DEFAULT_SIZES = (2, 16, 64, 128, 256, 1024, 4096, 16384, 65536)


@dataclass
class Fig8Result:
    sizes: tuple[int, ...]
    #: series name -> {size: median RTT ns}
    series: dict[str, dict[int, float]] = field(default_factory=dict)
    #: series name -> {size: p99 RTT ns}
    p99: dict[str, dict[int, float]] = field(default_factory=dict)

    def overhead_vs_rdma(self, name: str, size: int) -> float:
        return self.series[name][size] - self.series["rdma"][size]

    def table(self) -> Table:
        table = Table(
            "Fig. 8 -- no-op invocation RTT (median, simulated)",
            ["size"] + list(self.series),
        )
        for size in self.sizes:
            table.add_row(
                format_bytes(size),
                *[format_ns(self.series[name][size]) for name in self.series],
            )
        return table


def run_fig8(sizes: tuple[int, ...] = DEFAULT_SIZES, repetitions: int = 20) -> Fig8Result:
    result = Fig8Result(sizes=tuple(sizes))
    for name in ("rdma", "tcp", "hot", "hot-docker", "warm", "warm-docker"):
        result.series[name] = {}
        result.p99[name] = {}

    for size in sizes:
        rdma = ib_write_lat(size, iterations=repetitions)
        result.series["rdma"][size] = rdma.median_ns
        result.p99["rdma"][size] = rdma.median_ns
        tcp = netperf_rr(size, iterations=repetitions)
        result.series["tcp"][size] = tcp.mean_ns
        result.p99["tcp"][size] = tcp.mean_ns
        for mode in ("hot", "warm"):
            for sandbox, suffix in (("bare-metal", ""), ("docker", "-docker")):
                run = measure_rfaas_rtts(
                    size, sandbox=sandbox, mode=mode, repetitions=repetitions
                )
                result.series[f"{mode}{suffix}"][size] = run.stats.median
                result.p99[f"{mode}{suffix}"][size] = run.stats.p99
    return result
