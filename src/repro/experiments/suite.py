"""The SeBS-style suite experiment: five real functions, two platforms.

Generalizes Fig. 11 across the whole workload suite (thumbnailer,
ResNet inference, compression, graph BFS, graph PageRank), running each
real function on rFaaS (Docker executors) and on the AWS Lambda model
with identical compute cost.  The per-function speedup tracks how
data-movement-bound the function is -- exactly the paper's Sec. VII
workload taxonomy ("data-intensive workloads will benefit").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import Table, format_bytes, format_ns
from repro.analysis.stats import median
from repro.baselines import AwsLambda
from repro.core.deployment import Deployment
from repro.core.functions import CodePackage
from repro.sim.core import Environment
from repro.workloads.images import image_for_payload_size
from repro.workloads.resnet import resnet_package
from repro.workloads.sebs_extra import pack_graph, random_graph, sebs_extra_package
from repro.workloads.thumbnailer import thumbnailer_package


@dataclass
class SuiteCase:
    name: str
    package_factory: object
    fn: str
    payload: bytes
    out_capacity: int


def default_cases() -> list[SuiteCase]:
    image = image_for_payload_size(200_000)
    reco = image_for_payload_size(53_000)
    n, m = 2_000, 20_000
    graph = pack_graph(n, random_graph(n, m, seed=12), arg=0)
    graph_pr = pack_graph(n, random_graph(n, m, seed=12), arg=20)
    text = bytes(range(256)) * 800  # 204.8 kB, mildly compressible
    return [
        SuiteCase("thumbnailer", thumbnailer_package, "thumbnailer", image.encode(), 1 << 20),
        SuiteCase("recognition", resnet_package, "image-recognition", reco.encode(), 64),
        SuiteCase("compression", sebs_extra_package, "compression", text, len(text) * 2),
        SuiteCase("graph-bfs", sebs_extra_package, "graph-bfs", graph, 4 * n),
        SuiteCase("graph-pagerank", sebs_extra_package, "graph-pagerank", graph_pr, 8 * n),
    ]


@dataclass
class SuiteResult:
    #: case -> platform -> median RTT ns
    medians: dict[str, dict[str, float]] = field(default_factory=dict)
    payload_sizes: dict[str, int] = field(default_factory=dict)

    def speedup(self, case: str) -> float:
        return self.medians[case]["aws-lambda"] / self.medians[case]["rfaas"]

    def table(self) -> Table:
        table = Table(
            "SeBS-style suite -- rFaaS vs AWS Lambda (median RTT)",
            ["function", "input", "rfaas", "aws-lambda", "speedup"],
        )
        for case, platforms in self.medians.items():
            table.add_row(
                case,
                format_bytes(self.payload_sizes[case]),
                format_ns(platforms["rfaas"]),
                format_ns(platforms["aws-lambda"]),
                f"{self.speedup(case):.1f}x",
            )
        return table


def _rfaas_case(case: SuiteCase, repetitions: int) -> float:
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    invoker = dep.new_invoker()
    package: CodePackage = case.package_factory()

    def driver():
        yield from invoker.allocate(
            package,
            workers=1,
            sandbox="docker",
            worker_buffer_bytes=2 * max(len(case.payload), case.out_capacity) + 64,
        )
        in_buf = invoker.alloc_input(len(case.payload))
        in_buf.write(case.payload)
        out_buf = invoker.alloc_output(case.out_capacity)
        warmup = invoker.submit(case.fn, in_buf, len(case.payload), out_buf)
        yield warmup.wait()
        rtts = []
        for _ in range(repetitions):
            future = invoker.submit(case.fn, in_buf, len(case.payload), out_buf)
            result = yield future.wait()
            assert result.ok
            rtts.append(result.rtt_ns)
        return rtts

    return median(dep.run(driver()))


def _lambda_case(case: SuiteCase, repetitions: int) -> float:
    env = Environment()
    platform = AwsLambda(env)
    package: CodePackage = case.package_factory()
    spec = package.by_index(package.index_of(case.fn))
    cost = spec.cost_ns(len(case.payload))
    rtts: list[int] = []

    def driver():
        yield from platform.invoke(
            case.fn, case.payload, len(case.payload), handler=spec.handler, compute_ns=cost
        )
        for _ in range(repetitions):
            result = yield from platform.invoke(
                case.fn, case.payload, len(case.payload), handler=spec.handler, compute_ns=cost
            )
            rtts.append(result.rtt_ns)

    env.process(driver())
    env.run()
    return median(rtts)


def run_suite(repetitions: int = 10) -> SuiteResult:
    result = SuiteResult()
    for case in default_cases():
        result.payload_sizes[case.name] = len(case.payload)
        result.medians[case.name] = {
            "rfaas": _rfaas_case(case, repetitions),
            "aws-lambda": _lambda_case(case, repetitions),
        }
    return result
