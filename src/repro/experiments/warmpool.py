"""Warm-pool ablation (Sec. V-B): bypassing container startup.

The paper: "the user's function can be deployed as a code package like
in many other FaaS platforms, allowing executor managers to keep a pool
of generic and ready containers and bypass the container startup
latency" -- and cites 125 ms fast-microVM boots [30] as the achievable
floor.  This harness measures Docker cold starts with and without the
pool and checks the floor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import Table, format_ns
from repro.analysis.stats import median
from repro.core.config import ColdStartBreakdown, RFaaSConfig
from repro.core.deployment import Deployment
from repro.sim.clock import ms, secs
from repro.workloads.noop import noop_package


@dataclass
class WarmPoolResult:
    cold_ns: float
    pooled_ns: float
    pool_hits: int

    @property
    def improvement(self) -> float:
        return self.cold_ns / self.pooled_ns

    def table(self) -> Table:
        table = Table(
            "Sec. V-B ablation -- Docker cold starts with a warm pool",
            ["path", "median cold start", "relative"],
        )
        table.add_row("container boot", format_ns(self.cold_ns), "1.0x")
        table.add_row(
            "warm pool attach", format_ns(self.pooled_ns), f"{1 / self.improvement:.3f}x"
        )
        return table


def _cold_start(config: RFaaSConfig, repetitions: int) -> tuple[float, int]:
    samples = []
    hits = 0
    for _ in range(repetitions):
        dep = Deployment.build(executors=1, clients=1, config=config)
        dep.settle()
        if config.warm_pool_size > 0:
            # Let the pool boot before the client arrives.
            dep.env.run(until=dep.env.now + secs(6))
        invoker = dep.new_invoker()
        package = noop_package()

        def driver():
            breakdown: ColdStartBreakdown = yield from invoker.allocate(
                package, workers=1, sandbox="docker"
            )
            return breakdown.total

        samples.append(dep.run(driver()))
        hits += dep.executors[0].pool_hits
    return median(samples), hits


def run_warmpool(repetitions: int = 3) -> WarmPoolResult:
    cold, _ = _cold_start(RFaaSConfig(), repetitions)
    pooled, hits = _cold_start(RFaaSConfig(warm_pool_size=2), repetitions)
    return WarmPoolResult(cold_ns=cold, pooled_ns=pooled, pool_hits=hits)
