"""Shared measurement plumbing for the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.stats import SummaryStats, summarize
from repro.core.config import RFaaSConfig
from repro.core.deployment import Deployment
from repro.core.functions import CodePackage
from repro.workloads.noop import noop_package


@dataclass
class RfaasLatencyRun:
    """Median/p99 RTTs of repeated invocations on one configuration."""

    payload_size: int
    sandbox: str
    mode: str  # "hot" | "warm"
    stats: SummaryStats


def measure_rfaas_rtts(
    payload_size: int,
    *,
    sandbox: str = "bare-metal",
    mode: str = "hot",
    repetitions: int = 30,
    workers: int = 1,
    package: Optional[CodePackage] = None,
    fn: str = "echo",
    payload: Optional[bytes] = None,
    config: Optional[RFaaSConfig] = None,
    confidence: float = 0.99,
) -> RfaasLatencyRun:
    """One warmed-up single-client measurement series (Fig. 8 style).

    ``mode='hot'`` keeps workers busy-polling; ``mode='warm'`` forces
    blocking-wait on every invocation.
    """
    if mode not in ("hot", "warm"):
        raise ValueError(f"unknown mode {mode!r}")
    hot_timeout = None if mode == "hot" else 0
    dep = Deployment.build(executors=max(1, -(-workers // 36)), clients=1, config=config)
    dep.settle()
    invoker = dep.new_invoker()
    package = package or noop_package()
    data = payload if payload is not None else bytes(payload_size)

    def driver():
        yield from invoker.allocate(
            package,
            workers=workers,
            sandbox=sandbox,
            hot_timeout_ns=hot_timeout,
            worker_buffer_bytes=max(payload_size * 2 + 64, 4096),
        )
        in_buf = invoker.alloc_input(max(payload_size, 64))
        out_buf = invoker.alloc_output(max(payload_size, 64))
        in_buf.write(data)
        rtts = []
        # One untimed warm-up settles buffers and modes.
        warmup = invoker.submit(fn, in_buf, payload_size, out_buf)
        yield warmup.wait()
        for _ in range(repetitions):
            future = invoker.submit(fn, in_buf, payload_size, out_buf)
            result = yield future.wait()
            rtts.append(result.rtt_ns)
            if mode == "warm":
                # Let the worker roll back to blocking between calls.
                yield dep.env.timeout(1)
        return rtts

    rtts = dep.run(driver())
    return RfaasLatencyRun(
        payload_size=payload_size,
        sandbox=sandbox,
        mode=mode,
        stats=summarize(rtts, confidence),
    )
