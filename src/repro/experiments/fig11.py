"""Fig. 11: real serverless functions -- thumbnailer & ResNet inference.

Both SeBS benchmarks run on rFaaS (Docker executors, as deployed in the
paper) and on the AWS Lambda model, with identical compute-cost models,
so the gap isolates the invocation path: raw RDMA payloads vs
base64-over-HTTP through the cloud control plane.

Inputs match the paper: 97 kB / 3.6 MB images for the thumbnailer,
53 kB / 230 kB for recognition; 100 repetitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import Table, format_bytes, format_ns
from repro.analysis.stats import SummaryStats, summarize
from repro.baselines import AwsLambda
from repro.core.deployment import Deployment
from repro.sim.core import Environment
from repro.workloads.images import image_for_payload_size
from repro.workloads.resnet import inference_cost_ns, resnet_package
from repro.workloads.thumbnailer import thumbnail_cost_ns, thumbnailer_package

CASES = {
    "thumbnailer-small": ("thumbnailer", 97_000),
    "thumbnailer-large": ("thumbnailer", 3_600_000),
    "recognition-small": ("image-recognition", 53_000),
    "recognition-large": ("image-recognition", 230_000),
}


@dataclass
class Fig11Result:
    #: case -> platform -> stats
    stats: dict[str, dict[str, SummaryStats]] = field(default_factory=dict)

    def speedup(self, case: str) -> float:
        return self.stats[case]["aws-lambda"].median / self.stats[case]["rfaas"].median

    def table(self) -> Table:
        table = Table(
            "Fig. 11 -- SeBS functions (median RTT)",
            ["case", "input", "rfaas", "aws-lambda", "speedup"],
        )
        for case, (_, size) in CASES.items():
            table.add_row(
                case,
                format_bytes(size),
                format_ns(self.stats[case]["rfaas"].median),
                format_ns(self.stats[case]["aws-lambda"].median),
                f"{self.speedup(case):.1f}x",
            )
        return table


def _package_for(function: str):
    return thumbnailer_package() if function == "thumbnailer" else resnet_package()


def _rfaas_case(function: str, size: int, repetitions: int) -> SummaryStats:
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    invoker = dep.new_invoker()
    package = _package_for(function)
    image = image_for_payload_size(size)
    payload = image.encode()

    def driver():
        yield from invoker.allocate(
            package,
            workers=1,
            sandbox="docker",
            worker_buffer_bytes=2 * len(payload) + 64,
        )
        in_buf = invoker.alloc_input(len(payload))
        out_buf = invoker.alloc_output(len(payload))
        in_buf.write(payload)
        rtts = []
        warmup = invoker.submit(function, in_buf, len(payload), out_buf)
        yield warmup.wait()
        for _ in range(repetitions):
            future = invoker.submit(function, in_buf, len(payload), out_buf)
            result = yield future.wait()
            assert result.ok
            rtts.append(result.rtt_ns)
        return rtts

    return summarize(dep.run(driver()), confidence=0.95)


def _lambda_case(function: str, size: int, repetitions: int) -> SummaryStats:
    env = Environment()
    platform = AwsLambda(env)
    image = image_for_payload_size(size)
    payload = image.encode()
    # Same real kernel and same cost model as the rFaaS deployment, so
    # the measured gap is purely the invocation path.
    spec = _package_for(function).by_index(0)
    cost = (
        thumbnail_cost_ns(len(payload))
        if function == "thumbnailer"
        else inference_cost_ns(len(payload))
    )
    rtts: list[int] = []

    def driver():
        yield from platform.invoke(
            function, payload, len(payload), handler=spec.handler, compute_ns=cost
        )
        for _ in range(repetitions):
            result = yield from platform.invoke(
                function, payload, len(payload), handler=spec.handler, compute_ns=cost
            )
            rtts.append(result.rtt_ns)

    env.process(driver())
    env.run()
    return summarize(rtts, confidence=0.95)


def run_fig11(repetitions: int = 20) -> Fig11Result:
    result = Fig11Result()
    for case, (function, size) in CASES.items():
        result.stats[case] = {
            "rfaas": _rfaas_case(function, size, repetitions),
            "aws-lambda": _lambda_case(function, size, repetitions),
        }
    return result
