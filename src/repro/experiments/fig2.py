"""Fig. 2: Piz Daint utilization over one (simulated) week.

(a) node utilization / idle-node windows sampled every minute,
(b) memory utilization.  The paper's observations: node utilization in
the 80-94 % band with only short idle windows, and about three-quarters
of node memory unused -- the capacity rFaaS harvests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import Table
from repro.analysis.stats import median, percentile
from repro.cluster import (
    BatchScheduler,
    PizDaintWorkload,
    UtilizationSampler,
    WorkloadConfig,
    idle_windows,
)
from repro.sim.clock import ns_to_ms, secs
from repro.sim.core import Environment


@dataclass
class Fig2Result:
    config: WorkloadConfig
    jobs_run: int
    mean_node_utilization: float
    mean_memory_utilization: float
    mean_idle_nodes: float
    #: Durations (ns) of >=1%-of-nodes idle windows.
    idle_window_ns: list[int]

    @property
    def median_idle_window_minutes(self) -> float:
        if not self.idle_window_ns:
            return 0.0
        return median(self.idle_window_ns) / secs(60)

    @property
    def p90_idle_window_minutes(self) -> float:
        if not self.idle_window_ns:
            return 0.0
        return percentile(self.idle_window_ns, 90) / secs(60)

    def table(self) -> Table:
        table = Table("Fig. 2 -- synthetic Piz Daint utilization", ["metric", "value", "paper"])
        table.add_row("node utilization", f"{self.mean_node_utilization:.1%}", "80-94%")
        table.add_row("memory utilization", f"{self.mean_memory_utilization:.1%}", "~25% (75% idle)")
        table.add_row("mean idle nodes", f"{self.mean_idle_nodes:.0f}", "harvestable")
        table.add_row(
            "median idle window", f"{self.median_idle_window_minutes:.0f} min", "short (minutes)"
        )
        table.add_row("p90 idle window", f"{self.p90_idle_window_minutes:.0f} min", "short")
        return table


def run_fig2(
    total_nodes: int = 500,
    days: float = 3.0,
    seed: int = 2021,
) -> Fig2Result:
    config = WorkloadConfig(
        total_nodes=total_nodes, duration_ns=secs(days * 24 * 3600), seed=seed
    )
    jobs = PizDaintWorkload(config).generate()
    env = Environment()
    scheduler = BatchScheduler(env, config.total_nodes, config.node_memory_bytes)
    sampler = UtilizationSampler(env, scheduler, until_ns=config.duration_ns)
    env.process(scheduler.run_trace(jobs))
    env.run(until=config.duration_ns)

    # Discard the fill-up transient (first ~5% of the window).
    steady = [s for s in sampler.samples if s.time_ns > config.duration_ns * 0.05]
    threshold = max(1, total_nodes // 100)
    return Fig2Result(
        config=config,
        jobs_run=len(scheduler.completed) + len(scheduler.running),
        mean_node_utilization=sum(s.node_utilization for s in steady) / len(steady),
        mean_memory_utilization=sum(s.memory_utilization for s in steady) / len(steady),
        mean_idle_nodes=sum(s.idle_nodes for s in steady) / len(steady),
        idle_window_ns=idle_windows(steady, threshold_nodes=threshold),
    )
