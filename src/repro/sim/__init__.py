"""Discrete-event simulation kernel.

A small, deterministic, SimPy-flavoured event loop operating in integer
nanoseconds of *virtual* time.  Every other subsystem in this repository
(the RDMA fabric, the TCP stack, the rFaaS control plane, the mini-MPI
runtime) is built on top of this kernel, which is what lets us report
microsecond- and nanosecond-scale latencies from plain Python.

Public surface
--------------
``Environment``
    The event loop: schedules events, advances virtual time, spawns
    processes.
``Event``, ``Timeout``, ``AllOf``, ``AnyOf``
    Awaitable occurrences; processes ``yield`` them.
``Process``, ``Interrupt``
    Generator-based coroutines running inside the environment and the
    exception used to interrupt them.
``Resource``, ``Store``, ``FilterStore``, ``Container``
    Shared-resource primitives used to model cores, queues and links.
``us``, ``ms``, ``secs``, ``GiB``, ``MiB``, ``KiB``
    Unit helpers (virtual time is always ``int`` nanoseconds, sizes are
    ``int`` bytes).
"""

from repro.sim.clock import KB, KiB, MB, MiB, GB, GiB, ns_to_s, ns_to_us, ns_to_ms, secs, ms, us
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Interrupt, InterruptedError_, Process
from repro.sim.core import Environment, StopSimulation
from repro.sim.resources import Container, FilterStore, Resource, Store
from repro.sim.rng import RngStreams
from repro.sim.wheel import SCHEDULERS, WheelEnvironment, new_environment

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "FilterStore",
    "GB",
    "GiB",
    "Interrupt",
    "InterruptedError_",
    "KB",
    "KiB",
    "MB",
    "MiB",
    "Process",
    "Resource",
    "RngStreams",
    "SCHEDULERS",
    "StopSimulation",
    "Store",
    "Timeout",
    "WheelEnvironment",
    "new_environment",
    "ms",
    "ns_to_ms",
    "ns_to_s",
    "ns_to_us",
    "secs",
    "us",
]
