"""Time and size units.

The whole simulation runs in **integer nanoseconds** so that event
ordering is exact and runs are bit-reproducible; floating-point time
would accumulate rounding drift over the millions of events produced by
the bandwidth benchmarks.  Sizes are integer bytes.
"""

from __future__ import annotations

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

KiB = 1_024
MiB = 1_024 * 1_024
GiB = 1_024 * 1_024 * 1_024


def us(value: float) -> int:
    """Microseconds -> integer nanoseconds (rounded)."""
    return round(value * NS_PER_US)


def ms(value: float) -> int:
    """Milliseconds -> integer nanoseconds (rounded)."""
    return round(value * NS_PER_MS)


def secs(value: float) -> int:
    """Seconds -> integer nanoseconds (rounded)."""
    return round(value * NS_PER_S)


def ns_to_us(value: int) -> float:
    """Nanoseconds -> microseconds as a float (for reporting only)."""
    return value / NS_PER_US


def ns_to_ms(value: int) -> float:
    """Nanoseconds -> milliseconds as a float (for reporting only)."""
    return value / NS_PER_MS


def ns_to_s(value: int) -> float:
    """Nanoseconds -> seconds as a float (for reporting only)."""
    return value / NS_PER_S
