"""Events: the awaitable occurrences processes ``yield`` on.

The lifecycle mirrors the classic SimPy design: an event starts
*untriggered*, becomes *triggered* once it has a value (or an exception)
and is sitting in the environment's queue, and becomes *processed* once
the environment has invoked its callbacks.  Failures propagate into any
process that yields on the event; an unhandled failure crashes the
simulation at ``Environment.step`` unless it was *defused* by a handler.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment

#: Sentinel: the event has no value yet.
PENDING = object()

#: Scheduling priorities (lower runs first at equal time).
URGENT = 0
NORMAL = 1


class Event:
    """A single occurrence inside an :class:`Environment`.

    Processes suspend on events by yielding them; when the event is
    processed the process resumes with the event's value (or has the
    failure exception thrown into it).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables invoked with the event once it is processed.  Set to
        #: ``None`` afterwards, which is also how "processed" is encoded.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        #: A failed event whose exception was delivered to *someone* is
        #: defused; undefused failures abort the simulation.
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or was) scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if not self.triggered:
            raise AttributeError("value of event is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception) once triggered."""
        if self._value is PENDING:
            raise AttributeError("value of event is not yet available")
        return self._value

    @property
    def defused(self) -> bool:
        return self._defused

    def defuse(self) -> None:
        """Mark a failed event as handled so it will not crash the run."""
        self._defused = True

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure carrying *exception*."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state (ok/value) of *event*.

        Used as a callback to chain events together.
        """
        if self.triggered:
            return
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run *callback(event)* once the event is processed.

        If the event was already processed the callback runs immediately.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers *delay* nanoseconds after creation.

    Timeouts dominate event volume, so :meth:`Environment.timeout`
    recycles processed instances through a free list instead of
    constructing a new one per call whenever that is provably safe
    (no outstanding references).
    """

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self._delay = int(delay)
        self._ok = True
        self._value = value
        env.schedule_timeout(self, self._delay)

    @property
    def delay(self) -> int:
        return self._delay

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay}>"


class BatchEvent(Event):
    """A pre-triggered event admitted via ``Environment.schedule_batch``.

    The batch-admission path creates one of these per arrival in a
    vectorized pass; keeping the constructor to five slot stores (and
    sharing one callbacks tuple across the whole batch) is what makes
    admitting 2^16 events at once cheap.

    A *tuple* in ``callbacks`` is a persistent dispatch descriptor: it
    must hold exactly one callable, and the event loop invokes it
    without detaching it, so a handler that re-schedules the same event
    (the scale kernel re-arms lease timers millions of times) skips
    both the detach store and the re-attach store.  Consequently
    ``processed`` is not meaningful for tuple-dispatch events; use
    ``triggered`` (value-based), which is True from construction.  A
    list in ``callbacks`` keeps the ordinary one-shot detach contract.
    """

    __slots__ = ()

    def __init__(self, env: "Environment", callbacks: Any, value: Any = None) -> None:
        self.env = env
        self.callbacks = callbacks
        self._value = value
        self._ok = True
        self._defused = False


class TenantEvent(BatchEvent):
    """A :class:`BatchEvent` carrying multi-tenant completion bookkeeping.

    The multi-tenant scale kernel needs two facts at completion time
    that the single-stream kernel never did: *whose* invocation the
    lease timer guards (``tenant``, the merged-calendar tenant id) and
    *which pool tier* the slot came from (``pool``: 0 = the tenant's
    pinned partition, 1 = the oversubscribed shared tier).  Two extra
    slots beat a tuple value because the value slot stays free for the
    absolute finish time, exactly like the single-stream lease events
    -- so the fused kernels treat both event classes identically.

    Both fields are plain mutable slots: the kernel reuses a completed
    lease event for the backlogged invocation its slot dispatches next,
    re-stamping ``tenant`` (the pool tier is sticky -- a pinned slot
    only ever serves its own tenant, a shared slot serves anyone).
    """

    __slots__ = ("tenant", "pool")

    def __init__(
        self,
        env: "Environment",
        callbacks: Any,
        value: Any = None,
        tenant: int = 0,
        pool: int = 0,
    ) -> None:
        self.env = env
        self.callbacks = callbacks
        self._value = value
        self._ok = True
        self._defused = False
        self.tenant = tenant
        self.pool = pool


class ConditionValue:
    """Ordered mapping from source events to their values.

    Returned by :class:`AllOf` / :class:`AnyOf`; supports both mapping
    access keyed by the original events and ``.values()`` in trigger
    order, which is what most call sites use.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(repr(event))
        return event._value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __len__(self) -> int:
        return len(self.events)

    def keys(self) -> list[Event]:
        return list(self.events)

    def values(self) -> list[Any]:
        return [e._value for e in self.events]

    def todict(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events}

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Composite event over a set of sub-events.

    *evaluate* decides, given (events, number_processed), whether the
    condition holds.  Failure of any sub-event fails the condition.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("all events must share one environment")

        # Immediately evaluate in case the condition is trivially met
        # (e.g. AllOf over an empty list).
        if self._evaluate(self._events, 0):
            self.succeed(self._build_value())
            return

        for event in self._events:
            event.add_callback(self._check)

    def _build_value(self) -> ConditionValue:
        value = ConditionValue()
        for event in self._events:
            if event.processed and event._ok:
                value.events.append(event)
        return value

    def _check(self, event: Event) -> None:
        if self.triggered:
            # Late arrivals after the condition resolved: a failure must
            # still be defused by whoever handles it downstream; mark it
            # handled because the condition consumed it.
            if not event._ok:
                event.defuse()
            return
        self._count += 1
        if not event._ok:
            event.defuse()
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._build_value())


class AllOf(Condition):
    """Triggers once *all* sub-events have triggered successfully."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda evts, count: count >= len(evts), events)


class AnyOf(Condition):
    """Triggers once *any* sub-event has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        events = list(events)
        if not events:
            raise ValueError("AnyOf over no events would never trigger")
        super().__init__(env, lambda evts, count: count >= 1, events)
