"""Shared-resource primitives: Resource, Store, FilterStore, Container.

These model contended entities -- CPU cores, NIC pipelines, link
serialization, bounded queues.  The mechanics follow the classic
put/get-event design: a request is itself an event that triggers once
the resource can satisfy it, and pending requests are served FIFO
(deterministically).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment


class _ResourceEvent(Event):
    """Base for put/get events; supports ``with`` for auto-cancel."""

    __slots__ = ("resource",)

    def __init__(self, resource: "_BaseResource") -> None:
        super().__init__(resource.env)
        self.resource = resource

    def cancel(self) -> None:
        """Withdraw an untriggered request from the waiting queue."""
        if not self.triggered:
            self._unenqueue()

    def _unenqueue(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def __enter__(self) -> "_ResourceEvent":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.cancel()


class _BaseResource:
    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._put_waiters: list[Event] = []
        self._get_waiters: list[Event] = []

    def _dispatch(self) -> None:
        """Serve as many queued requests as currently possible."""
        progress = True
        while progress:
            progress = False
            for waiter in list(self._put_waiters):
                if waiter.triggered:
                    self._put_waiters.remove(waiter)
                    continue
                if self._do_put(waiter):
                    self._put_waiters.remove(waiter)
                    progress = True
            for waiter in list(self._get_waiters):
                if waiter.triggered:
                    self._get_waiters.remove(waiter)
                    continue
                if self._do_get(waiter):
                    self._get_waiters.remove(waiter)
                    progress = True

    def _do_put(self, event: Event) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _do_get(self, event: Event) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Resource: capacity-limited usage slots (cores, connection slots, ...)
# ---------------------------------------------------------------------------


class Request(_ResourceEvent):
    """A claim on one slot of a :class:`Resource`."""

    __slots__ = ()

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource)
        resource._put_waiters.append(self)
        resource._dispatch()

    def _unenqueue(self) -> None:
        if self in self.resource._put_waiters:
            self.resource._put_waiters.remove(self)

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if self.triggered:
            self.resource.release(self)  # type: ignore[attr-defined]
        else:
            self.cancel()


class Resource(_BaseResource):
    """*capacity* interchangeable usage slots served FIFO."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        super().__init__(env)
        self.capacity = capacity
        self.users: list[Request] = []

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    @property
    def queue(self) -> list[Event]:
        """Pending (unserved) requests."""
        return list(self._put_waiters)

    def request(self) -> Request:
        return Request(self)

    def release(self, request: Request) -> None:
        """Free the slot held by *request* (no-op if not held)."""
        try:
            self.users.remove(request)
        except ValueError:
            return
        self._dispatch()

    def _do_put(self, event: Event) -> bool:
        if len(self.users) < self.capacity:
            self.users.append(event)  # type: ignore[arg-type]
            event.succeed()
            return True
        return False

    def _do_get(self, event: Event) -> bool:  # pragma: no cover - unused
        return False


# ---------------------------------------------------------------------------
# Store: FIFO queue of Python objects
# ---------------------------------------------------------------------------


class StorePut(_ResourceEvent):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store)
        self.item = item
        store._put_waiters.append(self)
        store._dispatch()

    def _unenqueue(self) -> None:
        if self in self.resource._put_waiters:
            self.resource._put_waiters.remove(self)


class StoreGet(_ResourceEvent):
    __slots__ = ()

    def __init__(self, store: "Store") -> None:
        super().__init__(store)
        store._get_waiters.append(self)
        store._dispatch()

    def _unenqueue(self) -> None:
        if self in self.resource._get_waiters:
            self.resource._get_waiters.remove(self)


class Store(_BaseResource):
    """A FIFO buffer of items with optional bounded capacity."""

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        super().__init__(env)
        self.capacity = capacity
        self.items: list[Any] = []

    def put(self, item: Any) -> StorePut:
        """Event that triggers once *item* is accepted."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Event that triggers with the oldest available item."""
        return StoreGet(self)

    def _do_put(self, event: StorePut) -> bool:  # type: ignore[override]
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:  # type: ignore[override]
        if self.items:
            event.succeed(self.items.pop(0))
            return True
        return False


class FilterStoreGet(StoreGet):
    __slots__ = ("predicate",)

    def __init__(self, store: "FilterStore", predicate: Callable[[Any], bool]) -> None:
        self.predicate = predicate
        super().__init__(store)


class FilterStore(Store):
    """A Store whose ``get`` can select by predicate."""

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> FilterStoreGet:  # type: ignore[override]
        return FilterStoreGet(self, predicate or (lambda item: True))

    def _do_get(self, event: StoreGet) -> bool:  # type: ignore[override]
        predicate = getattr(event, "predicate", lambda item: True)
        for index, item in enumerate(self.items):
            if predicate(item):
                del self.items[index]
                event.succeed(item)
                return True
        return False


# ---------------------------------------------------------------------------
# Container: continuous/discrete quantity (memory bytes, tokens)
# ---------------------------------------------------------------------------


class ContainerPut(_ResourceEvent):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: int) -> None:
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container)
        self.amount = amount
        container._put_waiters.append(self)
        container._dispatch()

    def _unenqueue(self) -> None:
        if self in self.resource._put_waiters:
            self.resource._put_waiters.remove(self)


class ContainerGet(_ResourceEvent):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: int) -> None:
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container)
        self.amount = amount
        container._get_waiters.append(self)
        container._dispatch()

    def _unenqueue(self) -> None:
        if self in self.resource._get_waiters:
            self.resource._get_waiters.remove(self)


class Container(_BaseResource):
    """A homogeneous quantity with bounded level (e.g. node memory)."""

    def __init__(self, env: "Environment", capacity: float = float("inf"), init: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if init < 0 or init > capacity:
            raise ValueError("init must be within [0, capacity]")
        super().__init__(env)
        self.capacity = capacity
        self._level = init

    @property
    def level(self) -> int:
        return self._level

    def put(self, amount: int) -> ContainerPut:
        return ContainerPut(self, amount)

    def get(self, amount: int) -> ContainerGet:
        return ContainerGet(self, amount)

    def _do_put(self, event: ContainerPut) -> bool:  # type: ignore[override]
        if self._level + event.amount <= self.capacity:
            self._level += event.amount
            event.succeed()
            return True
        return False

    def _do_get(self, event: ContainerGet) -> bool:  # type: ignore[override]
        if self._level >= event.amount:
            self._level -= event.amount
            event.succeed()
            return True
        return False
