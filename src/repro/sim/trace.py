"""Lightweight measurement helpers used across benchmarks.

``Recorder`` collects named samples in virtual time; ``Span`` measures
elapsed virtual time around a block of process steps.  These are plain
data collectors -- statistics live in :mod:`repro.analysis.stats`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment


@dataclass
class Sample:
    """One timestamped measurement."""

    time: int
    value: float


class Recorder:
    """Collects named series of (virtual time, value) samples."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._series: dict[str, list[Sample]] = defaultdict(list)

    def record(self, name: str, value: float) -> None:
        self._series[name].append(Sample(self.env.now, value))

    def values(self, name: str) -> list[float]:
        return [sample.value for sample in self._series[name]]

    def samples(self, name: str) -> list[Sample]:
        return list(self._series[name])

    def series_names(self) -> list[str]:
        return sorted(self._series)

    def clear(self, name: Optional[str] = None) -> None:
        if name is None:
            self._series.clear()
        else:
            self._series.pop(name, None)


@dataclass
class Span:
    """Measures elapsed virtual time: ``span.start(); ...; span.stop()``."""

    env: "Environment"
    started_at: Optional[int] = None
    elapsed: int = 0
    laps: list[int] = field(default_factory=list)

    def start(self) -> "Span":
        self.started_at = self.env.now
        return self

    def stop(self) -> int:
        if self.started_at is None:
            raise RuntimeError("span was never started")
        lap = self.env.now - self.started_at
        self.started_at = None
        self.elapsed += lap
        self.laps.append(lap)
        return lap
