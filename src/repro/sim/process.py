"""Generator-based simulated processes.

A process wraps a Python generator.  Each ``yield <event>`` suspends the
process until the event is processed; the event's value becomes the
result of the yield expression, and a failed event has its exception
thrown into the generator at the yield point.  A process is itself an
event that triggers when the generator returns (value = return value) or
raises (failure).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import PENDING, URGENT, Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment

ProcessGenerator = Generator[Event, Any, Any]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        return self.args[0]


# Alias kept for call sites that want to make "this is the sim-level
# interrupt, not the builtin" explicit.
InterruptedError_ = Interrupt


class _Initialize(Event):
    """Immediate, urgent event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks = [process._resume_cb]
        env.schedule(self, priority=URGENT)


class _Interruption(Event):
    """Immediate, urgent event delivering an :class:`Interrupt`."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        if process.triggered:
            raise RuntimeError("cannot interrupt a terminated process")
        if process is process.env.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.process = process
        self.callbacks = [self._deliver]
        process.env.schedule(self, priority=URGENT)

    def _deliver(self, event: Event) -> None:
        process = self.process
        if process.triggered:
            return  # terminated in the meantime; drop the interrupt
        # Unsubscribe from whatever the process was waiting on so the
        # original event does not also resume it later.  Cancellation is
        # lazy: an abandoned Timeout stays in the heap, is processed as
        # a no-op at its deadline, and is then recycled into the pool.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume_cb)
            except ValueError:
                pass
        process._resume(self)


class Process(Event):
    """A running simulated activity.

    Yields inside the wrapped generator suspend on events.  The process
    triggers when the generator finishes.
    """

    __slots__ = ("_generator", "_gen_send", "_target", "name", "_resume_cb")

    def __init__(self, env: "Environment", generator: ProcessGenerator, name: Optional[str] = None) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        # Bind the resume callback and the generator's send once;
        # creating a fresh bound method per suspension is measurable
        # at millions of events.
        self._gen_send = generator.send
        self._resume_cb = self._resume
        self._target: Optional[Event] = _Initialize(env, self)
        self.name = name or getattr(generator, "__name__", "process")

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        _Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        while True:
            try:
                if event._ok:
                    next_target = self._gen_send(event._value)
                else:
                    # The exception is being delivered; it is handled as
                    # far as the kernel is concerned.
                    event._defused = True
                    exc = event._value
                    if isinstance(exc, BaseException):
                        next_target = self._generator.throw(exc)
                    else:  # pragma: no cover - defensive
                        next_target = self._generator.throw(RuntimeError(repr(exc)))
            except StopIteration as stop:
                env._active_process = None
                self._target = None
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                return
            except BaseException as error:
                env._active_process = None
                self._target = None
                self._ok = False
                self._value = error
                env.schedule(self)
                return

            if not isinstance(next_target, Event):
                env._active_process = None
                bad = RuntimeError(
                    f"process {self.name!r} yielded a non-event: {next_target!r}"
                )
                try:
                    self._generator.throw(bad)
                except StopIteration as stop:
                    self._target = None
                    self._ok = True
                    self._value = stop.value
                    env.schedule(self)
                    return
                except BaseException as error:
                    self._target = None
                    self._ok = False
                    self._value = error
                    env.schedule(self)
                    return
                # Generator swallowed the error and yielded again -- loop.
                event = _nullevent(env)
                continue

            if next_target.callbacks is not None:
                # Event not yet processed: subscribe and suspend.
                next_target.callbacks.append(self._resume_cb)
                self._target = next_target
                env._active_process = None
                return
            # Already-processed event: resume immediately with its value.
            event = next_target

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "finished"
        return f"<Process {self.name} ({state})>"


def _nullevent(env: "Environment") -> Event:
    event = Event(env)
    event._ok = True
    event._value = None
    return event
