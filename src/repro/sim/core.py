"""The event loop: scheduling queue and virtual clock.

Fast-path notes
---------------
The kernel is the innermost loop of every experiment in this repo, so
it trades a little generality for per-event cost:

* ``run()`` inlines the event-processing loop instead of calling
  :meth:`step` per event (the method-call and exception-frame overhead
  is measurable at millions of events); :meth:`step` remains the
  single-event API and behaves identically.
* Processed :class:`Timeout` instances are recycled through a free
  list (``timeout()`` pops from the pool instead of allocating) -- but
  only when ``sys.getrefcount`` proves nobody else still holds the
  object, so user code that keeps a timeout around and inspects
  ``.value`` later is never handed a reincarnated event.
* Cancellation is lazy: an interrupted process merely unsubscribes its
  callback; the abandoned timeout stays in the heap, is processed as a
  no-op at its original deadline, and is then recycled.  No heap
  surgery, O(1) per cancellation.

None of this changes simulated results: scheduling order, tie-breaking
and virtual timestamps are bit-identical to the straightforward loop.
"""

from __future__ import annotations

import sys
from heapq import heappop, heappush
from itertools import count, islice, repeat
from typing import Any, Iterable, Optional, Union

from repro.sim.events import NORMAL, AllOf, AnyOf, BatchEvent, Event, Timeout
from repro.sim.process import Process, ProcessGenerator

#: Upper bound on the Timeout free list; beyond this, processed
#: timeouts are simply dropped for the GC.
_TIMEOUT_POOL_MAX = 1_024


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at an event."""

    @classmethod
    def callback(cls, event: Event) -> None:
        if event._ok:
            raise cls(event._value)
        # Propagate the failure out of run().
        event._defused = True
        exc = event._value
        raise exc


class EmptySchedule(Exception):
    """The event queue ran dry."""


class Environment:
    """Execution environment: virtual clock plus a priority event queue.

    Time is integer nanoseconds.  Determinism: ties at equal (time,
    priority) break on insertion order via a monotonically increasing
    sequence number, so runs are exactly reproducible.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_eid",
        "_active_process",
        "events_processed",
        "_timeout_pool",
        "_timeout_pool_appends",
    )

    def __init__(self, initial_time: int = 0) -> None:
        self._now = int(initial_time)
        self._queue: list[tuple[int, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        #: Total events processed (cheap instrumentation).
        self.events_processed = 0
        #: Free list of processed, unreferenced Timeout objects.
        self._timeout_pool: list[Timeout] = []
        #: Total timeouts ever recycled into the pool.
        self._timeout_pool_appends = 0

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    @property
    def timeout_pool_hits(self) -> int:
        """Allocations avoided by recycling pooled timeouts.

        Derived (appends minus what is still pooled) so the hot
        ``timeout()`` path needs no per-call counter update.
        """
        return self._timeout_pool_appends - len(self._timeout_pool)

    # -- scheduling ----------------------------------------------------

    def schedule(self, event: Event, delay: int = 0, priority: int = NORMAL) -> None:
        """Queue *event* to be processed *delay* ns from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        heappush(self._queue, (self._now + int(delay), priority, next(self._eid), event))

    def schedule_timeout(self, event: Event, delay: int) -> None:
        """Fast-path scheduling for pre-validated, NORMAL-priority events.

        Skips the negative-delay check and priority plumbing of
        :meth:`schedule`; the caller guarantees ``delay >= 0`` (the
        :class:`Timeout` constructor and :meth:`timeout` already do).
        Scheduling order is identical to :meth:`schedule`.
        """
        heappush(self._queue, (self._now + delay, NORMAL, next(self._eid), event))

    def reserve_eids(self, n: int) -> int:
        """Atomically allocate *n* consecutive entry ids; return the first.

        The ordering contract ties at equal ``(when, priority)`` break on
        these ids, so a vectorized scheduler (the lease lane's slab
        re-arm) can only match per-event execution if it hands out the
        *same* ids the scalar path would: one per re-arm, in pop order.
        This helper advances the shared counter by ``n`` in one step so
        the caller can assign ``base + arange(n)`` to a whole slab.

        Rebinds ``_eid``: callers must never cache the counter object or
        its bound ``__next__`` across a ``reserve_eids`` call.
        """
        if n < 1:
            raise ValueError(f"reserve_eids needs n >= 1, got {n}")
        base = next(self._eid)
        if n > 1:
            self._eid = count(base + n)
        return base

    def schedule_batch(
        self, times: Any, callback: Any, priority: int = NORMAL, cls: type = BatchEvent
    ) -> list[Event]:
        """Admit a whole chunk of events at *priority* in one call.

        *times* is a non-decreasing sequence of absolute deadlines (a
        ``numpy.int64`` array straight from :mod:`repro.sim.arrivals`,
        or any int sequence), each ``>= now``.  One :class:`BatchEvent`
        is created per deadline, all sharing a single ``(callback,)``
        tuple, and entry ids are allocated in sequence order -- so the
        resulting pop order is exactly what per-event
        ``schedule_timeout`` calls in the same order would produce.

        *callback* may also be a pre-built one-callback dispatch
        descriptor (a tuple): it is then shared as-is across the whole
        chunk, letting a fused kernel recognize the admitted events by
        descriptor identity.

        *cls* swaps the admitted event class for a BatchEvent subclass
        whose constructor accepts ``(env, callbacks)`` -- the
        multi-tenant kernel admits :class:`~repro.sim.events.
        TenantEvent` chunks so a dispatched arrival can be reused as
        its own pool-tagged lease timer.

        This heap implementation exists as the correctness baseline;
        the timer wheel overrides it with a vectorized bucket sort.
        Returns the admitted events, in deadline order.
        """
        if getattr(times, "ndim", 1) != 1:
            raise ValueError(f"batch times must be 1-D, got shape {times.shape}")
        whens = times.tolist() if hasattr(times, "tolist") else [int(t) for t in times]
        if not whens:
            return []
        now = self._now
        if whens[0] < now:
            raise ValueError(f"batch deadline {whens[0]} is in the past (now={now})")
        if any(b < a for a, b in zip(whens, whens[1:])):
            raise ValueError("batch deadlines must be non-decreasing")
        shared = callback if callback.__class__ is tuple else (callback,)
        events = [cls(self, shared) for _ in whens]
        eids = islice(self._eid, len(whens))
        queue = self._queue
        if queue:
            push = heappush
            for entry in zip(whens, repeat(priority), eids, events):
                push(queue, entry)
        else:
            # A list sorted ascending satisfies the heap invariant
            # directly (parent index < child index), so an empty queue
            # takes the whole chunk as one extend.
            queue.extend(zip(whens, repeat(priority), eids, events))
        return events

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or ``None`` if none."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        """Process exactly one event."""
        try:
            when, _prio, _eid, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no more events") from None
        if when < self._now:  # pragma: no cover - guarded by schedule()
            raise RuntimeError("time went backwards")
        self._now = when
        self.events_processed += 1

        callbacks = event.callbacks
        assert callbacks is not None
        if callbacks.__class__ is tuple:
            # Persistent dispatch descriptor (see BatchEvent): exactly
            # one callback, never detached.
            callbacks[0](event)
        else:
            event.callbacks = None
            for callback in callbacks:
                callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise RuntimeError(f"event failed with non-exception {exc!r}")

        # Recycle the timeout when provably unreferenced: the only two
        # references left are our local and getrefcount's argument.
        # The _ok/_defused guard keeps the pool invariant that recycled
        # timeouts need no state reset beyond callbacks/delay/value.
        if (
            event.__class__ is Timeout
            and event._ok
            and not event._defused
            and len(self._timeout_pool) < _TIMEOUT_POOL_MAX
            and sys.getrefcount(event) == 2
        ):
            self._timeout_pool.append(event)  # type: ignore[arg-type]
            self._timeout_pool_appends += 1

    def run(self, until: Union[None, int, Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` -- run until the queue is empty;
        * an ``int`` -- run until virtual time reaches that value;
        * an :class:`Event` -- run until the event is processed and
          return its value (re-raising its exception on failure).
        """
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    # Already processed.
                    return until.value
                until.callbacks.append(StopSimulation.callback)
            else:
                at = int(until)
                if at < self._now:
                    raise ValueError(f"until={at} is in the past (now={self._now})")
                stop = Event(self)
                stop._ok = True
                stop._value = None
                # Priority below URGENT/NORMAL ordering: use a large
                # priority so all events at `at` run first.
                heappush(self._queue, (at, 1 << 30, next(self._eid), stop))
                stop.callbacks.append(StopSimulation.callback)

        # Inlined event loop: identical semantics to step()-in-a-loop,
        # with the heap, pool and counters bound to locals.
        queue = self._queue
        pool = self._timeout_pool
        pop = heappop
        getrefcount = sys.getrefcount
        timeout_cls = Timeout
        processed = 0
        pooled = 0
        try:
            while True:
                try:
                    when, _prio, _eid, event = pop(queue)
                except IndexError:
                    if isinstance(until, Event) and not until.triggered:
                        raise RuntimeError(
                            "simulation ran out of events before the awaited event triggered"
                        ) from None
                    return None
                self._now = when
                processed += 1

                callbacks = event.callbacks
                if callbacks.__class__ is tuple:
                    # Persistent dispatch descriptor (see BatchEvent):
                    # exactly one callback, never detached -- a re-armed
                    # event keeps its descriptor across schedulings.
                    callbacks[0](event)
                else:
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)

                if not event._ok and not event._defused:
                    exc = event._value
                    if isinstance(exc, BaseException):
                        raise exc
                    raise RuntimeError(f"event failed with non-exception {exc!r}")

                if (
                    event.__class__ is timeout_cls
                    and event._ok
                    and not event._defused
                    and len(pool) < _TIMEOUT_POOL_MAX
                    and getrefcount(event) == 2
                ):
                    pool.append(event)
                    pooled += 1
        except StopSimulation as stop:
            return stop.args[0]
        finally:
            self.events_processed += processed
            self._timeout_pool_appends += pooled

    # -- factories ------------------------------------------------------

    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Spawn a new process from *generator*."""
        return Process(self, generator, name=name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event triggering *delay* ns from now.

        Pops a recycled instance off the free list when one is
        available (see the module docstring) instead of allocating.
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            if type(delay) is not int:
                delay = int(delay)
            event: Timeout = pool.pop()
            # _ok is True and _defused False by the recycle guard in
            # run()/step(), so only callbacks/delay/value need resetting.
            event.callbacks = []
            event._delay = delay
            event._value = value
            heappush(self._queue, (self._now + delay, NORMAL, next(self._eid), event))
            return event
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def __repr__(self) -> str:
        return f"<Environment t={self._now}ns queued={len(self._queue)}>"
