"""The event loop: scheduling queue and virtual clock."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Iterable, Optional, Union

from repro.sim.events import NORMAL, AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessGenerator


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at an event."""

    @classmethod
    def callback(cls, event: Event) -> None:
        if event._ok:
            raise cls(event._value)
        # Propagate the failure out of run().
        event._defused = True
        exc = event._value
        raise exc


class EmptySchedule(Exception):
    """The event queue ran dry."""


class Environment:
    """Execution environment: virtual clock plus a priority event queue.

    Time is integer nanoseconds.  Determinism: ties at equal (time,
    priority) break on insertion order via a monotonically increasing
    sequence number, so runs are exactly reproducible.
    """

    def __init__(self, initial_time: int = 0) -> None:
        self._now = int(initial_time)
        self._queue: list[tuple[int, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        #: Total events processed (cheap instrumentation).
        self.events_processed = 0

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- scheduling ----------------------------------------------------

    def schedule(self, event: Event, delay: int = 0, priority: int = NORMAL) -> None:
        """Queue *event* to be processed *delay* ns from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        heapq.heappush(self._queue, (self._now + int(delay), priority, next(self._eid), event))

    def peek(self) -> int:
        """Time of the next scheduled event, or ``-1`` if none."""
        return self._queue[0][0] if self._queue else -1

    def step(self) -> None:
        """Process exactly one event."""
        try:
            when, _prio, _eid, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no more events") from None
        if when < self._now:  # pragma: no cover - guarded by schedule()
            raise RuntimeError("time went backwards")
        self._now = when
        self.events_processed += 1

        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise RuntimeError(f"event failed with non-exception {exc!r}")

    def run(self, until: Union[None, int, Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` -- run until the queue is empty;
        * an ``int`` -- run until virtual time reaches that value;
        * an :class:`Event` -- run until the event is processed and
          return its value (re-raising its exception on failure).
        """
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    # Already processed.
                    return until.value
                until.callbacks.append(StopSimulation.callback)
            else:
                at = int(until)
                if at < self._now:
                    raise ValueError(f"until={at} is in the past (now={self._now})")
                stop = Event(self)
                stop._ok = True
                stop._value = None
                # Priority below URGENT/NORMAL ordering: use a large
                # priority so all events at `at` run first.
                heapq.heappush(self._queue, (at, 1 << 30, next(self._eid), stop))
                stop.callbacks.append(StopSimulation.callback)

        try:
            while True:
                self.step()
        except StopSimulation as stop:
            return stop.args[0]
        except EmptySchedule:
            if isinstance(until, Event) and not until.triggered:
                raise RuntimeError(
                    "simulation ran out of events before the awaited event triggered"
                ) from None
            return None

    # -- factories ------------------------------------------------------

    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Spawn a new process from *generator*."""
        return Process(self, generator, name=name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event triggering *delay* ns from now."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def __repr__(self) -> str:
        return f"<Environment t={self._now}ns queued={len(self._queue)}>"
