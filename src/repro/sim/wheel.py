"""Hierarchical timer-wheel scheduler: the million-event fast path.

:class:`WheelEnvironment` replaces the single binary heap of
:class:`~repro.sim.core.Environment` with a two-level timer wheel plus
the original heap kept as far-future overflow:

* **Level 0** -- ``2**slot_bits`` slots of ``2**granularity_bits`` ns
  each (defaults: 4096 slots x 256 ns ~ a 1.05 ms horizon).  Scheduling
  an event is one ``list.append`` into the slot of its deadline --- no
  heap sift through a million pending entries.
* **Level 1** -- ``2**window_bits`` buckets, each covering one full
  level-0 span (default 1024 x 1.05 ms ~ 1.07 s).  A bucket cascades
  into level-0 slots exactly once, when the cursor enters its window.
* **Overflow heap** -- anything beyond the level-1 horizon (and any
  priority/irregular event far in the future) lands in the same
  ``heapq`` the base class uses, so pathological schedules degrade to
  the old behaviour instead of breaking.

The dominant fixed-delay timeouts of this codebase -- network hops,
poll intervals, retry backoffs (microseconds, level 0) and service
times and lease renewals (milliseconds, level 1) -- are all O(1)
appends here.

Ordering invariant
------------------
Event ordering is **bit-identical** to the heap scheduler: pops come in
ascending ``(when, priority, eid)`` order with the same monotonically
increasing ``eid`` tiebreak.  Every structure stores the same 4-tuples
the heap does; a slot is sorted (C timsort) once, when its turn comes,
and every pop compares the active slot's head against the spill and
overflow heads, so an entry can never jump the global order no matter
which structure it sits in.  ``tests/sim/test_wheel.py`` fuzzes this
equivalence against the heap scheduler across 50+ seeds.

Where entries live
------------------
``active``
    The sorted bucket currently being drained (cursor's slot), walked
    by index -- popping is O(1).
``spill``
    A small heap for events scheduled *into the active slot or earlier*
    (e.g. zero-delay wakeups) after the slot was sorted.  Always
    strictly earlier than every level-0/level-1 entry.
``slots0[i]`` / ``slots1[j]``
    Unsorted append-only buckets.  Two entries can share a physical
    bucket only if they share the same absolute slot/window number
    (the horizons guarantee it), so no lap-counting is needed.
``overflow``
    ``self._queue`` -- the inherited heap.

When the wheel runs completely dry the cursor re-anchors itself to the
current time on the next insert, so a schedule that went far-future
(overflow only) does not degrade every later insert to the heap.

Adaptive granularity (``granularity_bits="auto"``)
--------------------------------------------------
A fixed slot width must be hand-tuned per regime (256 ns suits the
microsecond RDMA harnesses, ~65 us the scale engine's millisecond
leases).  In auto mode the wheel watches counters its hot paths touch
anyway -- events drained, empty-slot probes, cascades, overflow inserts
-- and every ``_ADAPT_WINDOW`` drained events checks them against an
occupancy band.  Out of band, it *re-anchors*: at a quiescent cursor
boundary (active bucket drained, spill empty -- exactly ``_refill``'s
precondition) every pending entry is re-filed under a granularity
sized from the pending-deadline horizon.  Entries are geometry-free
``(when, priority, eid, event)`` tuples, so re-anchoring can never
change the pop order; the fuzz tests force re-anchors mid-workload and
still require bit-identical firing sequences.

Batch admission (``schedule_batch``)
------------------------------------
Pre-generated arrival chunks (:mod:`repro.sim.arrivals`) are admitted
in one vectorized pass: ``searchsorted`` splits the sorted deadlines
into spill/level-0/level-1/overflow segments and equal-slot runs land
with one ``extend`` per bucket, replacing ~2^16 per-event Python calls
per chunk.  Entry ids are allocated in sequence order and each batch
shares a single callbacks tuple, so results are identical to per-event
admission of the same stream while the admission cost all but
disappears from the profile.
"""

from __future__ import annotations

import sys
from heapq import heappop, heappush
from itertools import islice, repeat
from typing import Any, Optional, Union

import numpy as np

from repro import perf
from repro.sim.core import Environment, EmptySchedule, StopSimulation, _TIMEOUT_POOL_MAX
from repro.sim.events import NORMAL, BatchEvent, Event, Timeout

#: Priority used by ``run(until=<int>)`` stop markers (matches the base
#: class, which the ordering-equivalence tests rely on).
_STOP_PRIORITY = 1 << 30

#: Level-0 slot width used until the first adaptation when
#: ``granularity_bits="auto"`` (the wheel's all-round default).
_AUTO_INITIAL_BITS = 8
#: Ceiling for both auto-chosen and config-supplied granularities:
#: 2**40 ns slots (~18 min) is already absurdly coarse for this
#: simulator's nanosecond clock.
MAX_GRANULARITY_BITS = 40
#: Drained events between occupancy-band evaluations.
_ADAPT_WINDOW = 1 << 15
#: Back-off ceiling when the band says "bad" but no better geometry
#: exists (e.g. genuinely bimodal deadlines): evaluations get rarer
#: instead of burning O(pending) scans forever.
_ADAPT_WINDOW_MAX = 1 << 22
#: Too-coarse signal: average sort-on-drain bucket above this.
_ADAPT_BUCKET_MAX = 1 << 12
#: Too-sparse signal: more than this many empty-slot probes per
#: drained event.
_ADAPT_PROBE_FACTOR = 4
#: Fraction of :meth:`sample_occupancy` calls that actually compute and
#: publish (count-based decimation; the rest return ``None``), so
#: callers can sample on hot paths without measurable cost.
_SAMPLE_DECIMATION = 64


def validate_granularity_bits(value: Union[int, str]) -> Union[int, str]:
    """Validate a user-facing ``granularity_bits`` setting.

    Accepts ``"auto"`` (adaptive) or an int in ``[1, 40]``; anything
    else raises ``ValueError`` here, at the config/CLI boundary, rather
    than failing deep inside the wheel geometry.  (The wheel *class*
    still accepts ``granularity_bits=0`` directly -- 1 ns slots are a
    legitimate geometry for unit tests -- but no real scenario wants
    them, so the config surface starts at 1.)
    """
    if value == "auto":
        return value
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(
            f"granularity_bits must be 'auto' or an integer, got {value!r}"
        )
    if not 1 <= value <= MAX_GRANULARITY_BITS:
        raise ValueError(
            f"granularity_bits must be in [1, {MAX_GRANULARITY_BITS}] "
            f"(or 'auto'), got {value}"
        )
    return value


class WheelEnvironment(Environment):
    """Drop-in :class:`Environment` with a hierarchical timer wheel.

    Identical simulated results, different wall-clock complexity:
    scheduling is O(1) instead of O(log n) in the number of pending
    events, which is what makes million-invocation open-loop runs
    (~10^5..10^6 concurrently pending timers) routinely benchmarkable.
    See :mod:`repro.experiments.scale`.
    """

    __slots__ = (
        "_gbits",
        "_sbits0",
        "_mask0",
        "_smask0",
        "_mask1",
        "_slots0",
        "_slots1",
        "_cursor",
        "_active",
        "_ai",
        "_spill",
        "_l0_count",
        "_l1_count",
        "cascades",
        "overflow_inserts",
        "_adaptive",
        "_adapt_window",
        "_adapt_drained",
        "_adapt_refills",
        "_adapt_probes",
        "_adapt_cascaded",
        "_adapt_overflow_mark",
        "reanchors",
        "_sample_tick",
        "occupancy_samples",
    )

    def __init__(
        self,
        initial_time: int = 0,
        granularity_bits: Union[int, str] = 8,
        slot_bits: int = 12,
        window_bits: int = 10,
    ) -> None:
        super().__init__(initial_time)
        adaptive = granularity_bits == "auto"
        if adaptive:
            granularity_bits = _AUTO_INITIAL_BITS
        if (
            not isinstance(granularity_bits, int)
            or granularity_bits < 0
            or slot_bits < 1
            or window_bits < 1
        ):
            raise ValueError("wheel geometry bits must be positive")
        self._adaptive = adaptive
        self._adapt_window = _ADAPT_WINDOW
        self._adapt_drained = 0
        self._adapt_refills = 0
        self._adapt_probes = 0
        self._adapt_cascaded = 0
        self._adapt_overflow_mark = 0
        #: Granularity re-anchors performed by the adaptive controller.
        self.reanchors = 0
        self._sample_tick = 0
        #: sample_occupancy() calls that actually computed (not gated).
        self.occupancy_samples = 0
        self._gbits = granularity_bits
        self._sbits0 = slot_bits
        self._mask0 = (1 << slot_bits) - 1
        #: ``cursor & _smask0 == 0`` marks a level-1 window boundary.
        self._smask0 = self._mask0
        self._mask1 = (1 << window_bits) - 1
        self._slots0: list[list[tuple]] = [[] for _ in range(1 << slot_bits)]
        self._slots1: list[list[tuple]] = [[] for _ in range(1 << window_bits)]
        #: Absolute level-0 slot number of the slot being drained.
        self._cursor = initial_time >> granularity_bits
        self._active: list[tuple] = []
        self._ai = 0
        self._spill: list[tuple] = []
        self._l0_count = 0
        self._l1_count = 0
        #: Level-1 buckets cascaded into level 0 (lifetime).
        self.cascades = 0
        #: Entries that bypassed the wheel into the overflow heap.
        self.overflow_inserts = 0

    # -- scheduling ----------------------------------------------------

    def _insert(self, entry: tuple) -> None:
        """File *entry* into spill/level-0/level-1/overflow by deadline."""
        s0 = entry[0] >> self._gbits
        for _ in range(2):
            d0 = s0 - self._cursor
            if d0 <= 0:
                # Active slot or earlier (>= now by construction): the
                # spill heap merges with the sorted active bucket at pop.
                heappush(self._spill, entry)
                return
            if d0 <= self._mask0:
                self._slots0[s0 & self._mask0].append(entry)
                self._l0_count += 1
                return
            d1 = (s0 >> self._sbits0) - (self._cursor >> self._sbits0)
            if d1 <= self._mask1:
                self._slots1[(s0 >> self._sbits0) & self._mask1].append(entry)
                self._l1_count += 1
                return
            if (
                self._l0_count
                or self._l1_count
                or self._spill
                or self._ai < len(self._active)
                or self._cursor >= self._now >> self._gbits
            ):
                break
            # Wheel completely dry and the cursor far in the past
            # (overflow pops advance time without moving it): re-anchor
            # to now and classify once more.
            self._cursor = self._now >> self._gbits
        self.overflow_inserts += 1
        heappush(self._queue, entry)

    def schedule(self, event: Event, delay: int = 0, priority: int = NORMAL) -> None:
        """Queue *event* to be processed *delay* ns from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._insert((self._now + int(delay), priority, next(self._eid), event))

    def schedule_timeout(self, event: Event, delay: int) -> None:
        """Fast-path scheduling of pre-validated NORMAL-priority events.

        The two dominant destinations -- a level-0 slot ahead of the
        cursor, or the spill heap for same-slot-or-earlier deadlines --
        are classified inline; everything else (level 1, overflow,
        re-anchoring) falls through to :meth:`_insert`.  Both paths
        build identical entry tuples, so ordering is unaffected.
        """
        when = self._now + delay
        s0 = when >> self._gbits
        d0 = s0 - self._cursor
        if d0 > 0:
            if d0 <= self._mask0:
                self._slots0[s0 & self._mask0].append(
                    (when, NORMAL, next(self._eid), event)
                )
                self._l0_count += 1
                return
            self._insert((when, NORMAL, next(self._eid), event))
            return
        heappush(self._spill, (when, NORMAL, next(self._eid), event))

    def schedule_batch(self, times: Any, callback: Any) -> list[Event]:
        """Vectorized batch admission: bucket-sort a whole chunk at once.

        Same contract as the base class (non-decreasing absolute
        *times*, all ``>= now``; one shared-callback :class:`BatchEvent`
        per deadline, eids in sequence order), but instead of ~2^16
        per-event Python calls the chunk is classified in one numpy
        pass: ``searchsorted`` against the cursor finds the
        spill/level-0/level-1/overflow segment boundaries (the slot
        numbers are sorted because the times are), and contiguous
        equal-slot runs land in their buckets with one ``extend`` each.
        Pop order is identical to per-event admission of the same
        sequence because the entry tuples are.
        """
        arr = np.asarray(times, dtype=np.int64)
        n = int(arr.size)
        if not n:
            return []
        now = self._now
        if int(arr[0]) < now:
            raise ValueError(f"batch deadline {int(arr[0])} is in the past (now={now})")
        if n > 1 and bool((arr[1:] < arr[:-1]).any()):
            raise ValueError("batch deadlines must be non-decreasing")
        # Dry wheel + stale cursor: re-anchor first (mirrors _insert) so
        # an overflow-only past does not leak the chunk to the heap.
        if (
            self._cursor < now >> self._gbits
            and not (self._l0_count or self._l1_count or self._spill)
            and self._ai >= len(self._active)
        ):
            self._cursor = now >> self._gbits
        gbits = self._gbits
        sbits0 = self._sbits0
        cursor = self._cursor
        s0 = arr >> gbits
        shared = (callback,)
        events = [BatchEvent(self, shared) for _ in range(n)]
        entries = list(zip(arr.tolist(), repeat(NORMAL), islice(self._eid, n), events))
        # Segment boundaries over the sorted slot numbers:
        # s0 <= cursor                  -> spill
        # cursor < s0 <= cursor + mask0 -> level 0
        # within the level-1 horizon    -> level 1
        # beyond                        -> overflow heap
        i_spill = int(np.searchsorted(s0, cursor, side="right"))
        i_l0 = int(np.searchsorted(s0, cursor + self._mask0, side="right"))
        horizon_end = (((cursor >> sbits0) + self._mask1) + 1) << sbits0
        i_l1 = int(np.searchsorted(s0, horizon_end, side="left"))
        if i_spill:
            spill = self._spill
            for k in range(i_spill):
                heappush(spill, entries[k])
        if i_l0 > i_spill:
            seg = s0[i_spill:i_l0]
            slots0, mask0 = self._slots0, self._mask0
            starts = [0, *(np.flatnonzero(seg[1:] != seg[:-1]) + 1).tolist(), i_l0 - i_spill]
            for a, b in zip(starts, starts[1:]):
                slots0[int(seg[a]) & mask0].extend(entries[i_spill + a : i_spill + b])
            self._l0_count += i_l0 - i_spill
        if i_l1 > i_l0:
            seg = s0[i_l0:i_l1] >> sbits0
            slots1, mask1 = self._slots1, self._mask1
            starts = [0, *(np.flatnonzero(seg[1:] != seg[:-1]) + 1).tolist(), i_l1 - i_l0]
            for a, b in zip(starts, starts[1:]):
                slots1[int(seg[a]) & mask1].extend(entries[i_l0 + a : i_l0 + b])
            self._l1_count += i_l1 - i_l0
        if i_l1 < n:
            queue = self._queue
            for k in range(i_l1, n):
                heappush(queue, entries[k])
            self.overflow_inserts += n - i_l1
        return events

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Pooled timeout (see base class), scheduled through the wheel."""
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            if type(delay) is not int:
                delay = int(delay)
            event: Timeout = pool.pop()
            event.callbacks = []
            event._delay = delay
            event._value = value
            self.schedule_timeout(event, delay)
            return event
        return Timeout(self, delay, value)

    # -- dequeue -------------------------------------------------------

    def _cascade(self, window: int) -> None:
        """Scatter level-1 *window*'s bucket into level-0 slots."""
        index = window & self._mask1
        bucket = self._slots1[index]
        if not bucket:
            return
        self._slots1[index] = []
        self._l1_count -= len(bucket)
        self._l0_count += len(bucket)
        self.cascades += 1
        if self._adaptive:
            self._adapt_cascaded += len(bucket)
        gbits, mask0, slots0 = self._gbits, self._mask0, self._slots0
        for entry in bucket:
            slots0[(entry[0] >> gbits) & mask0].append(entry)

    def _refill(self) -> None:
        """Advance the cursor to the next occupied slot and sort it.

        Precondition: the active bucket is exhausted, the spill heap is
        empty and ``_l0_count + _l1_count > 0`` (so the scan provably
        terminates).  Cascades level-1 buckets at each window boundary
        it crosses; when level 0 is empty it jumps window-to-window
        instead of probing all 4096 slots.
        """
        c = self._cursor
        slots0, mask0, smask0 = self._slots0, self._mask0, self._smask0
        sbits0 = self._sbits0
        probes = 0
        while True:
            c += 1
            probes += 1
            if not c & smask0:
                self._cascade(c >> sbits0)
            bucket = slots0[c & mask0]
            if bucket:
                break
            if not self._l0_count:
                # Nothing in level 0: skip straight to the last slot of
                # this window so the next increment cascades the next one.
                c |= smask0
        self._cursor = c
        slots0[c & mask0] = []
        self._l0_count -= len(bucket)
        bucket.sort()
        self._active = bucket
        self._ai = 0
        if self._adaptive:
            self._adapt_drained += len(bucket)
            self._adapt_refills += 1
            self._adapt_probes += probes

    def _pop(self) -> tuple:
        """Remove and return the globally minimal ``(when, prio, eid,
        event)`` entry; raises ``IndexError`` when nothing is pending."""
        while True:
            active = self._active
            ai = self._ai
            if ai < len(active):
                entry = active[ai]
                spill = self._spill
                if spill and spill[0] < entry:
                    entry = spill[0]
                    overflow = self._queue
                    if overflow and overflow[0] < entry:
                        return heappop(overflow)
                    return heappop(spill)
                overflow = self._queue
                if overflow and overflow[0] < entry:
                    return heappop(overflow)
                self._ai = ai + 1
                # Drop the bucket's reference so the Timeout free list's
                # getrefcount guard sees the same counts as the heap path.
                active[ai] = None
                return entry
            spill = self._spill
            if spill:
                # Spill entries precede everything in level 0/1.
                entry = spill[0]
                overflow = self._queue
                if overflow and overflow[0] < entry:
                    return heappop(overflow)
                return heappop(spill)
            if not (self._l0_count or self._l1_count):
                return heappop(self._queue)
            if self._adaptive and self._adapt_drained >= self._adapt_window:
                # Quiescent cursor boundary (active drained, spill
                # empty): the only point where re-filing every pending
                # entry under a new granularity is safe and cheap to
                # reason about.  Loop back afterwards -- a re-anchor
                # may have moved everything into spill or overflow.
                self._maybe_reanchor()
                continue
            self._refill()

    # -- adaptive granularity ------------------------------------------

    def _maybe_reanchor(self) -> None:
        """Evaluate the occupancy band; re-anchor geometry if out of band.

        The band is judged from counters the hot paths already touch:
        *too fine* when most drained events took an extra hop (level-1
        cascade or overflow insert) because deadlines outlive level 0;
        *too sparse* when the cursor walks many empty slots per event;
        *too coarse* when the average sort-on-drain bucket is huge.
        Preconditions match :meth:`_refill`: active bucket exhausted and
        spill empty, so every pending entry has ``when >= now`` and
        reclassifies exactly as a fresh wheel would file it.
        """
        drained = self._adapt_drained
        refills = self._adapt_refills
        probes = self._adapt_probes
        cascaded = self._adapt_cascaded
        overflowed = self.overflow_inserts - self._adapt_overflow_mark
        self._adapt_drained = 0
        self._adapt_refills = 0
        self._adapt_probes = 0
        self._adapt_cascaded = 0
        self._adapt_overflow_mark = self.overflow_inserts
        too_fine = (cascaded + overflowed) * 2 > drained
        too_sparse = probes > drained * _ADAPT_PROBE_FACTOR
        too_coarse = bool(refills) and drained > refills * _ADAPT_BUCKET_MAX
        if not (too_fine or too_sparse or too_coarse):
            self._adapt_window = _ADAPT_WINDOW
            return
        target = self._target_bits()
        if target == self._gbits:
            # Out of band but no better single granularity exists (e.g.
            # genuinely bimodal deadlines): back off exponentially so
            # the O(pending) target scan stays amortized away.
            self._adapt_window = min(self._adapt_window * 2, _ADAPT_WINDOW_MAX)
            return
        self._reanchor(target)
        self._adapt_window = _ADAPT_WINDOW

    def _target_bits(self) -> int:
        """Granularity fitting the *current* pending-deadline horizon.

        Sizes slots so the bulk (90th percentile) of pending horizons
        fits inside level 0, but never finer than the mean spacing
        between deadlines -- the two failure modes the band detects.
        """
        whens: list[int] = []
        extend = whens.extend
        if self._l0_count:
            for bucket in self._slots0:
                if bucket:
                    extend(entry[0] for entry in bucket)
        if self._l1_count:
            for bucket in self._slots1:
                if bucket:
                    extend(entry[0] for entry in bucket)
        extend(entry[0] for entry in self._queue)
        if not whens:
            return self._gbits
        horizons = np.asarray(whens, dtype=np.int64) - self._now
        span = int(np.quantile(horizons, 0.90))
        if span < 1:
            span = 1
        g_span = span.bit_length() - self._sbits0
        spacing = span // len(whens)
        g_density = spacing.bit_length()
        target = max(g_span, g_density, 0)
        return min(target, MAX_GRANULARITY_BITS)

    def _reanchor(self, bits: int) -> None:
        """Re-anchor the wheel at granularity *bits*, preserving order.

        Entries are geometry-independent ``(when, priority, eid, event)``
        tuples, so re-filing them under new slot boundaries cannot
        change the pop order -- only which O(1) structure serves them.
        The overflow heap is drained too, so entries that overflowed
        only because the old geometry was too fine migrate back into
        the wheel.  ``_queue`` and ``_spill`` are mutated in place,
        never rebound: the inlined run loop holds local references.
        """
        entries: list[tuple] = []
        extend = entries.extend
        slots0 = self._slots0
        for index in range(len(slots0)):
            if slots0[index]:
                extend(slots0[index])
                slots0[index] = []
        slots1 = self._slots1
        for index in range(len(slots1)):
            if slots1[index]:
                extend(slots1[index])
                slots1[index] = []
        extend(self._queue)
        self._queue.clear()
        self._l0_count = 0
        self._l1_count = 0
        self._gbits = bits
        self._cursor = self._now >> bits
        overflow_mark = self.overflow_inserts
        insert = self._insert
        for entry in entries:
            insert(entry)
        # Re-filing is not a new scheduling decision: keep the lifetime
        # overflow counter meaning "entries scheduled beyond the horizon".
        self.overflow_inserts = overflow_mark
        self._adapt_overflow_mark = overflow_mark
        self.reanchors += 1
        if perf.enabled:
            perf.counters.wheel_reanchors += 1

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or ``None`` if none.

        O(pending) -- it scans the wheel without draining it.  Fine for
        the occasional caller; the run loop never uses it.
        """
        best: Optional[tuple] = None
        if self._ai < len(self._active):
            best = self._active[self._ai]
        for heap in (self._spill, self._queue):
            if heap and (best is None or heap[0] < best):
                best = heap[0]
        if self._l0_count:
            for bucket in self._slots0:
                for entry in bucket:
                    if best is None or entry < best:
                        best = entry
        if self._l1_count:
            for bucket in self._slots1:
                for entry in bucket:
                    if best is None or entry < best:
                        best = entry
        return best[0] if best is not None else None

    def pending_events(self) -> int:
        """Total events currently scheduled (all structures)."""
        return (
            len(self._active)
            - self._ai
            + len(self._spill)
            + self._l0_count
            + self._l1_count
            + len(self._queue)
        )

    def occupancy(self) -> dict[str, int]:
        """Wheel-vs-heap residency right now, plus lifetime counters.

        ``wheel`` counts entries the O(1) paths own (active + spill +
        both levels); ``heap`` is the overflow residue.  The scale
        bench samples this and publishes the peaks through
        :mod:`repro.perf` (``wheel_entries`` / ``heap_entries``).
        """
        wheel = len(self._active) - self._ai + len(self._spill)
        return {
            "wheel": wheel + self._l0_count + self._l1_count,
            "active": len(self._active) - self._ai,
            "spill": len(self._spill),
            "level0": self._l0_count,
            "level1": self._l1_count,
            "heap": len(self._queue),
            "cascades": self.cascades,
            "overflow_inserts": self.overflow_inserts,
            "reanchors": self.reanchors,
            "granularity_bits": self._gbits,
        }

    def sample_occupancy(self, force: bool = False) -> Optional[dict[str, int]]:
        """Decimated :meth:`occupancy`, also published to :mod:`repro.perf`.

        Only every ``_SAMPLE_DECIMATION``-th call (or a ``force=True``
        one) computes anything; the rest bump one counter and return
        ``None``.  Callers on hot paths -- the scale drivers sample per
        completion batch -- therefore pay a fixed two-attribute cost
        per call, well under 1% of event throughput, while peaks still
        get tracked.  While counting is enabled,
        ``perf.counters.wheel_entries`` / ``heap_entries`` track the
        *peak* sampled residency and the cascade/overflow/re-anchor
        lifetime totals are brought up to date.
        """
        tick = self._sample_tick + 1
        self._sample_tick = tick
        if not force and tick % _SAMPLE_DECIMATION:
            return None
        self.occupancy_samples += 1
        occupancy = self.occupancy()
        if perf.enabled:
            counters = perf.counters
            if occupancy["wheel"] > counters.wheel_entries:
                counters.wheel_entries = occupancy["wheel"]
            if occupancy["heap"] > counters.heap_entries:
                counters.heap_entries = occupancy["heap"]
            counters.wheel_cascades = max(counters.wheel_cascades, self.cascades)
            counters.wheel_overflow_inserts = max(
                counters.wheel_overflow_inserts, self.overflow_inserts
            )
        return occupancy

    # -- event loop ----------------------------------------------------

    def step(self) -> None:
        """Process exactly one event (same semantics as the base class)."""
        try:
            when, _prio, _eid, event = self._pop()
        except IndexError:
            raise EmptySchedule("no more events") from None
        self._now = when
        self.events_processed += 1

        callbacks = event.callbacks
        assert callbacks is not None
        if callbacks.__class__ is tuple:
            # Persistent dispatch descriptor (see BatchEvent): exactly
            # one callback, never detached.
            callbacks[0](event)
        else:
            event.callbacks = None
            for callback in callbacks:
                callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise RuntimeError(f"event failed with non-exception {exc!r}")

        if (
            event.__class__ is Timeout
            and event._ok
            and not event._defused
            and len(self._timeout_pool) < _TIMEOUT_POOL_MAX
            and sys.getrefcount(event) == 2
        ):
            self._timeout_pool.append(event)  # type: ignore[arg-type]
            self._timeout_pool_appends += 1

    def run(self, until: Union[None, int, Event] = None) -> Any:
        """Run the simulation (same contract as the base class)."""
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    return until.value
                until.callbacks.append(StopSimulation.callback)
            else:
                at = int(until)
                if at < self._now:
                    raise ValueError(f"until={at} is in the past (now={self._now})")
                stop = Event(self)
                stop._ok = True
                stop._value = None
                self._insert((at, _STOP_PRIORITY, next(self._eid), stop))
                stop.callbacks.append(StopSimulation.callback)

        # Inlined loop mirroring Environment.run; only the dequeue
        # differs.  The common case of _pop -- next entry comes from the
        # sorted active bucket -- is inlined here because a method call
        # per event is measurable at millions of events; spill and
        # overflow are bound once (heappush/heappop mutate them in
        # place, only _active changes identity, at refill).
        #
        # `active`/`ai` are carried as locals across iterations and only
        # written back to self before the slow-path _pop() (nothing a
        # callback can do rebinds _active or advances _ai: inserts at or
        # before the cursor go to the spill heap, refill/re-anchor only
        # run inside _pop).  A callback reading self._ai mid-walk -- the
        # dry-wheel guards in _insert/schedule_batch, or an occupancy
        # sample -- sees a value that lags by at most one bucket; both
        # readers treat that conservatively (the guards skip an optional
        # cursor re-anchor and file via the overflow heap, which pops in
        # the same global order).
        pop = self._pop
        spill = self._spill
        overflow = self._queue
        pool = self._timeout_pool
        getrefcount = sys.getrefcount
        timeout_cls = Timeout
        processed = 0
        pooled = 0
        active = self._active
        ai = self._ai
        # The active bucket's length is fixed for the whole walk
        # (drained entries are overwritten with None, never removed;
        # callbacks cannot touch the bucket -- it was unlinked from
        # _slots0 at refill), so it is cached instead of re-measured
        # every event.
        alen = len(active)
        try:
            while True:
                if ai < alen:
                    entry = active[ai]
                    if spill and spill[0] < entry:
                        head = spill[0]
                        if overflow and overflow[0] < head:
                            entry = heappop(overflow)
                        else:
                            entry = heappop(spill)
                    elif overflow and overflow[0] < entry:
                        entry = heappop(overflow)
                    else:
                        active[ai] = None
                        ai += 1
                else:
                    self._ai = ai
                    try:
                        entry = pop()
                    except IndexError:
                        if isinstance(until, Event) and not until.triggered:
                            raise RuntimeError(
                                "simulation ran out of events before the awaited event triggered"
                            ) from None
                        return None
                    active = self._active
                    ai = self._ai
                    alen = len(active)
                event_when = entry[0]
                event = entry[3]
                # Drop the tuple so the pool's getrefcount guard sees
                # the same counts as the heap loop (which unpacks and
                # releases its entry before the check).
                entry = None
                self._now = event_when
                processed += 1

                callbacks = event.callbacks
                if callbacks.__class__ is tuple:
                    # Persistent dispatch descriptor (see BatchEvent):
                    # exactly one callback, never detached -- a re-armed
                    # lease timer keeps its descriptor across millions
                    # of schedulings with zero callback-slot traffic.
                    callbacks[0](event)
                else:
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)

                if not event._ok and not event._defused:
                    exc = event._value
                    if isinstance(exc, BaseException):
                        raise exc
                    raise RuntimeError(f"event failed with non-exception {exc!r}")

                # `callbacks is None` pre-filters pooling: a re-armed
                # lease timeout has fresh callbacks (and a wheel entry
                # reference), so the common re-arm case exits on one
                # load instead of reaching getrefcount.
                if (
                    event.callbacks is None
                    and event.__class__ is timeout_cls
                    and event._ok
                    and not event._defused
                    and len(pool) < _TIMEOUT_POOL_MAX
                    and getrefcount(event) == 2
                ):
                    pool.append(event)
                    pooled += 1
        except StopSimulation as stop:
            return stop.args[0]
        finally:
            self._ai = ai
            self.events_processed += processed
            self._timeout_pool_appends += pooled

    def __repr__(self) -> str:
        return f"<WheelEnvironment t={self._now}ns queued={self.pending_events()}>"


#: Registry used by :func:`new_environment`.
SCHEDULERS = ("heap", "wheel")


def new_environment(scheduler: Optional[str] = None, initial_time: int = 0, **kwargs: Any):
    """Build an :class:`Environment` with the requested scheduler.

    ``scheduler`` is ``"heap"`` (the binary-heap baseline, default),
    ``"wheel"`` (hierarchical timer wheel) or ``None`` for the default.
    Extra keyword arguments configure the wheel geometry.
    """
    scheduler = scheduler or "heap"
    if scheduler == "heap":
        if kwargs:
            raise ValueError(f"heap scheduler takes no options, got {sorted(kwargs)}")
        return Environment(initial_time)
    if scheduler == "wheel":
        return WheelEnvironment(initial_time, **kwargs)
    raise ValueError(f"unknown scheduler {scheduler!r} (use one of {SCHEDULERS})")
