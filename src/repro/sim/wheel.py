"""Hierarchical timer-wheel scheduler: the million-event fast path.

:class:`WheelEnvironment` replaces the single binary heap of
:class:`~repro.sim.core.Environment` with a two-level timer wheel plus
the original heap kept as far-future overflow:

* **Level 0** -- ``2**slot_bits`` slots of ``2**granularity_bits`` ns
  each (defaults: 4096 slots x 256 ns ~ a 1.05 ms horizon).  Scheduling
  an event is one ``list.append`` into the slot of its deadline --- no
  heap sift through a million pending entries.
* **Level 1** -- ``2**window_bits`` buckets, each covering one full
  level-0 span (default 1024 x 1.05 ms ~ 1.07 s).  A bucket cascades
  into level-0 slots exactly once, when the cursor enters its window.
* **Overflow heap** -- anything beyond the level-1 horizon (and any
  priority/irregular event far in the future) lands in the same
  ``heapq`` the base class uses, so pathological schedules degrade to
  the old behaviour instead of breaking.

The dominant fixed-delay timeouts of this codebase -- network hops,
poll intervals, retry backoffs (microseconds, level 0) and service
times and lease renewals (milliseconds, level 1) -- are all O(1)
appends here.

Ordering invariant
------------------
Event ordering is **bit-identical** to the heap scheduler: pops come in
ascending ``(when, priority, eid)`` order with the same monotonically
increasing ``eid`` tiebreak.  Every structure stores the same 4-tuples
the heap does; a slot is sorted (C timsort) once, when its turn comes,
and every pop compares the active slot's head against the spill and
overflow heads, so an entry can never jump the global order no matter
which structure it sits in.  ``tests/sim/test_wheel.py`` fuzzes this
equivalence against the heap scheduler across 50+ seeds.

Where entries live
------------------
``active``
    The sorted bucket currently being drained (cursor's slot), walked
    by index -- popping is O(1).
``spill``
    A small heap for events scheduled *into the active slot or earlier*
    (e.g. zero-delay wakeups) after the slot was sorted.  Always
    strictly earlier than every level-0/level-1 entry.
``slots0[i]`` / ``slots1[j]``
    Unsorted append-only buckets.  Two entries can share a physical
    bucket only if they share the same absolute slot/window number
    (the horizons guarantee it), so no lap-counting is needed.
``overflow``
    ``self._queue`` -- the inherited heap.

When the wheel runs completely dry the cursor re-anchors itself to the
current time on the next insert, so a schedule that went far-future
(overflow only) does not degrade every later insert to the heap.

Adaptive granularity (``granularity_bits="auto"``)
--------------------------------------------------
A fixed slot width must be hand-tuned per regime (256 ns suits the
microsecond RDMA harnesses, ~65 us the scale engine's millisecond
leases).  In auto mode the wheel watches counters its hot paths touch
anyway -- events drained, empty-slot probes, cascades, overflow inserts
-- and every ``_ADAPT_WINDOW`` drained events checks them against an
occupancy band.  Out of band, it *re-anchors*: at a quiescent cursor
boundary (active bucket drained, spill empty -- exactly ``_refill``'s
precondition) every pending entry is re-filed under a granularity
sized from the pending-deadline horizon.  Entries are geometry-free
``(when, priority, eid, event)`` tuples, so re-anchoring can never
change the pop order; the fuzz tests force re-anchors mid-workload and
still require bit-identical firing sequences.

Batch admission (``schedule_batch``)
------------------------------------
Pre-generated arrival chunks (:mod:`repro.sim.arrivals`) are admitted
in one vectorized pass: ``searchsorted`` splits the sorted deadlines
into spill/level-0/level-1/overflow segments and equal-slot runs land
with one ``extend`` per bucket, replacing ~2^16 per-event Python calls
per chunk.  Entry ids are allocated in sequence order and each batch
shares a single callbacks tuple, so results are identical to per-event
admission of the same stream while the admission cost all but
disappears from the profile.

Lease lane (:class:`LeaseLane`)
-------------------------------
The dominant event class of the scale engine -- periodic lease
re-validations, ~7 re-arms per invocation -- is homogeneous: every
timer has the same period and a known absolute finish time.  The lane
stores them as parallel ``int64`` arrays ``(deadline, finish, eid)``
instead of per-event tuples, and drains *slabs* of due deadlines at
once with vectorized held/released masks (``new_deadline = min(deadline
+ interval, finish)``).  Three structural facts make this sort-free:

* every pending periodic deadline lies in ``(now, now + interval]``
  (each fire re-arms at most one interval ahead), so the pending set is
  a sliding window of width one interval;
* appends always land at ``now + interval`` -- the right edge -- so an
  append-only *next* buffer is automatically ``(deadline, eid)``-sorted
  and becomes the new drain array (``cur``) by concatenation when the
  old one is exhausted;
* the only irregular entries -- final re-arms clipped to the finish
  time, and fresh leases shorter than one interval -- *complete* when
  they fire, so they commute with each other and live in small sorted
  side blocks plus a scalar heap.

Ordering stays bit-identical to per-event execution: the drive loop
drains the lane strictly up to the next wheel entry's ``(when,
priority, eid)`` key, ties included, and slab re-arms take their entry
ids from :meth:`Environment.reserve_eids` -- one id per re-arm in pop
order, exactly the ids scalar re-arms would draw, because completions
with an empty backlog allocate none.  When completion order *is*
observable (caller passes its backlog), the lane falls back to an exact
scalar merge until the backlog drains.

Cold lane (:class:`ColdLane`)
-----------------------------
The dry-pool cold-start path (PR 9) adds a second homogeneous event
class: sandbox *spin-ups* (ready at ``arrival + spawn`` for a constant
per-profile spawn cost) and *idle reclaims* (due at ``ready +
keepalive``).  Both sequences are admitted in fire order, so each is an
append-only sorted calendar -- parallel ``int64`` ready-time / arrival
/ service / eid vectors for spin-ups, ``(when, eid)`` vectors for
reclaims -- and a drain is a ``searchsorted`` due-prefix per calendar,
merged against each other (and a tiny out-of-order heap) under the
global ``(when, NORMAL, eid)`` key.  Because a spin-up's effects admit
new entries (a lease for the executing invocation, a reclaim expiry),
every drain call is capped at one *admission window* -- ``first fire +
admit_gap``, where ``admit_gap`` lower-bounds how far ahead any
admission can land -- so nothing admitted mid-drain can be due inside
the window; the caller re-reads all lane heads between calls.  The
effect hooks (``on_ready`` / ``on_ready_slab`` / ``on_reclaim``) stay
with the driver, which owns the entry-id discipline: a bulk spin-up
slab reserves one contiguous eid block and interleaves lease/reclaim
ids exactly as scalar fires would draw them.
"""

from __future__ import annotations

import sys
from heapq import heappop, heappush
from itertools import islice, repeat
from typing import Any, Optional, Union

import numpy as np

from repro import perf
from repro.sim.core import Environment, EmptySchedule, StopSimulation, _TIMEOUT_POOL_MAX
from repro.sim.events import NORMAL, BatchEvent, Event, Timeout

#: Priority used by ``run(until=<int>)`` stop markers (matches the base
#: class, which the ordering-equivalence tests rely on).
_STOP_PRIORITY = 1 << 30

#: Level-0 slot width used until the first adaptation when
#: ``granularity_bits="auto"`` (the wheel's all-round default).
_AUTO_INITIAL_BITS = 8
#: Ceiling for both auto-chosen and config-supplied granularities:
#: 2**40 ns slots (~18 min) is already absurdly coarse for this
#: simulator's nanosecond clock.
MAX_GRANULARITY_BITS = 40
#: Drained events between occupancy-band evaluations.
_ADAPT_WINDOW = 1 << 15
#: Back-off ceiling when the band says "bad" but no better geometry
#: exists (e.g. genuinely bimodal deadlines): evaluations get rarer
#: instead of burning O(pending) scans forever.
_ADAPT_WINDOW_MAX = 1 << 22
#: Too-coarse signal: average sort-on-drain bucket above this.
_ADAPT_BUCKET_MAX = 1 << 12
#: Too-sparse signal: more than this many empty-slot probes per
#: drained event.
_ADAPT_PROBE_FACTOR = 4
#: Fraction of :meth:`sample_occupancy` calls that actually compute and
#: publish (count-based decimation; the rest return ``None``), so
#: callers can sample on hot paths without measurable cost.
_SAMPLE_DECIMATION = 64
#: Below this many due entries a lease-lane slab fires scalar even in
#: bulk mode: numpy mask machinery only pays off past a few dozen
#: elements (burst-phase slabs are typically 2-8 entries).
_LANE_SCALAR_SLAB = 32
#: Irregular-completion blocks are consolidated (concat + lexsort) when
#: more than this many accumulate, keeping head scans O(1)-ish.
_LANE_IRR_BLOCKS = 16
#: Buckets at least this large are sorted via ``numpy.lexsort`` over
#: extracted ``(when, priority, eid)`` key arrays instead of
#: ``list.sort`` tuple comparisons (the sort-on-drain satellite).
_REFILL_ARGSORT_MIN = 1024

_EMPTY_I64 = np.empty(0, dtype=np.int64)

#: Sentinel eid bound meaning "every eid at this timestamp is due"
#: (used when normalizing a (when, priority, eid) limit whose priority
#: sorts after NORMAL into a plain (when, eid) strict bound).
_EID_UNBOUNDED = 1 << 62


def validate_granularity_bits(value: Union[int, str]) -> Union[int, str]:
    """Validate a user-facing ``granularity_bits`` setting.

    Accepts ``"auto"`` (adaptive) or an int in ``[1, 40]``; anything
    else raises ``ValueError`` here, at the config/CLI boundary, rather
    than failing deep inside the wheel geometry.  (The wheel *class*
    still accepts ``granularity_bits=0`` directly -- 1 ns slots are a
    legitimate geometry for unit tests -- but no real scenario wants
    them, so the config surface starts at 1.)
    """
    if value == "auto":
        return value
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(
            f"granularity_bits must be 'auto' or an integer, got {value!r}"
        )
    if not 1 <= value <= MAX_GRANULARITY_BITS:
        raise ValueError(
            f"granularity_bits must be in [1, {MAX_GRANULARITY_BITS}] "
            f"(or 'auto'), got {value}"
        )
    return value


class LeaseLane:
    """Struct-of-arrays deadline calendar for homogeneous periodic timers.

    See the module docstring ("Lease lane") for the array layout and the
    sliding-window invariant that keeps it sort-free.  The lane never
    touches the wheel's structures; the owner (generic ``run``/``step``
    or the fused scale kernel) merges it against wheel pops by ``(when,
    priority, eid)`` key, with every lane entry at ``NORMAL`` priority.

    ``on_complete(when)`` is invoked per completion only on the exact
    scalar path; vectorized drains *count* completions and return the
    count for the caller to fold, which is sound exactly when the
    caller's completion handling is commutative and allocates no entry
    ids (an empty backlog in the scale driver).
    """

    __slots__ = (
        "env",
        "interval",
        "on_complete",
        # current generation: sorted (deadline, eid) arrays drained by index
        "_cur_dl",
        "_cur_fin",
        "_cur_eid",
        "_ci",
        # next generation: ordered blocks + scalar tail buffers
        "_nxt_blocks",
        "_nxt_dl",
        "_nxt_fin",
        "_nxt_eid",
        "_floor",
        # out-of-order periodic blocks: sorted, drained by prefix
        "_side_blocks",
        # irregulars: sorted completion blocks + a scalar heap
        "_irr_blocks",
        "_irr_heap",
        "_irr_rearms",
        "_count",
        # gauges
        "entries_peak",
        "slabs",
        "max_slab",
        "rearm_batches",
        "scalar_fires",
        "generations",
        "admitted",
        "completions",
    )

    def __init__(self, env: Environment, interval: int, on_complete: Any = None) -> None:
        interval = int(interval)
        if interval < 1:
            raise ValueError(f"lease lane interval must be >= 1 ns, got {interval}")
        self.env = env
        self.interval = interval
        self.on_complete = on_complete
        self._cur_dl = _EMPTY_I64
        self._cur_fin = _EMPTY_I64
        self._cur_eid = _EMPTY_I64
        self._ci = 0
        self._nxt_blocks: list[tuple] = []
        self._nxt_dl: list[int] = []
        self._nxt_fin: list[int] = []
        self._nxt_eid: list[int] = []
        #: Deadline floor for fast-path appends: the largest deadline
        #: ever appended.  Appends below it (possible only for callers
        #: outside the fire-order contract) divert to the heap.
        self._floor = 0
        #: Periodic blocks whose deadlines fall below the floor (a
        #: deferred re-arm slab behind already-admitted leases): kept as
        #: whole sorted ``[dl, fin, eid, start]`` blocks and drained by
        #: vectorized prefix, exactly like irregular-completion blocks
        #: but re-arming.  Without this, every such slab would degrade
        #: to per-entry heap traffic.
        self._side_blocks: list[list] = []
        self._irr_blocks: list[list] = []
        self._irr_heap: list[tuple] = []
        #: Heap entries that still re-arm (finish > deadline).  While any
        #: exist, eid-allocation order is only preserved by the scalar
        #: path, so drains force exact mode.  The scale driver never
        #: creates them (its heap entries all complete on fire).
        self._irr_rearms = 0
        self._count = 0
        self.entries_peak = 0
        #: Drain calls that fired at least one entry.
        self.slabs = 0
        #: Largest single vectorized cur-slab.
        self.max_slab = 0
        #: Vectorized re-arm passes (one per masked slab).
        self.rearm_batches = 0
        #: Entries fired one-by-one (exact merges, tiny slabs).
        self.scalar_fires = 0
        #: cur <- nxt swaps.
        self.generations = 0
        self.admitted = 0
        self.completions = 0

    # -- admission -----------------------------------------------------

    def admit(self, when: int, finish: int) -> int:
        """Admit one lease timer; returns its entry id.

        The id is allocated here, at the same sequence point per-event
        scheduling would allocate it, which is what keeps lane-on runs
        bit-identical to lane-off runs.  ``finish <= when`` admits a
        completes-on-fire entry (a fresh lease shorter than one
        interval, deadline == finish).
        """
        eid = next(self.env._eid)
        when = int(when)
        if int(finish) > when:
            if when >= self._floor:
                self._nxt_dl.append(when)
                self._nxt_fin.append(int(finish))
                self._nxt_eid.append(eid)
                self._floor = when
            else:
                heappush(self._irr_heap, (when, eid, int(finish)))
                self._irr_rearms += 1
        else:
            heappush(self._irr_heap, (when, eid, when))
        count = self._count + 1
        self._count = count
        self.admitted += 1
        if count > self.entries_peak:
            self.entries_peak = count
        return eid

    def admit_cohort(self, whens: Any, finishes: Any) -> int:
        """Vectorized admission of a sorted cohort; returns the base eid.

        *whens* must be non-decreasing; ids are ``base + arange(n)`` via
        :meth:`Environment.reserve_eids`, exactly the ids ``n`` scalar
        :meth:`admit` calls would draw.  Periodic entries (finish >
        deadline) append as one block; completes-on-fire entries become
        one sorted irregular block.
        """
        dl = np.asarray(whens, dtype=np.int64)
        fin = np.asarray(finishes, dtype=np.int64)
        if dl.shape != fin.shape or dl.ndim != 1:
            raise ValueError("cohort deadline/finish arrays must be equal 1-D")
        n = int(dl.size)
        if not n:
            return -1  # zero admits consume zero entry ids
        if n > 1 and bool((dl[1:] < dl[:-1]).any()):
            raise ValueError("cohort deadlines must be non-decreasing")
        base = self.env.reserve_eids(n)
        eids = np.arange(base, base + n, dtype=np.int64)
        periodic = fin > dl
        if periodic.all():
            self._append_block(dl, fin, eids)
        else:
            released = ~periodic
            pdl = dl[periodic]
            if pdl.size:
                self._append_block(pdl, fin[periodic], eids[periodic])
            self._push_irr_block(dl[released], eids[released])
        self._count += n
        self.admitted += n
        if self._count > self.entries_peak:
            self.entries_peak = self._count
        return base

    def admit_block(self, whens: Any, finishes: Any, eids: Any) -> None:
        """Admit a cohort with caller-allocated entry ids.

        The cold-start kernel draws one interleaved ``reserve_eids``
        block per spin-up slab (lease id then reclaim id per spin-up,
        in fire order), so lease ids arrive here pre-assigned instead
        of being allocated per admission.  The arrays may be unsorted
        (cold-start deadlines mix service lengths); they are lexsorted
        by ``(deadline, eid)``.  Blocks behind the append floor become
        side blocks, which drain vectorized for ``strict=False``
        callers and scalar-exact otherwise.
        """
        dl = np.asarray(whens, dtype=np.int64)
        fin = np.asarray(finishes, dtype=np.int64)
        eid = np.asarray(eids, dtype=np.int64)
        if dl.shape != fin.shape or dl.shape != eid.shape or dl.ndim != 1:
            raise ValueError("block deadline/finish/eid arrays must be equal 1-D")
        n = int(dl.size)
        if not n:
            return
        order = np.lexsort((eid, dl))
        dl = dl[order]
        fin = fin[order]
        eid = eid[order]
        periodic = fin > dl
        if periodic.all():
            self._append_block(dl, fin, eid)
        else:
            released = ~periodic
            pdl = dl[periodic]
            if pdl.size:
                self._append_block(pdl, fin[periodic], eid[periodic])
            self._push_irr_block(dl[released], eid[released])
        self._count += n
        self.admitted += n
        if self._count > self.entries_peak:
            self.entries_peak = self._count

    def _append_block(self, dl: Any, fin: Any, eid: Any) -> None:
        """Append a (deadline, eid)-sorted periodic block to *next*."""
        if self._nxt_dl:
            self._flush_tail()
        if int(dl[0]) < self._floor:
            # Out-of-order block (a deferred re-arm slab, or a generic
            # cohort behind the floor): keep it whole as a side block.
            self._push_side_block(dl, fin, eid)
            return
        self._nxt_blocks.append((dl, fin, eid))
        self._floor = int(dl[-1])

    def _push_side_block(self, dl: Any, fin: Any, eid: Any) -> None:
        if not dl.size:
            return
        blocks = self._side_blocks
        blocks.append([dl, fin, eid, 0])
        if len(blocks) > _LANE_IRR_BLOCKS:
            alld = np.concatenate([b[0][b[3] :] for b in blocks])
            allf = np.concatenate([b[1][b[3] :] for b in blocks])
            alle = np.concatenate([b[2][b[3] :] for b in blocks])
            order = np.lexsort((alle, alld))
            self._side_blocks = [[alld[order], allf[order], alle[order], 0]]

    def _flush_tail(self) -> None:
        self._nxt_blocks.append(
            (
                np.asarray(self._nxt_dl, dtype=np.int64),
                np.asarray(self._nxt_fin, dtype=np.int64),
                np.asarray(self._nxt_eid, dtype=np.int64),
            )
        )
        self._nxt_dl = []
        self._nxt_fin = []
        self._nxt_eid = []

    def _swap(self) -> None:
        """cur <- concat(next).  Precondition: cur exhausted, next nonempty."""
        if self._nxt_dl:
            self._flush_tail()
        blocks = self._nxt_blocks
        if len(blocks) == 1:
            dl, fin, eid = blocks[0]
        else:
            dl = np.concatenate([b[0] for b in blocks])
            fin = np.concatenate([b[1] for b in blocks])
            eid = np.concatenate([b[2] for b in blocks])
        blocks.clear()
        self._cur_dl = dl
        self._cur_fin = fin
        self._cur_eid = eid
        self._ci = 0
        self.generations += 1

    def _push_irr_block(self, dl: Any, eid: Any) -> None:
        if not dl.size:
            return
        blocks = self._irr_blocks
        blocks.append([dl, eid, 0])
        if len(blocks) > _LANE_IRR_BLOCKS:
            alld = np.concatenate([b[0][b[2] :] for b in blocks])
            alle = np.concatenate([b[1][b[2] :] for b in blocks])
            order = np.lexsort((alle, alld))
            self._irr_blocks = [[alld[order], alle[order], 0]]

    # -- head inspection -----------------------------------------------

    def head_key(self) -> Optional[tuple]:
        """Minimal pending ``(deadline, eid)`` key, or ``None`` if empty."""
        have = False
        best_dl = best_eid = 0
        cur_dl = self._cur_dl
        ci = self._ci
        if ci < cur_dl.shape[0]:
            best_dl = int(cur_dl[ci])
            best_eid = int(self._cur_eid[ci])
            have = True
        elif self._nxt_blocks or self._nxt_dl:
            if self._nxt_blocks:
                block = self._nxt_blocks[0]
                best_dl = int(block[0][0])
                best_eid = int(block[2][0])
            else:
                best_dl = self._nxt_dl[0]
                best_eid = self._nxt_eid[0]
            have = True
        for dl_a, _fin_a, eid_a, start in self._side_blocks:
            d = int(dl_a[start])
            if not have or d < best_dl or (d == best_dl and int(eid_a[start]) < best_eid):
                best_dl = d
                best_eid = int(eid_a[start])
                have = True
        for dl_a, eid_a, start in self._irr_blocks:
            d = int(dl_a[start])
            if not have or d < best_dl or (d == best_dl and int(eid_a[start]) < best_eid):
                best_dl = d
                best_eid = int(eid_a[start])
                have = True
        heap = self._irr_heap
        if heap:
            head = heap[0]
            if not have or head[0] < best_dl or (head[0] == best_dl and head[1] < best_eid):
                best_dl = head[0]
                best_eid = head[1]
                have = True
        return (best_dl, best_eid) if have else None

    # -- firing --------------------------------------------------------

    def _pop_due(self, lw: Optional[int], lp: int, le: int) -> Optional[tuple]:
        """Remove and return the minimal ``(deadline, eid, finish)``
        triple strictly preceding the ``(lw, lp, le)`` limit key (lane
        entries compare at ``NORMAL`` priority); ``None`` otherwise."""
        while True:
            cur_dl = self._cur_dl
            ci = self._ci
            src = 0
            bsel = -1
            best_dl = best_eid = 0
            if ci < cur_dl.shape[0]:
                best_dl = int(cur_dl[ci])
                best_eid = int(self._cur_eid[ci])
                src = 1
            elif self._nxt_blocks or self._nxt_dl:
                self._swap()
                continue
            blocks = self._irr_blocks
            for bi in range(len(blocks)):
                dl_a, eid_a, start = blocks[bi]
                d = int(dl_a[start])
                e = int(eid_a[start])
                if not src or d < best_dl or (d == best_dl and e < best_eid):
                    best_dl = d
                    best_eid = e
                    src = 2
                    bsel = bi
            side = self._side_blocks
            for bi in range(len(side)):
                block = side[bi]
                start = block[3]
                d = int(block[0][start])
                e = int(block[2][start])
                if not src or d < best_dl or (d == best_dl and e < best_eid):
                    best_dl = d
                    best_eid = e
                    src = 4
                    bsel = bi
            heap = self._irr_heap
            if heap:
                head = heap[0]
                if not src or head[0] < best_dl or (head[0] == best_dl and head[1] < best_eid):
                    best_dl = head[0]
                    best_eid = head[1]
                    src = 3
            if not src:
                return None
            if lw is not None:
                if best_dl > lw:
                    return None
                if best_dl == lw and (lp < NORMAL or (lp == NORMAL and best_eid >= le)):
                    return None
            if src == 1:
                fin = int(self._cur_fin[ci])
                self._ci = ci + 1
                return best_dl, best_eid, fin
            if src == 2:
                block = blocks[bsel]
                start = block[2] + 1
                if start >= block[0].shape[0]:
                    del blocks[bsel]
                else:
                    block[2] = start
                return best_dl, best_eid, best_dl
            if src == 4:
                block = side[bsel]
                start = block[3]
                fin = int(block[1][start])
                start += 1
                if start >= block[0].shape[0]:
                    del side[bsel]
                else:
                    block[3] = start
                return best_dl, best_eid, fin
            dl, eid, fin = heappop(heap)
            if fin > dl:
                self._irr_rearms -= 1
            return dl, eid, fin

    def fire_one(self) -> Optional[int]:
        """Scalar-fire the earliest entry (exact); returns its deadline.

        Re-arms survivors in place (allocating one entry id, like a
        per-event re-arm would) and invokes ``on_complete(when)`` for
        finished leases.  Sets ``env._now`` to the fired deadline; the
        caller accounts ``events_processed``.
        """
        popped = self._pop_due(None, 0, 0)
        if popped is None:
            return None
        dl, _eid, fin = popped
        env = self.env
        env._now = dl
        self.scalar_fires += 1
        if fin > dl:
            eid2 = next(env._eid)
            ndl = dl + self.interval
            if ndl < fin:
                self._append_one(ndl, fin, eid2)
            else:
                heappush(self._irr_heap, (fin, eid2, fin))
        else:
            self._count -= 1
            self.completions += 1
            callback = self.on_complete
            if callback is not None:
                callback(dl)
        return dl

    def _append_one(self, when: int, fin: int, eid: int) -> None:
        if when >= self._floor:
            self._nxt_dl.append(when)
            self._nxt_fin.append(fin)
            self._nxt_eid.append(eid)
            self._floor = when
        else:
            heappush(self._irr_heap, (when, eid, fin))
            self._irr_rearms += 1

    def _due_end(self, dl_a: Any, eid_a: Any, start: int, lw: Optional[int], lp: int, le: int) -> int:
        """End index of the due prefix of a sorted (deadline, eid) array."""
        n = dl_a.shape[0]
        if lw is None:
            return n
        j = start + int(np.searchsorted(dl_a[start:], lw, side="left"))
        if j < n and int(dl_a[j]) == lw and lp >= NORMAL:
            j2 = start + int(np.searchsorted(dl_a[start:], lw, side="right"))
            if lp > NORMAL:
                j = j2
            else:
                j += int(np.searchsorted(eid_a[j:j2], le, side="left"))
        return j

    def _fire_cur_slab(self, ci: int, j: int) -> int:
        return self._fire_slab(self._cur_dl, self._cur_fin, ci, j)

    def _fire_slab(self, dl_a: Any, fin_a: Any, ci: int, j: int) -> int:
        """Fire ``[ci:j]`` of a sorted block in bulk; returns the
        completion count.

        Held entries (finish > deadline) re-arm via one masked pass:
        contiguous ids from ``reserve_eids`` in slab order, new
        deadlines ``min(deadline + interval, finish)``, unclipped
        survivors appended as the next block and clipped finals filed as
        a sorted irregular-completion block.  Tiny slabs take a scalar
        loop -- same ids, same destinations, no mask overhead.
        """
        env = self.env
        interval = self.interval
        n = j - ci
        if n < _LANE_SCALAR_SLAB:
            heap = self._irr_heap
            comp = 0
            for k in range(ci, j):
                dl = int(dl_a[k])
                fin = int(fin_a[k])
                if fin > dl:
                    eid2 = next(env._eid)
                    ndl = dl + interval
                    if ndl < fin:
                        self._append_one(ndl, fin, eid2)
                    else:
                        heappush(heap, (fin, eid2, fin))
                else:
                    comp += 1
            self.scalar_fires += n
            self._count -= comp
            return comp
        dl = dl_a[ci:j]
        fin = fin_a[ci:j]
        held = fin > dl
        n_held = int(np.count_nonzero(held))
        comp = n - n_held
        if n_held:
            hdl = dl[held] if comp else dl
            hfin = fin[held] if comp else fin
            base = env.reserve_eids(n_held)
            neid = np.arange(base, base + n_held, dtype=np.int64)
            ndl = hdl + interval
            clip = hfin <= ndl
            if clip.any():
                keep = ~clip
                if keep.any():
                    self._append_block(ndl[keep], hfin[keep], neid[keep])
                cdl = hfin[clip]
                ceid = neid[clip]
                order = np.lexsort((ceid, cdl))
                self._push_irr_block(cdl[order], ceid[order])
            else:
                self._append_block(ndl, hfin, neid)
            self.rearm_batches += 1
        if n > self.max_slab:
            self.max_slab = n
        self._count -= comp
        return comp

    def drain(
        self,
        limit_when: Optional[int],
        limit_prio: int,
        limit_eid: int,
        exact: Any = None,
        strict: bool = True,
    ) -> tuple:
        """Fire every lane entry preceding the limit key.

        ``limit_when=None`` drains the lane completely.  Returns
        ``(fired, bulk_completed, last_when)``: *fired* is the event
        count (for ``events_processed``), *bulk_completed* the
        completions counted-not-callbacked on the vectorized path (the
        caller folds them; always 0 on the exact path, where
        ``on_complete`` ran per event), *last_when* the latest fired
        deadline (-1 if none).

        ``exact``: ``None`` vectorizes from the start; ``True`` forces
        the exact scalar merge throughout; a backlog deque runs exact
        while it is non-empty, then switches to vectorized slabs (the
        point completions stop being observable).

        ``strict``: when True (default) and out-of-order periodic
        entries sit on the fallback heap (``_irr_rearms > 0``), the
        whole call is forced scalar so every re-arm draws its eid at
        exactly the per-event sequence point.  A caller for whom eid
        draws are unobservable between its own synchronization points
        (the fused scale kernel: all draws inside one drain are
        lane-internal and never cross a chunk admission) passes
        ``strict=False`` to keep the vectorized path, whose heap pops
        re-arm scalar but out of slab order.
        """
        fired = 0
        bulk_completed = 0
        last_when = -1
        if strict and (self._irr_rearms or self._side_blocks):
            # Out-of-order periodic entries exist (heap or side blocks);
            # only the scalar path preserves their eid-allocation order.
            exact = True
        if exact is not None:
            interval = self.interval
            env = self.env
            while exact is True or exact:
                popped = self._pop_due(limit_when, limit_prio, limit_eid)
                if popped is None:
                    if fired:
                        self.slabs += 1
                        self.scalar_fires += fired
                    return fired, 0, last_when
                dl, _eid, fin = popped
                fired += 1
                last_when = dl
                env._now = dl
                if fin > dl:
                    eid2 = next(env._eid)
                    ndl = dl + interval
                    if ndl < fin:
                        self._append_one(ndl, fin, eid2)
                    else:
                        heappush(self._irr_heap, (fin, eid2, fin))
                else:
                    self._count -= 1
                    self.completions += 1
                    callback = self.on_complete
                    if callback is not None:
                        callback(dl)
            self.scalar_fires += fired
        # -- vectorized phase ------------------------------------------
        heap = self._irr_heap
        lw, lp, le = limit_when, limit_prio, limit_eid
        while True:
            progress = False
            blocks = self._irr_blocks
            bi = 0
            while bi < len(blocks):
                block = blocks[bi]
                dl_a, eid_a, start = block
                k = self._due_end(dl_a, eid_a, start, lw, lp, le)
                if k > start:
                    cnt = k - start
                    fired += cnt
                    bulk_completed += cnt
                    self._count -= cnt
                    w = int(dl_a[k - 1])
                    if w > last_when:
                        last_when = w
                    progress = True
                    if k >= dl_a.shape[0]:
                        del blocks[bi]
                        continue
                    block[2] = k
                bi += 1
            side = self._side_blocks
            if side:
                # Detach while firing: re-arm fallbacks push fresh side
                # blocks onto self._side_blocks, which must not perturb
                # this iteration (or be consolidated away mid-pass).
                self._side_blocks = []
                remaining = []
                for block in side:
                    dl_a, fin_a, eid_a, start = block
                    k = self._due_end(dl_a, eid_a, start, lw, lp, le)
                    if k > start:
                        comp = self._fire_slab(dl_a, fin_a, start, k)
                        bulk_completed += comp
                        fired += k - start
                        w = int(dl_a[k - 1])
                        if w > last_when:
                            last_when = w
                        progress = True
                        if k < dl_a.shape[0]:
                            block[3] = k
                            remaining.append(block)
                    else:
                        remaining.append(block)
                if self._side_blocks:
                    remaining.extend(self._side_blocks)
                self._side_blocks = remaining
            while heap:
                head = heap[0]
                dl = head[0]
                if lw is not None and (
                    dl > lw or (dl == lw and (lp < NORMAL or (lp == NORMAL and head[1] >= le)))
                ):
                    break
                heappop(heap)
                fired += 1
                if dl > last_when:
                    last_when = dl
                progress = True
                fin = head[2]
                if fin > dl:
                    # Out-of-order periodic entry (generic callers only;
                    # a bulk slab can push these via the floor fallback):
                    # re-arm scalar so no fire is lost.  Times and counts
                    # stay exact; callers needing eid bit-identity must
                    # keep deadlines in fire order so this never runs.
                    self._irr_rearms -= 1
                    eid2 = next(self.env._eid)
                    ndl = dl + self.interval
                    if ndl < fin:
                        self._append_one(ndl, fin, eid2)
                    else:
                        heappush(heap, (fin, eid2, fin))
                    self.scalar_fires += 1
                else:
                    bulk_completed += 1
                    self._count -= 1
            cur_dl = self._cur_dl
            ci = self._ci
            if ci >= cur_dl.shape[0]:
                if self._nxt_blocks or self._nxt_dl:
                    # Swap lazily: only when the incoming head is due.
                    if self._nxt_blocks:
                        head_dl = int(self._nxt_blocks[0][0][0])
                    else:
                        head_dl = self._nxt_dl[0]
                    if lw is None or head_dl < lw or (head_dl == lw and lp >= NORMAL):
                        self._swap()
                        progress = True
                        continue
            else:
                j = self._due_end(cur_dl, self._cur_eid, ci, lw, lp, le)
                if j > ci:
                    comp = self._fire_cur_slab(ci, j)
                    bulk_completed += comp
                    w = int(cur_dl[j - 1])
                    if w > last_when:
                        last_when = w
                    fired += j - ci
                    self._ci = j
                    progress = True
            if not progress:
                break
        if fired:
            self.slabs += 1
        self.completions += bulk_completed
        return fired, bulk_completed, last_when

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def stats(self) -> dict[str, int]:
        """Gauges for occupancy sampling and the bench lane guards."""
        return {
            "lane_entries": self._count,
            "lane_entries_peak": self.entries_peak,
            "lane_slabs": self.slabs,
            "lane_max_slab": self.max_slab,
            "lane_rearm_batches": self.rearm_batches,
            "lane_scalar_fires": self.scalar_fires,
            "lane_generations": self.generations,
        }

    def __repr__(self) -> str:
        return (
            f"<LeaseLane interval={self.interval}ns pending={self._count} "
            f"peak={self.entries_peak}>"
        )


class ColdLane:
    """Struct-of-arrays calendar for sandbox spin-ups and idle reclaims.

    See the module docstring ("Cold lane").  Two append-only sorted
    calendars -- spin-ups become ready at ``arrival + spawn`` for a
    constant spawn cost (arrivals are monotone, so ready times are) and
    reclaims expire at ``ready + keepalive`` (fires are monotone) --
    plus a tiny heap for out-of-order admissions from generic callers.
    The lane stores *times and payloads only*; the owner supplies the
    effect hooks and keeps the entry-id discipline:

    ``on_ready(when, arrival, service)``
        one spin-up reached ready (scalar path; the hook admits the
        executing invocation's lease and, optionally, a reclaim expiry,
        allocating ids at per-event sequence points).
    ``on_ready_slab(when_a, arrival_a, service_a)``
        a contiguous due run of spin-ups (the hook reserves one
        interleaved eid block and files leases/reclaims in bulk).
    ``on_reclaim(count)``
        *count* consecutive reclaim expiries with no other event
        between them fired; the hook folds them (reclaim outcomes
        depend only on pool gauges, so a run is order-free).

    Because fires admit new entries, :meth:`drain` is capped at one
    *admission window* per call (``first fire + admit_gap``); callers
    re-read every pending-event head between calls, which is what keeps
    the merge bit-identical to per-event execution.
    """

    __slots__ = (
        "env",
        "admit_gap",
        "on_ready",
        "on_ready_slab",
        "on_reclaim",
        # spin-up calendar: sorted (ready, eid) + arrival/service payloads
        "_s_when",
        "_s_arr",
        "_s_srv",
        "_s_eid",
        "_si",
        "_sn_when",
        "_sn_arr",
        "_sn_srv",
        "_sn_eid",
        "_s_floor",
        # reclaim calendar: sorted (when, eid), block + tail next-gen
        "_r_when",
        "_r_eid",
        "_ri",
        "_rn_blocks",
        "_rn_when",
        "_rn_eid",
        "_r_floor",
        # out-of-order admissions: (when, eid, kind, arrival, service)
        "_irr_heap",
        "_count",
        # gauges
        "entries_peak",
        "slabs",
        "max_slab",
        "scalar_fires",
        "generations",
        "admitted",
        "spinup_fires",
        "reclaim_fires",
    )

    def __init__(
        self,
        env: Environment,
        admit_gap: int,
        on_ready: Any = None,
        on_ready_slab: Any = None,
        on_reclaim: Any = None,
    ) -> None:
        admit_gap = int(admit_gap)
        if admit_gap < 1:
            raise ValueError(f"cold lane admit_gap must be >= 1 ns, got {admit_gap}")
        self.env = env
        #: Lower bound on how far past a fire its admissions can land
        #: (min over keepalive, shortest service, lease interval).  A
        #: drain call never fires past ``first fire + admit_gap``, so
        #: entries admitted mid-drain are never due inside the call.
        self.admit_gap = admit_gap
        self.on_ready = on_ready
        self.on_ready_slab = on_ready_slab
        self.on_reclaim = on_reclaim
        self._s_when = _EMPTY_I64
        self._s_arr = _EMPTY_I64
        self._s_srv = _EMPTY_I64
        self._s_eid = _EMPTY_I64
        self._si = 0
        self._sn_when: list[int] = []
        self._sn_arr: list[int] = []
        self._sn_srv: list[int] = []
        self._sn_eid: list[int] = []
        self._s_floor = 0
        self._r_when = _EMPTY_I64
        self._r_eid = _EMPTY_I64
        self._ri = 0
        self._rn_blocks: list[tuple] = []
        self._rn_when: list[int] = []
        self._rn_eid: list[int] = []
        self._r_floor = 0
        self._irr_heap: list[tuple] = []
        self._count = 0
        self.entries_peak = 0
        #: Drain calls that fired at least one entry.
        self.slabs = 0
        #: Largest single vectorized run.
        self.max_slab = 0
        #: Entries fired one-by-one (tiny runs, heap pops, fire_one).
        self.scalar_fires = 0
        #: cur <- nxt swaps (either calendar).
        self.generations = 0
        self.admitted = 0
        #: Spin-ups fired (cold starts that reached ready).
        self.spinup_fires = 0
        #: Reclaim expiries fired (successful or not; the hook decides).
        self.reclaim_fires = 0

    # -- admission -----------------------------------------------------

    def admit(self, ready: int, arrival: int, service: int) -> int:
        """Admit one spin-up becoming ready at *ready*; returns its eid.

        The id is allocated here, at the sequence point per-event
        scheduling would allocate it (the dry-pool arrival).  Ready
        times behind the floor (generic callers only) divert to the
        fallback heap and fire scalar.
        """
        eid = next(self.env._eid)
        ready = int(ready)
        if ready >= self._s_floor:
            self._sn_when.append(ready)
            self._sn_arr.append(int(arrival))
            self._sn_srv.append(int(service))
            self._sn_eid.append(eid)
            self._s_floor = ready
        else:
            heappush(self._irr_heap, (ready, eid, 0, int(arrival), int(service)))
        count = self._count + 1
        self._count = count
        self.admitted += 1
        if count > self.entries_peak:
            self.entries_peak = count
        return eid

    def admit_reclaim(self, when: int) -> int:
        """Admit one idle-reclaim expiry; returns its eid."""
        eid = next(self.env._eid)
        when = int(when)
        if when >= self._r_floor:
            self._rn_when.append(when)
            self._rn_eid.append(eid)
            self._r_floor = when
        else:
            heappush(self._irr_heap, (when, eid, 1, 0, 0))
        count = self._count + 1
        self._count = count
        self.admitted += 1
        if count > self.entries_peak:
            self.entries_peak = count
        return eid

    def admit_reclaim_block(self, whens: Any, eids: Any) -> None:
        """Bulk reclaim admission with caller-allocated (interleaved) ids.

        *whens* must be non-decreasing (reclaims are admitted in fire
        order).  A block behind the floor -- impossible for the scale
        kernel, possible for generic callers -- falls back to scalar
        heap pushes, which keeps exactness at scalar cost.
        """
        when = np.asarray(whens, dtype=np.int64)
        eid = np.asarray(eids, dtype=np.int64)
        if when.shape != eid.shape or when.ndim != 1:
            raise ValueError("reclaim when/eid arrays must be equal 1-D")
        n = int(when.size)
        if not n:
            return
        if n > 1 and bool((when[1:] < when[:-1]).any()):
            raise ValueError("reclaim block must be non-decreasing")
        if int(when[0]) < self._r_floor:
            heap = self._irr_heap
            for k in range(n):
                heappush(heap, (int(when[k]), int(eid[k]), 1, 0, 0))
        else:
            if self._rn_when:
                self._flush_reclaim_tail()
            self._rn_blocks.append((when, eid))
            self._r_floor = int(when[-1])
        self._count += n
        self.admitted += n
        if self._count > self.entries_peak:
            self.entries_peak = self._count

    # -- generation plumbing -------------------------------------------

    def _swap_spin(self) -> None:
        self._s_when = np.asarray(self._sn_when, dtype=np.int64)
        self._s_arr = np.asarray(self._sn_arr, dtype=np.int64)
        self._s_srv = np.asarray(self._sn_srv, dtype=np.int64)
        self._s_eid = np.asarray(self._sn_eid, dtype=np.int64)
        self._sn_when = []
        self._sn_arr = []
        self._sn_srv = []
        self._sn_eid = []
        self._si = 0
        self.generations += 1

    def _flush_reclaim_tail(self) -> None:
        self._rn_blocks.append(
            (
                np.asarray(self._rn_when, dtype=np.int64),
                np.asarray(self._rn_eid, dtype=np.int64),
            )
        )
        self._rn_when = []
        self._rn_eid = []

    def _swap_reclaim(self) -> None:
        if self._rn_when:
            self._flush_reclaim_tail()
        blocks = self._rn_blocks
        if len(blocks) == 1:
            when, eid = blocks[0]
        else:
            when = np.concatenate([b[0] for b in blocks])
            eid = np.concatenate([b[1] for b in blocks])
        blocks.clear()
        self._r_when = when
        self._r_eid = eid
        self._ri = 0
        self.generations += 1

    def _spin_head(self) -> Optional[tuple]:
        """(ready, eid) of the next spin-up, swapping generations lazily."""
        if self._si >= self._s_when.shape[0]:
            if not self._sn_when:
                return None
            self._swap_spin()
        i = self._si
        return (int(self._s_when[i]), int(self._s_eid[i]))

    def _reclaim_head(self) -> Optional[tuple]:
        if self._ri >= self._r_when.shape[0]:
            if not (self._rn_blocks or self._rn_when):
                return None
            self._swap_reclaim()
        i = self._ri
        return (int(self._r_when[i]), int(self._r_eid[i]))

    def head_key(self) -> Optional[tuple]:
        """Minimal pending ``(when, eid)`` key, or ``None`` if empty.

        Non-mutating (next-generation heads are peeked, not swapped),
        so owners can poll it on hot paths.
        """
        have = False
        bw = be = 0
        if self._si < self._s_when.shape[0]:
            bw = int(self._s_when[self._si])
            be = int(self._s_eid[self._si])
            have = True
        elif self._sn_when:
            bw = self._sn_when[0]
            be = self._sn_eid[0]
            have = True
        if self._ri < self._r_when.shape[0]:
            w = int(self._r_when[self._ri])
            e = int(self._r_eid[self._ri])
            if not have or w < bw or (w == bw and e < be):
                bw, be = w, e
                have = True
        elif self._rn_blocks:
            block = self._rn_blocks[0]
            w = int(block[0][0])
            e = int(block[1][0])
            if not have or w < bw or (w == bw and e < be):
                bw, be = w, e
                have = True
        elif self._rn_when:
            w = self._rn_when[0]
            e = self._rn_eid[0]
            if not have or w < bw or (w == bw and e < be):
                bw, be = w, e
                have = True
        heap = self._irr_heap
        if heap:
            head = heap[0]
            if not have or head[0] < bw or (head[0] == bw and head[1] < be):
                bw, be = head[0], head[1]
                have = True
        return (bw, be) if have else None

    # -- firing --------------------------------------------------------

    def fire_one(self) -> Optional[int]:
        """Scalar-fire the earliest entry (exact); returns its time."""
        s_head = self._spin_head()
        r_head = self._reclaim_head()
        heap = self._irr_heap
        best = s_head
        src = 1
        if r_head is not None and (best is None or r_head < best):
            best = r_head
            src = 2
        if heap and (best is None or (heap[0][0], heap[0][1]) < best):
            best = (heap[0][0], heap[0][1])
            src = 3
        if best is None:
            return None
        env = self.env
        self.scalar_fires += 1
        self._count -= 1
        if src == 3:
            w, _e, kind, arrival, service = heappop(heap)
            env._now = w
            if kind == 0:
                self.spinup_fires += 1
                self.on_ready(w, arrival, service)
            else:
                self.reclaim_fires += 1
                self.on_reclaim(1)
            return w
        if src == 1:
            i = self._si
            w = int(self._s_when[i])
            self._si = i + 1
            env._now = w
            self.spinup_fires += 1
            self.on_ready(w, int(self._s_arr[i]), int(self._s_srv[i]))
            return w
        i = self._ri
        w = int(self._r_when[i])
        self._ri = i + 1
        env._now = w
        self.reclaim_fires += 1
        self.on_reclaim(1)
        return w

    def _run_end(self, when_a: Any, eid_a: Any, start: int, vw: int, ve: int) -> int:
        """End of the due prefix strictly preceding the (vw, ve) key."""
        n = when_a.shape[0]
        j = start + int(np.searchsorted(when_a[start:], vw, side="left"))
        if j < n and int(when_a[j]) == vw and ve > 0:
            j2 = start + int(np.searchsorted(when_a[start:], vw, side="right"))
            j += int(np.searchsorted(eid_a[j:j2], ve, side="left"))
        return j

    def drain(self, limit_when: Optional[int], limit_prio: int, limit_eid: int) -> tuple:
        """Fire entries preceding the limit key, one admission window
        per call.  Returns ``(fired, last_when)``.

        ``limit_when=None`` means "no external bound" -- the call still
        stops at the admission window, so callers loop until *fired*
        comes back 0 (re-reading all lane heads between calls, which is
        where entries admitted by this call's fires get merged).
        """
        # Normalize the (when, priority, eid) limit into a strict
        # (when, eid) bound at the lane's NORMAL priority.
        if limit_when is None:
            lw: Optional[int] = None
            le = 0
        elif limit_prio > NORMAL:
            lw, le = limit_when, _EID_UNBOUNDED
        elif limit_prio == NORMAL:
            lw, le = limit_when, limit_eid
        else:
            lw, le = limit_when, 0
        fired = 0
        last_when = -1
        cap = -1
        env = self.env
        scalar = _LANE_SCALAR_SLAB
        while True:
            s_head = self._spin_head()
            r_head = self._reclaim_head()
            heap = self._irr_heap
            best = s_head
            src = 1
            if r_head is not None and (best is None or r_head < best):
                best = r_head
                src = 2
            if heap and (best is None or (heap[0][0], heap[0][1]) < best):
                best = (heap[0][0], heap[0][1])
                src = 3
            if best is None:
                break
            bw, be = best
            if lw is not None and (bw > lw or (bw == lw and be >= le)):
                break
            if cap < 0:
                cap = bw + self.admit_gap
            elif bw >= cap:
                break
            if src == 3:
                w, _e, kind, arrival, service = heappop(heap)
                self._count -= 1
                fired += 1
                self.scalar_fires += 1
                env._now = w
                if w > last_when:
                    last_when = w
                if kind == 0:
                    self.spinup_fires += 1
                    self.on_ready(w, arrival, service)
                else:
                    self.reclaim_fires += 1
                    self.on_reclaim(1)
                continue
            # Vector bound for a contiguous run: min over the external
            # limit, the admission-window cap, the other calendar's head
            # and the fallback heap's head.
            vw, ve = (lw, le) if lw is not None else (cap, 0)
            if lw is not None and cap < vw:
                vw, ve = cap, 0
            other = r_head if src == 1 else s_head
            if other is not None and other < (vw, ve):
                vw, ve = other
            if heap and (heap[0][0], heap[0][1]) < (vw, ve):
                vw, ve = heap[0][0], heap[0][1]
            if src == 1:
                when_a = self._s_when
                start = self._si
                j = self._run_end(when_a, self._s_eid, start, vw, ve)
                n = j - start
                w = int(when_a[j - 1])
                env._now = w
                if n < scalar:
                    on_ready = self.on_ready
                    arr_a = self._s_arr
                    srv_a = self._s_srv
                    for k in range(start, j):
                        wk = int(when_a[k])
                        env._now = wk
                        on_ready(wk, int(arr_a[k]), int(srv_a[k]))
                    self.scalar_fires += n
                else:
                    self.on_ready_slab(
                        when_a[start:j], self._s_arr[start:j], self._s_srv[start:j]
                    )
                    if n > self.max_slab:
                        self.max_slab = n
                self._si = j
                self.spinup_fires += n
            else:
                when_a = self._r_when
                start = self._ri
                j = self._run_end(when_a, self._r_eid, start, vw, ve)
                n = j - start
                w = int(when_a[j - 1])
                env._now = w
                self._ri = j
                # A reclaim run with nothing between its members folds
                # into one hook call whatever its size (outcomes depend
                # only on pool gauges, not on per-entry state).
                self.on_reclaim(n)
                self.reclaim_fires += n
                if n > self.max_slab:
                    self.max_slab = n
            self._count -= n
            fired += n
            if w > last_when:
                last_when = w
        if fired:
            self.slabs += 1
        return fired, last_when

    def drain_spinups_all(self) -> int:
        """Fire every pending spin-up, in admission order, as maximal
        slabs; returns how many fired.

        Only valid while the reclaim calendar and the fallback heap
        are empty (idle-reclaim disabled).  A spin-up's effects are
        computed from its own stored times -- the sojourn is
        ``spawn + service``, its lease lands at ``ready + min(service,
        interval)`` -- and with no reclaims pending nothing ever reads
        the gauges it bumps before those admissions come due, so
        firing the whole backlog early (without touching the clock) is
        observationally identical to firing each entry at its exact
        ``ready``.  This is the cold kernel's keepalive-0 fast path:
        under a saturated pool ``spawn / gap`` spin-ups pile up before
        the merge first catches up to the oldest ready, so the whole
        set goes through ``on_ready_slab`` as one vectorized run
        instead of one scalar fire per interleaved arrival.
        """
        if (
            self._ri < self._r_when.shape[0]
            or self._rn_blocks
            or self._rn_when
            or self._irr_heap
        ):
            raise RuntimeError(
                "drain_spinups_all needs an empty reclaim calendar and "
                "fallback heap (keepalive-0 mode only)"
            )
        fired = 0
        scalar = _LANE_SCALAR_SLAB
        while True:
            j = self._s_when.shape[0]
            start = self._si
            if start >= j:
                if not self._sn_when:
                    break
                self._swap_spin()
                continue
            n = j - start
            if n < scalar:
                on_ready = self.on_ready
                when_a = self._s_when
                arr_a = self._s_arr
                srv_a = self._s_srv
                for k in range(start, j):
                    on_ready(int(when_a[k]), int(arr_a[k]), int(srv_a[k]))
                self.scalar_fires += n
            else:
                self.on_ready_slab(
                    self._s_when[start:j], self._s_arr[start:j], self._s_srv[start:j]
                )
                if n > self.max_slab:
                    self.max_slab = n
            self._si = j
            self.spinup_fires += n
            self._count -= n
            fired += n
        if fired:
            self.slabs += 1
        return fired

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def stats(self) -> dict[str, int]:
        """Gauges for occupancy sampling and the bench cold guards."""
        return {
            "cold_entries": self._count,
            "cold_entries_peak": self.entries_peak,
            "cold_slabs": self.slabs,
            "cold_max_slab": self.max_slab,
            "cold_scalar_fires": self.scalar_fires,
            "cold_spinups": self.spinup_fires,
            "cold_reclaim_fires": self.reclaim_fires,
            "cold_generations": self.generations,
        }

    def __repr__(self) -> str:
        return (
            f"<ColdLane gap={self.admit_gap}ns pending={self._count} "
            f"peak={self.entries_peak}>"
        )


class WheelEnvironment(Environment):
    """Drop-in :class:`Environment` with a hierarchical timer wheel.

    Identical simulated results, different wall-clock complexity:
    scheduling is O(1) instead of O(log n) in the number of pending
    events, which is what makes million-invocation open-loop runs
    (~10^5..10^6 concurrently pending timers) routinely benchmarkable.
    See :mod:`repro.experiments.scale`.
    """

    __slots__ = (
        "_gbits",
        "_sbits0",
        "_mask0",
        "_smask0",
        "_mask1",
        "_slots0",
        "_slots1",
        "_cursor",
        "_active",
        "_ai",
        "_spill",
        "_l0_count",
        "_l1_count",
        "cascades",
        "overflow_inserts",
        "_adaptive",
        "_adapt_window",
        "_adapt_drained",
        "_adapt_refills",
        "_adapt_probes",
        "_adapt_cascaded",
        "_adapt_overflow_mark",
        "reanchors",
        "_sample_tick",
        "occupancy_samples",
        "_lane",
        "_cold",
    )

    def __init__(
        self,
        initial_time: int = 0,
        granularity_bits: Union[int, str] = 8,
        slot_bits: int = 12,
        window_bits: int = 10,
    ) -> None:
        super().__init__(initial_time)
        adaptive = granularity_bits == "auto"
        if adaptive:
            granularity_bits = _AUTO_INITIAL_BITS
        if (
            not isinstance(granularity_bits, int)
            or granularity_bits < 0
            or slot_bits < 1
            or window_bits < 1
        ):
            raise ValueError("wheel geometry bits must be positive")
        self._adaptive = adaptive
        self._adapt_window = _ADAPT_WINDOW
        self._adapt_drained = 0
        self._adapt_refills = 0
        self._adapt_probes = 0
        self._adapt_cascaded = 0
        self._adapt_overflow_mark = 0
        #: Granularity re-anchors performed by the adaptive controller.
        self.reanchors = 0
        self._sample_tick = 0
        #: sample_occupancy() calls that actually computed (not gated).
        self.occupancy_samples = 0
        self._gbits = granularity_bits
        self._sbits0 = slot_bits
        self._mask0 = (1 << slot_bits) - 1
        #: ``cursor & _smask0 == 0`` marks a level-1 window boundary.
        self._smask0 = self._mask0
        self._mask1 = (1 << window_bits) - 1
        self._slots0: list[list[tuple]] = [[] for _ in range(1 << slot_bits)]
        self._slots1: list[list[tuple]] = [[] for _ in range(1 << window_bits)]
        #: Absolute level-0 slot number of the slot being drained.
        self._cursor = initial_time >> granularity_bits
        self._active: list[tuple] = []
        self._ai = 0
        self._spill: list[tuple] = []
        self._l0_count = 0
        self._l1_count = 0
        #: Level-1 buckets cascaded into level 0 (lifetime).
        self.cascades = 0
        #: Entries that bypassed the wheel into the overflow heap.
        self.overflow_inserts = 0
        #: Optional :class:`LeaseLane` side calendar (see attach_lease_lane).
        self._lane: Optional[LeaseLane] = None
        #: Optional :class:`ColdLane` side calendar (see attach_cold_lane).
        self._cold: Optional[ColdLane] = None

    # -- lease lane ----------------------------------------------------

    @property
    def lease_lane(self) -> Optional[LeaseLane]:
        return self._lane

    def attach_lease_lane(self, interval: int, on_complete: Any = None) -> LeaseLane:
        """Attach a :class:`LeaseLane` for periodic timers of *interval* ns.

        At most one lane per environment.  Once attached, :meth:`step`,
        :meth:`run`, :meth:`peek`, :meth:`pending_events` and
        :meth:`occupancy` all merge the lane against the wheel under
        the global ``(when, priority, eid)`` contract (lane entries at
        ``NORMAL`` priority); the fused scale kernel bypasses the
        generic loop but honors the same contract.
        """
        if self._lane is not None:
            raise RuntimeError("lease lane already attached")
        lane = LeaseLane(self, interval, on_complete)
        self._lane = lane
        return lane

    @property
    def cold_lane(self) -> Optional["ColdLane"]:
        return self._cold

    def attach_cold_lane(
        self,
        admit_gap: int,
        on_ready: Any = None,
        on_ready_slab: Any = None,
        on_reclaim: Any = None,
    ) -> "ColdLane":
        """Attach a :class:`ColdLane` for spin-up/reclaim calendars.

        At most one cold lane per environment; it composes with a lease
        lane (the generic loop and the fused cold kernel both merge the
        two lanes against the wheel under the global ``(when, priority,
        eid)`` contract, every lane entry at ``NORMAL`` priority).
        """
        if self._cold is not None:
            raise RuntimeError("cold lane already attached")
        lane = ColdLane(self, admit_gap, on_ready, on_ready_slab, on_reclaim)
        self._cold = lane
        return lane

    # -- scheduling ----------------------------------------------------

    def _insert(self, entry: tuple) -> None:
        """File *entry* into spill/level-0/level-1/overflow by deadline."""
        s0 = entry[0] >> self._gbits
        for _ in range(2):
            d0 = s0 - self._cursor
            if d0 <= 0:
                # Active slot or earlier (>= now by construction): the
                # spill heap merges with the sorted active bucket at pop.
                heappush(self._spill, entry)
                return
            if d0 <= self._mask0:
                self._slots0[s0 & self._mask0].append(entry)
                self._l0_count += 1
                return
            d1 = (s0 >> self._sbits0) - (self._cursor >> self._sbits0)
            if d1 <= self._mask1:
                self._slots1[(s0 >> self._sbits0) & self._mask1].append(entry)
                self._l1_count += 1
                return
            if (
                self._l0_count
                or self._l1_count
                or self._spill
                or self._ai < len(self._active)
                or self._cursor >= self._now >> self._gbits
            ):
                break
            # Wheel completely dry and the cursor far in the past
            # (overflow pops advance time without moving it): re-anchor
            # to now and classify once more.
            self._cursor = self._now >> self._gbits
        self.overflow_inserts += 1
        heappush(self._queue, entry)

    def schedule(self, event: Event, delay: int = 0, priority: int = NORMAL) -> None:
        """Queue *event* to be processed *delay* ns from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._insert((self._now + int(delay), priority, next(self._eid), event))

    def schedule_timeout(self, event: Event, delay: int) -> None:
        """Fast-path scheduling of pre-validated NORMAL-priority events.

        The two dominant destinations -- a level-0 slot ahead of the
        cursor, or the spill heap for same-slot-or-earlier deadlines --
        are classified inline; everything else (level 1, overflow,
        re-anchoring) falls through to :meth:`_insert`.  Both paths
        build identical entry tuples, so ordering is unaffected.
        """
        when = self._now + delay
        s0 = when >> self._gbits
        d0 = s0 - self._cursor
        if d0 > 0:
            if d0 <= self._mask0:
                self._slots0[s0 & self._mask0].append(
                    (when, NORMAL, next(self._eid), event)
                )
                self._l0_count += 1
                return
            self._insert((when, NORMAL, next(self._eid), event))
            return
        heappush(self._spill, (when, NORMAL, next(self._eid), event))

    def schedule_batch(
        self, times: Any, callback: Any, priority: int = NORMAL, cls: type = BatchEvent
    ) -> list[Event]:
        """Vectorized batch admission: bucket-sort a whole chunk at once.

        Same contract as the base class (non-decreasing absolute
        *times*, all ``>= now``; one shared-callback :class:`BatchEvent`
        per deadline, eids in sequence order, *cls* swapping in a
        BatchEvent subclass such as the multi-tenant kernel's
        :class:`~repro.sim.events.TenantEvent`), but instead of ~2^16
        per-event Python calls the chunk is classified in one numpy
        pass: ``searchsorted`` against the cursor finds the
        spill/level-0/level-1/overflow segment boundaries (the slot
        numbers are sorted because the times are), and contiguous
        equal-slot runs land in their buckets with one ``extend`` each.
        Pop order is identical to per-event admission of the same
        sequence because the entry tuples are.
        """
        arr = np.asarray(times, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError(f"batch times must be 1-D, got shape {arr.shape}")
        n = int(arr.size)
        if not n:
            return []
        now = self._now
        if int(arr[0]) < now:
            raise ValueError(f"batch deadline {int(arr[0])} is in the past (now={now})")
        if n > 1 and bool((arr[1:] < arr[:-1]).any()):
            raise ValueError("batch deadlines must be non-decreasing")
        # Dry wheel + stale cursor: re-anchor first (mirrors _insert) so
        # an overflow-only past does not leak the chunk to the heap.
        if (
            self._cursor < now >> self._gbits
            and not (self._l0_count or self._l1_count or self._spill)
            and self._ai >= len(self._active)
        ):
            self._cursor = now >> self._gbits
        gbits = self._gbits
        sbits0 = self._sbits0
        cursor = self._cursor
        s0 = arr >> gbits
        shared = callback if callback.__class__ is tuple else (callback,)
        events = [cls(self, shared) for _ in range(n)]
        entries = list(zip(arr.tolist(), repeat(priority), islice(self._eid, n), events))
        # Segment boundaries over the sorted slot numbers:
        # s0 <= cursor                  -> spill
        # cursor < s0 <= cursor + mask0 -> level 0
        # within the level-1 horizon    -> level 1
        # beyond                        -> overflow heap
        i_spill = int(np.searchsorted(s0, cursor, side="right"))
        i_l0 = int(np.searchsorted(s0, cursor + self._mask0, side="right"))
        horizon_end = (((cursor >> sbits0) + self._mask1) + 1) << sbits0
        i_l1 = int(np.searchsorted(s0, horizon_end, side="left"))
        if i_spill:
            spill = self._spill
            for k in range(i_spill):
                heappush(spill, entries[k])
        if i_l0 > i_spill:
            seg = s0[i_spill:i_l0]
            slots0, mask0 = self._slots0, self._mask0
            starts = [0, *(np.flatnonzero(seg[1:] != seg[:-1]) + 1).tolist(), i_l0 - i_spill]
            for a, b in zip(starts, starts[1:]):
                slots0[int(seg[a]) & mask0].extend(entries[i_spill + a : i_spill + b])
            self._l0_count += i_l0 - i_spill
        if i_l1 > i_l0:
            seg = s0[i_l0:i_l1] >> sbits0
            slots1, mask1 = self._slots1, self._mask1
            starts = [0, *(np.flatnonzero(seg[1:] != seg[:-1]) + 1).tolist(), i_l1 - i_l0]
            for a, b in zip(starts, starts[1:]):
                slots1[int(seg[a]) & mask1].extend(entries[i_l0 + a : i_l0 + b])
            self._l1_count += i_l1 - i_l0
        if i_l1 < n:
            queue = self._queue
            for k in range(i_l1, n):
                heappush(queue, entries[k])
            self.overflow_inserts += n - i_l1
        return events

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Pooled timeout (see base class), scheduled through the wheel."""
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            if type(delay) is not int:
                delay = int(delay)
            event: Timeout = pool.pop()
            event.callbacks = []
            event._delay = delay
            event._value = value
            self.schedule_timeout(event, delay)
            return event
        return Timeout(self, delay, value)

    # -- dequeue -------------------------------------------------------

    def _cascade(self, window: int) -> None:
        """Scatter level-1 *window*'s bucket into level-0 slots."""
        index = window & self._mask1
        bucket = self._slots1[index]
        if not bucket:
            return
        self._slots1[index] = []
        self._l1_count -= len(bucket)
        self._l0_count += len(bucket)
        self.cascades += 1
        if self._adaptive:
            self._adapt_cascaded += len(bucket)
        gbits, mask0, slots0 = self._gbits, self._mask0, self._slots0
        for entry in bucket:
            slots0[(entry[0] >> gbits) & mask0].append(entry)

    def _refill(self) -> None:
        """Advance the cursor to the next occupied slot and sort it.

        Precondition: the active bucket is exhausted, the spill heap is
        empty and ``_l0_count + _l1_count > 0`` (so the scan provably
        terminates).  Cascades level-1 buckets at each window boundary
        it crosses; when level 0 is empty it jumps window-to-window
        instead of probing all 4096 slots.
        """
        c = self._cursor
        slots0, mask0, smask0 = self._slots0, self._mask0, self._smask0
        sbits0 = self._sbits0
        probes = 0
        while True:
            c += 1
            probes += 1
            if not c & smask0:
                self._cascade(c >> sbits0)
            bucket = slots0[c & mask0]
            if bucket:
                break
            if not self._l0_count:
                # Nothing in level 0: skip straight to the last slot of
                # this window so the next increment cascades the next one.
                c |= smask0
        self._cursor = c
        slots0[c & mask0] = []
        self._l0_count -= len(bucket)
        if len(bucket) >= _REFILL_ARGSORT_MIN:
            # Sort-on-drain via numpy for big buckets: lexsort over
            # extracted key columns beats list.sort's per-element tuple
            # comparisons well before 1k entries.  The eid column makes
            # the key total (eids are unique), so the Event objects
            # themselves are never compared; sorting on `when` alone
            # (even stably) would be wrong -- after a re-anchor a
            # bucket's insertion order is not (priority, eid) order.
            nb = len(bucket)
            when = np.fromiter((e[0] for e in bucket), np.int64, nb)
            prio = np.fromiter((e[1] for e in bucket), np.int64, nb)
            eid = np.fromiter((e[2] for e in bucket), np.int64, nb)
            order = np.lexsort((eid, prio, when))
            bucket = [bucket[i] for i in order.tolist()]
        else:
            bucket.sort()
        self._active = bucket
        self._ai = 0
        if self._adaptive:
            self._adapt_drained += len(bucket)
            self._adapt_refills += 1
            self._adapt_probes += probes

    def _pop(self) -> tuple:
        """Remove and return the globally minimal ``(when, prio, eid,
        event)`` entry; raises ``IndexError`` when nothing is pending."""
        while True:
            active = self._active
            ai = self._ai
            if ai < len(active):
                entry = active[ai]
                spill = self._spill
                if spill and spill[0] < entry:
                    entry = spill[0]
                    overflow = self._queue
                    if overflow and overflow[0] < entry:
                        return heappop(overflow)
                    return heappop(spill)
                overflow = self._queue
                if overflow and overflow[0] < entry:
                    return heappop(overflow)
                self._ai = ai + 1
                # Drop the bucket's reference so the Timeout free list's
                # getrefcount guard sees the same counts as the heap path.
                active[ai] = None
                return entry
            spill = self._spill
            if spill:
                # Spill entries precede everything in level 0/1.
                entry = spill[0]
                overflow = self._queue
                if overflow and overflow[0] < entry:
                    return heappop(overflow)
                return heappop(spill)
            if not (self._l0_count or self._l1_count):
                return heappop(self._queue)
            if self._adaptive and self._adapt_drained >= self._adapt_window:
                # Quiescent cursor boundary (active drained, spill
                # empty): the only point where re-filing every pending
                # entry under a new granularity is safe and cheap to
                # reason about.  Loop back afterwards -- a re-anchor
                # may have moved everything into spill or overflow.
                self._maybe_reanchor()
                continue
            self._refill()

    def _peek_key(self) -> Optional[tuple]:
        """``(when, priority, eid)`` of the next wheel entry, sans removal.

        ``None`` when nothing is pending.  Advances cursor/refill/
        re-anchor state exactly as :meth:`_pop` would -- all of which is
        order-neutral -- so a subsequent :meth:`_pop` returns the same
        entry in O(1).  Used by the lane-aware event loop to decide
        whether the lease lane fires first.
        """
        while True:
            active = self._active
            ai = self._ai
            if ai < len(active):
                entry = active[ai]
                spill = self._spill
                if spill and spill[0] < entry:
                    entry = spill[0]
                overflow = self._queue
                if overflow and overflow[0] < entry:
                    entry = overflow[0]
                return entry[:3]
            spill = self._spill
            if spill:
                entry = spill[0]
                overflow = self._queue
                if overflow and overflow[0] < entry:
                    entry = overflow[0]
                return entry[:3]
            if not (self._l0_count or self._l1_count):
                overflow = self._queue
                return overflow[0][:3] if overflow else None
            if self._adaptive and self._adapt_drained >= self._adapt_window:
                self._maybe_reanchor()
                continue
            self._refill()

    # -- adaptive granularity ------------------------------------------

    def _maybe_reanchor(self) -> None:
        """Evaluate the occupancy band; re-anchor geometry if out of band.

        The band is judged from counters the hot paths already touch:
        *too fine* when most drained events took an extra hop (level-1
        cascade or overflow insert) because deadlines outlive level 0;
        *too sparse* when the cursor walks many empty slots per event;
        *too coarse* when the average sort-on-drain bucket is huge.
        Preconditions match :meth:`_refill`: active bucket exhausted and
        spill empty, so every pending entry has ``when >= now`` and
        reclassifies exactly as a fresh wheel would file it.
        """
        drained = self._adapt_drained
        refills = self._adapt_refills
        probes = self._adapt_probes
        cascaded = self._adapt_cascaded
        overflowed = self.overflow_inserts - self._adapt_overflow_mark
        self._adapt_drained = 0
        self._adapt_refills = 0
        self._adapt_probes = 0
        self._adapt_cascaded = 0
        self._adapt_overflow_mark = self.overflow_inserts
        too_fine = (cascaded + overflowed) * 2 > drained
        too_sparse = probes > drained * _ADAPT_PROBE_FACTOR
        too_coarse = bool(refills) and drained > refills * _ADAPT_BUCKET_MAX
        if not (too_fine or too_sparse or too_coarse):
            self._adapt_window = _ADAPT_WINDOW
            return
        target = self._target_bits()
        if target == self._gbits:
            # Out of band but no better single granularity exists (e.g.
            # genuinely bimodal deadlines): back off exponentially so
            # the O(pending) target scan stays amortized away.
            self._adapt_window = min(self._adapt_window * 2, _ADAPT_WINDOW_MAX)
            return
        self._reanchor(target)
        self._adapt_window = _ADAPT_WINDOW

    def _target_bits(self) -> int:
        """Granularity fitting the *current* pending-deadline horizon.

        Sizes slots so the bulk (90th percentile) of pending horizons
        fits inside level 0, but never finer than the mean spacing
        between deadlines -- the two failure modes the band detects.
        """
        whens: list[int] = []
        extend = whens.extend
        if self._l0_count:
            for bucket in self._slots0:
                if bucket:
                    extend(entry[0] for entry in bucket)
        if self._l1_count:
            for bucket in self._slots1:
                if bucket:
                    extend(entry[0] for entry in bucket)
        extend(entry[0] for entry in self._queue)
        if not whens:
            return self._gbits
        horizons = np.asarray(whens, dtype=np.int64) - self._now
        span = int(np.quantile(horizons, 0.90))
        if span < 1:
            span = 1
        g_span = span.bit_length() - self._sbits0
        spacing = span // len(whens)
        g_density = spacing.bit_length()
        target = max(g_span, g_density, 0)
        return min(target, MAX_GRANULARITY_BITS)

    def _reanchor(self, bits: int) -> None:
        """Re-anchor the wheel at granularity *bits*, preserving order.

        Entries are geometry-independent ``(when, priority, eid, event)``
        tuples, so re-filing them under new slot boundaries cannot
        change the pop order -- only which O(1) structure serves them.
        The overflow heap is drained too, so entries that overflowed
        only because the old geometry was too fine migrate back into
        the wheel.  ``_queue`` and ``_spill`` are mutated in place,
        never rebound: the inlined run loop holds local references.
        """
        entries: list[tuple] = []
        extend = entries.extend
        slots0 = self._slots0
        for index in range(len(slots0)):
            if slots0[index]:
                extend(slots0[index])
                slots0[index] = []
        slots1 = self._slots1
        for index in range(len(slots1)):
            if slots1[index]:
                extend(slots1[index])
                slots1[index] = []
        extend(self._queue)
        self._queue.clear()
        self._l0_count = 0
        self._l1_count = 0
        self._gbits = bits
        self._cursor = self._now >> bits
        overflow_mark = self.overflow_inserts
        insert = self._insert
        for entry in entries:
            insert(entry)
        # Re-filing is not a new scheduling decision: keep the lifetime
        # overflow counter meaning "entries scheduled beyond the horizon".
        self.overflow_inserts = overflow_mark
        self._adapt_overflow_mark = overflow_mark
        self.reanchors += 1
        if perf.enabled:
            perf.counters.wheel_reanchors += 1

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or ``None`` if none.

        O(pending) -- it scans the wheel without draining it.  Fine for
        the occasional caller; the run loop never uses it.
        """
        best: Optional[tuple] = None
        if self._ai < len(self._active):
            best = self._active[self._ai]
        for heap in (self._spill, self._queue):
            if heap and (best is None or heap[0] < best):
                best = heap[0]
        if self._l0_count:
            for bucket in self._slots0:
                for entry in bucket:
                    if best is None or entry < best:
                        best = entry
        if self._l1_count:
            for bucket in self._slots1:
                for entry in bucket:
                    if best is None or entry < best:
                        best = entry
        lane = self._lane
        if lane is not None:
            head = lane.head_key()
            if head is not None and (best is None or head[0] < best[0]):
                best = (head[0],)
        cold = self._cold
        if cold is not None:
            head = cold.head_key()
            if head is not None and (best is None or head[0] < best[0]):
                return head[0]
        return best[0] if best is not None else None

    def pending_events(self) -> int:
        """Total events currently scheduled (all structures)."""
        lane = self._lane
        cold = self._cold
        return (
            len(self._active)
            - self._ai
            + len(self._spill)
            + self._l0_count
            + self._l1_count
            + len(self._queue)
            + (len(lane) if lane is not None else 0)
            + (len(cold) if cold is not None else 0)
        )

    def occupancy(self) -> dict[str, int]:
        """Wheel-vs-heap residency right now, plus lifetime counters.

        ``wheel`` counts entries the O(1) paths own (active + spill +
        both levels); ``heap`` is the overflow residue.  The scale
        bench samples this and publishes the peaks through
        :mod:`repro.perf` (``wheel_entries`` / ``heap_entries``).
        """
        wheel = len(self._active) - self._ai + len(self._spill)
        occ = {
            "wheel": wheel + self._l0_count + self._l1_count,
            "active": len(self._active) - self._ai,
            "spill": len(self._spill),
            "level0": self._l0_count,
            "level1": self._l1_count,
            "heap": len(self._queue),
            "cascades": self.cascades,
            "overflow_inserts": self.overflow_inserts,
            "reanchors": self.reanchors,
            "granularity_bits": self._gbits,
        }
        lane = self._lane
        if lane is not None:
            occ.update(lane.stats())
        else:
            # Zero gauges keep the key set stable so bench entries and
            # shard merges carry lane columns whether or not a lane ran.
            occ.update(
                lane_entries=0,
                lane_entries_peak=0,
                lane_slabs=0,
                lane_max_slab=0,
                lane_rearm_batches=0,
                lane_scalar_fires=0,
                lane_generations=0,
            )
        cold = self._cold
        if cold is not None:
            occ.update(cold.stats())
        else:
            occ.update(
                cold_entries=0,
                cold_entries_peak=0,
                cold_slabs=0,
                cold_max_slab=0,
                cold_scalar_fires=0,
                cold_spinups=0,
                cold_reclaim_fires=0,
                cold_generations=0,
            )
        return occ

    def sample_occupancy(self, force: bool = False) -> Optional[dict[str, int]]:
        """Decimated :meth:`occupancy`, also published to :mod:`repro.perf`.

        Only every ``_SAMPLE_DECIMATION``-th call (or a ``force=True``
        one) computes anything; the rest bump one counter and return
        ``None``.  Callers on hot paths -- the scale drivers sample per
        completion batch -- therefore pay a fixed two-attribute cost
        per call, well under 1% of event throughput, while peaks still
        get tracked.  While counting is enabled,
        ``perf.counters.wheel_entries`` / ``heap_entries`` track the
        *peak* sampled residency and the cascade/overflow/re-anchor
        lifetime totals are brought up to date.
        """
        tick = self._sample_tick + 1
        self._sample_tick = tick
        if not force and tick % _SAMPLE_DECIMATION:
            return None
        self.occupancy_samples += 1
        occupancy = self.occupancy()
        if perf.enabled:
            counters = perf.counters
            if occupancy["wheel"] > counters.wheel_entries:
                counters.wheel_entries = occupancy["wheel"]
            if occupancy["heap"] > counters.heap_entries:
                counters.heap_entries = occupancy["heap"]
            counters.wheel_cascades = max(counters.wheel_cascades, self.cascades)
            counters.wheel_overflow_inserts = max(
                counters.wheel_overflow_inserts, self.overflow_inserts
            )
            if self._lane is not None:
                if occupancy["lane_entries"] > counters.lane_entries:
                    counters.lane_entries = occupancy["lane_entries"]
                counters.lane_slabs = max(counters.lane_slabs, occupancy["lane_slabs"])
                counters.lane_rearm_batches = max(
                    counters.lane_rearm_batches, occupancy["lane_rearm_batches"]
                )
            if self._cold is not None:
                if occupancy["cold_entries"] > counters.cold_lane_entries:
                    counters.cold_lane_entries = occupancy["cold_entries"]
                counters.cold_lane_slabs = max(
                    counters.cold_lane_slabs, occupancy["cold_slabs"]
                )
        return occupancy

    # -- event loop ----------------------------------------------------

    def step(self) -> None:
        """Process exactly one event (same semantics as the base class).

        With a lease lane and/or cold lane attached, the lane heads are
        merged against the wheel head under the global ``(when,
        priority, eid)`` order and the earliest fires first.
        """
        lane = self._lane
        cold = self._cold
        if lane is not None or cold is not None:
            head = lane.head_key() if lane is not None else None
            fire = lane
            if cold is not None:
                chead = cold.head_key()
                if chead is not None and (head is None or chead < head):
                    head = chead
                    fire = cold
            if head is not None:
                key = self._peek_key()
                if key is None or (head[0], NORMAL, head[1]) < key:
                    fire.fire_one()
                    self.events_processed += 1
                    return
        try:
            when, _prio, _eid, event = self._pop()
        except IndexError:
            raise EmptySchedule("no more events") from None
        self._now = when
        self.events_processed += 1

        callbacks = event.callbacks
        assert callbacks is not None
        if callbacks.__class__ is tuple:
            # Persistent dispatch descriptor (see BatchEvent): exactly
            # one callback, never detached.
            callbacks[0](event)
        else:
            event.callbacks = None
            for callback in callbacks:
                callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise RuntimeError(f"event failed with non-exception {exc!r}")

        if (
            event.__class__ is Timeout
            and event._ok
            and not event._defused
            and len(self._timeout_pool) < _TIMEOUT_POOL_MAX
            and sys.getrefcount(event) == 2
        ):
            self._timeout_pool.append(event)  # type: ignore[arg-type]
            self._timeout_pool_appends += 1

    def _run_with_lane(self, until: Union[None, int, Event]) -> Any:
        """Generic event loop merging the lease lane with the wheel.

        Correctness path for arbitrary callbacks: one :meth:`step` per
        event, lane entries fired scalar-exact.  The vectorized slab
        path lives in the fused scale kernel, which owns its callbacks
        and can prove the commutativity the bulk drain requires.
        """
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    return until.value
                until.callbacks.append(StopSimulation.callback)
            else:
                at = int(until)
                if at < self._now:
                    raise ValueError(f"until={at} is in the past (now={self._now})")
                stop = Event(self)
                stop._ok = True
                stop._value = None
                self._insert((at, _STOP_PRIORITY, next(self._eid), stop))
                stop.callbacks.append(StopSimulation.callback)
        step = self.step
        try:
            while True:
                try:
                    step()
                except EmptySchedule:
                    if isinstance(until, Event) and not until.triggered:
                        raise RuntimeError(
                            "simulation ran out of events before the awaited event triggered"
                        ) from None
                    return None
        except StopSimulation as stop_exc:
            return stop_exc.args[0]

    def run(self, until: Union[None, int, Event] = None) -> Any:
        """Run the simulation (same contract as the base class)."""
        if self._lane is not None or self._cold is not None:
            return self._run_with_lane(until)
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    return until.value
                until.callbacks.append(StopSimulation.callback)
            else:
                at = int(until)
                if at < self._now:
                    raise ValueError(f"until={at} is in the past (now={self._now})")
                stop = Event(self)
                stop._ok = True
                stop._value = None
                self._insert((at, _STOP_PRIORITY, next(self._eid), stop))
                stop.callbacks.append(StopSimulation.callback)

        # Inlined loop mirroring Environment.run; only the dequeue
        # differs.  The common case of _pop -- next entry comes from the
        # sorted active bucket -- is inlined here because a method call
        # per event is measurable at millions of events; spill and
        # overflow are bound once (heappush/heappop mutate them in
        # place, only _active changes identity, at refill).
        #
        # `active`/`ai` are carried as locals across iterations and only
        # written back to self before the slow-path _pop() (nothing a
        # callback can do rebinds _active or advances _ai: inserts at or
        # before the cursor go to the spill heap, refill/re-anchor only
        # run inside _pop).  A callback reading self._ai mid-walk -- the
        # dry-wheel guards in _insert/schedule_batch, or an occupancy
        # sample -- sees a value that lags by at most one bucket; both
        # readers treat that conservatively (the guards skip an optional
        # cursor re-anchor and file via the overflow heap, which pops in
        # the same global order).
        pop = self._pop
        spill = self._spill
        overflow = self._queue
        pool = self._timeout_pool
        getrefcount = sys.getrefcount
        timeout_cls = Timeout
        processed = 0
        pooled = 0
        active = self._active
        ai = self._ai
        # The active bucket's length is fixed for the whole walk
        # (drained entries are overwritten with None, never removed;
        # callbacks cannot touch the bucket -- it was unlinked from
        # _slots0 at refill), so it is cached instead of re-measured
        # every event.
        alen = len(active)
        try:
            while True:
                if ai < alen:
                    entry = active[ai]
                    if spill and spill[0] < entry:
                        head = spill[0]
                        if overflow and overflow[0] < head:
                            entry = heappop(overflow)
                        else:
                            entry = heappop(spill)
                    elif overflow and overflow[0] < entry:
                        entry = heappop(overflow)
                    else:
                        active[ai] = None
                        ai += 1
                else:
                    self._ai = ai
                    try:
                        entry = pop()
                    except IndexError:
                        if isinstance(until, Event) and not until.triggered:
                            raise RuntimeError(
                                "simulation ran out of events before the awaited event triggered"
                            ) from None
                        return None
                    active = self._active
                    ai = self._ai
                    alen = len(active)
                event_when = entry[0]
                event = entry[3]
                # Drop the tuple so the pool's getrefcount guard sees
                # the same counts as the heap loop (which unpacks and
                # releases its entry before the check).
                entry = None
                self._now = event_when
                processed += 1

                callbacks = event.callbacks
                if callbacks.__class__ is tuple:
                    # Persistent dispatch descriptor (see BatchEvent):
                    # exactly one callback, never detached -- a re-armed
                    # lease timer keeps its descriptor across millions
                    # of schedulings with zero callback-slot traffic.
                    callbacks[0](event)
                else:
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)

                if not event._ok and not event._defused:
                    exc = event._value
                    if isinstance(exc, BaseException):
                        raise exc
                    raise RuntimeError(f"event failed with non-exception {exc!r}")

                # `callbacks is None` pre-filters pooling: a re-armed
                # lease timeout has fresh callbacks (and a wheel entry
                # reference), so the common re-arm case exits on one
                # load instead of reaching getrefcount.
                if (
                    event.callbacks is None
                    and event.__class__ is timeout_cls
                    and event._ok
                    and not event._defused
                    and len(pool) < _TIMEOUT_POOL_MAX
                    and getrefcount(event) == 2
                ):
                    pool.append(event)
                    pooled += 1
        except StopSimulation as stop:
            return stop.args[0]
        finally:
            self._ai = ai
            self.events_processed += processed
            self._timeout_pool_appends += pooled

    def __repr__(self) -> str:
        return f"<WheelEnvironment t={self._now}ns queued={self.pending_events()}>"


#: Registry used by :func:`new_environment`.
SCHEDULERS = ("heap", "wheel")


def new_environment(scheduler: Optional[str] = None, initial_time: int = 0, **kwargs: Any):
    """Build an :class:`Environment` with the requested scheduler.

    ``scheduler`` is ``"heap"`` (the binary-heap baseline, default),
    ``"wheel"`` (hierarchical timer wheel) or ``None`` for the default.
    Extra keyword arguments configure the wheel geometry.
    """
    scheduler = scheduler or "heap"
    if scheduler == "heap":
        if kwargs:
            raise ValueError(f"heap scheduler takes no options, got {sorted(kwargs)}")
        return Environment(initial_time)
    if scheduler == "wheel":
        return WheelEnvironment(initial_time, **kwargs)
    raise ValueError(f"unknown scheduler {scheduler!r} (use one of {SCHEDULERS})")
